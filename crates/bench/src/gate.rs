//! The deterministic bench-regression gate.
//!
//! Eight fixed macro scenarios run with a scenario-wide telemetry
//! registry:
//!
//! * **crawl** — a seeded portal crawl (learning → retrain → harvesting)
//!   followed by an index build and a fixed query set,
//! * **classify** — a three-topic training + held-out evaluation
//!   measuring macro-F1,
//! * **pipeline** — a fixed URL set pushed through the staged batch
//!   pipeline (fetch → convert → analyze → classify → bulk-load) by the
//!   real-thread executor, classification on: the single-thread leg is
//!   the determinism evidence and gates document/link/classification
//!   counts tightly, the multi-thread leg gates wall throughput
//!   loosely,
//! * **recovery** — crash-consistent checkpointing: an injected
//!   mid-checkpoint crash, rollback to the newest complete generation,
//!   and a resumed crawl that must match an uninterrupted reference,
//! * **serve** — the portal serving layer: a deterministic leg
//!   interleaves virtual-clock load-generator ticks with crawler steps
//!   against the snapshot-swap [`bingo_search::LiveIndex`] and checks
//!   the incrementally committed index answers a fixed query prefix
//!   identically to a batch rebuild; a concurrent leg hammers the
//!   [`bingo_serve::PortalService`] from real reader threads while a
//!   threaded crawl keeps writing, gating QPS and latency percentiles,
//! * **scale** — a memory-bounded crawl of a lazily paged synthetic web
//!   (one million pages in full mode) through the disk-backed segmented
//!   store and the spillable frontier; coverage, harvest and segment
//!   counts gate tightly and the crawl's peak RSS growth must stay
//!   inside a fixed per-mode budget (`rss_within_budget`),
//! * **scale10m** — the same memory-bounded crawl at ten million pages
//!   (full mode) under the *same* RSS-growth budget as the 1M run,
//!   with every bounding knob on: spilling duplicate filter, sparse
//!   segment index, segment compaction, capped term cache. Adds exact
//!   gates on `dedup_spill_active`, `dedup_io_errors` and
//!   `compaction_runs`,
//! * **dist** — the distributed coordinator/worker crawl: a calm
//!   N-node run, then the same crawl under a seeded node-kill fault
//!   plan interrupted by a whole-process kill and resumed from the
//!   newest crash-consistent multi-node generation. Gates convergence
//!   (chaos page set == calm page set, exact), the scripted
//!   kill/restart counts, the lease-requeue coverage, harvest-ratio
//!   drift, and the resume wall time (loose backstop).
//!
//! Each scenario runs **twice**: the deterministic metrics snapshot and
//! the event log of both runs must be byte-identical, or the gate fails
//! — that is the executable form of the determinism contract in
//! `crates/obs`. Results are compared against checked-in baselines
//! (`BENCH_crawl.json`, `BENCH_classify.json`, `BENCH_pipeline.json`)
//! with per-metric tolerances:
//!
//! * deterministic metrics (virtual throughput, harvest ratio, stored
//!   pages, macro-F1) gate tightly — they cannot flake, only change when
//!   the code changes behavior;
//! * wall-clock throughput gates loosely (gross-regression backstop)
//!   and is scaled by a CPU calibration ratio so baselines recorded on
//!   one machine remain meaningful on another: both runs time the same
//!   fixed pure-CPU workload, and the expected wall throughput scales by
//!   the ratio of calibration times.

use bingo_core::{BingoEngine, EngineConfig, EngineTelemetry, TopicId, TopicTree};
use bingo_crawler::{
    run_pipeline, BatchJudge, CrawlConfig, CrawlTelemetry, Crawler, Judgment, PageContext,
    PipelineOptions, StepOutcome,
};
use bingo_dist::{Coordinator, DistConfig, DistTelemetry};
use bingo_obs::{EventLog, Registry, WallTimer};
use bingo_search::index::analyze_query_with;
use bingo_search::{
    InvertedIndex, LiveIndex, LiveIndexObs, QueryOptions, SearchEngine, SearchMetrics,
};
use bingo_serve::{
    run_closed_loop, PortalRequest, PortalService, QueryMix, ServeMetrics, VirtualLoadGen,
};
use bingo_store::durable::CrashFs;
use bingo_store::{
    CompactionConfig, CompactionStats, CompactionTelemetry, DocumentStore, SegmentStoreConfig,
};
use bingo_textproc::{porter_stem, AnalyzedDocument, SharedVocabulary, TermLookup, Vocabulary};
use bingo_webworld::fetch::host_of_url;
use bingo_webworld::gen::{TopicConfig, WorldConfig};
use bingo_webworld::{lexicon, HostBehavior, NodeFaultPlan, NodeFaultProfile, PageKind, World};
use serde_json::{json, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// World seed shared by every scenario (same-seed runs must agree).
pub const GATE_SEED: u64 = 4242;

/// Gate mode: the full scenario sizes or the fast CI smoke sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// Full sizes — the numbers the baselines are recorded at.
    Full,
    /// Reduced sizes for quick CI smoke runs.
    Smoke,
}

impl GateMode {
    /// Section key in the baseline files.
    pub fn key(self) -> &'static str {
        match self {
            GateMode::Full => "full",
            GateMode::Smoke => "smoke",
        }
    }
}

/// Byte-comparable telemetry of one scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterminismEvidence {
    /// Deterministic metrics snapshot, pretty JSON.
    pub snapshot_json: String,
    /// Event log, JSONL.
    pub events_jsonl: String,
}

/// One scenario run: the metrics report plus its determinism evidence.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Metric values for baseline comparison.
    pub report: Value,
    /// Telemetry that must replay byte-identically.
    pub evidence: DeterminismEvidence,
}

/// Time a fixed pure-CPU workload (stemming a generated word list) in
/// milliseconds. The ratio of two calibration times approximates the
/// single-core speed ratio of two machines, and scales wall-throughput
/// expectations.
pub fn calibrate_cpu_ms() -> f64 {
    let timer = WallTimer::start();
    let mut acc = 0usize;
    for round in 0..40u32 {
        for i in 0..2500u32 {
            let word = format!("calibrat{}ional{}izers", round, i);
            acc += porter_stem(&word).len();
        }
    }
    // Defeat dead-code elimination.
    std::hint::black_box(acc);
    timer.elapsed_us() as f64 / 1000.0
}

fn held_out(world: &World, topic: u32, skip: usize, take: usize) -> Vec<u64> {
    (0..world.page_count() as u64)
        .filter(|&id| {
            world.true_topic(id) == Some(topic) && world.page(id).kind == PageKind::Content
        })
        .skip(skip)
        .take(take)
        .collect()
}

/// Run the crawl scenario once.
pub fn run_crawl_scenario(mode: GateMode) -> ScenarioRun {
    let (authors, noise_scale, learning_ms, harvest_ms) = match mode {
        GateMode::Full => (300usize, 2usize, 60_000u64, 400_000u64),
        GateMode::Smoke => (120, 1, 30_000, 150_000),
    };
    let total_wall = WallTimer::start();
    let world = Arc::new(WorldConfig::portal(GATE_SEED, authors, noise_scale).build());
    let registry = Arc::new(Registry::new());
    let events = Arc::new(EventLog::default());

    // Engine: one topic seeded from the two most prolific authors.
    let mut engine = BingoEngine::new(EngineConfig {
        archetype_threshold: false,
        ..EngineConfig::default()
    });
    engine.set_telemetry(EngineTelemetry::new(registry.clone(), events.clone()));
    let topic = engine.add_topic(TopicTree::ROOT, "database research");
    let seeds: Vec<String> = world.authors()[..2]
        .iter()
        .map(|a| world.url_of(a.homepage))
        .collect();
    for url in &seeds {
        engine
            .add_training_url(&world, topic, url)
            .unwrap_or_else(|e| panic!("seed {url}: {e}"));
    }
    crate::populate_others(&mut engine, &world, &[3, 4, 5, 6], 30);
    engine.train().expect("initial training");

    // Learning phase: sharp focus inside the seed domains.
    let seed_hosts = seeds
        .iter()
        .map(|u| host_of_url(u).unwrap().to_string())
        .collect();
    let learn_config = CrawlConfig {
        allowed_hosts: Some(seed_hosts),
        ..CrawlConfig::default()
    };
    let mut crawler = Crawler::new(world.clone(), learn_config, DocumentStore::new());
    crawler.set_telemetry(CrawlTelemetry::new(registry.clone(), events.clone()));
    for url in &seeds {
        crawler.add_seed(url, Some(topic.0));
    }
    let learn_wall = WallTimer::start();
    engine.crawl_until(&mut crawler, learning_ms, 0);
    engine.retrain(&mut crawler);
    let learn_wall_ms = learn_wall.elapsed_us() as f64 / 1000.0;

    // Harvesting phase: soft focus, best-first, periodic retraining.
    engine.switch_to_harvesting(&mut crawler);
    let harvest_wall = WallTimer::start();
    engine.crawl_until(&mut crawler, harvest_ms, 400);
    let harvest_wall_ms = harvest_wall.elapsed_us() as f64 / 1000.0;

    // Index build + fixed query set.
    let search_metrics = SearchMetrics::new(registry.clone());
    let index_wall = WallTimer::start();
    let search = SearchEngine::build_instrumented(crawler.store(), Some(search_metrics));
    let index_wall_ms = index_wall.elapsed_us() as f64 / 1000.0;
    let mut query_hits = 0u64;
    let query_wall = WallTimer::start();
    for q in [
        "database transaction recovery",
        "data mining",
        "index structures",
    ] {
        query_hits += search
            .query(&engine.vocab, q, &QueryOptions::default())
            .len() as u64;
    }
    let query_wall_us = query_wall.elapsed_us();

    let stats = crawler.stats().clone();
    let virtual_ms = crawler.clock_ms().max(1);
    let wall_ms = (total_wall.elapsed_us() as f64 / 1000.0).max(0.001);
    let harvest_ratio = stats.stored_pages as f64 / stats.visited_urls.max(1) as f64;
    let report = json!({
        "scenario": "crawl",
        "virtual_ms": virtual_ms,
        "visited_urls": stats.visited_urls,
        "stored_pages": stats.stored_pages,
        "positively_classified": stats.positively_classified,
        "harvest_ratio": harvest_ratio,
        "urls_per_virtual_sec": stats.visited_urls as f64 * 1000.0 / virtual_ms as f64,
        "urls_per_wall_sec": stats.visited_urls as f64 * 1000.0 / wall_ms,
        "wall_ms": wall_ms,
        "stages": {
            "learning": { "virtual_ms": learning_ms, "wall_ms": learn_wall_ms },
            "harvest": {
                "virtual_ms": virtual_ms.saturating_sub(learning_ms),
                "wall_ms": harvest_wall_ms,
            },
            "index_build": { "wall_ms": index_wall_ms },
            "queries": { "wall_us": query_wall_us, "hits": query_hits },
        },
    });
    ScenarioRun {
        report,
        evidence: DeterminismEvidence {
            snapshot_json: registry.snapshot().deterministic().to_json(),
            events_jsonl: events.to_jsonl(),
        },
    }
}

/// Run the classify scenario once: three topics, held-out evaluation,
/// macro-F1.
pub fn run_classify_scenario(mode: GateMode) -> ScenarioRun {
    let (train_n, eval_n) = match mode {
        GateMode::Full => (12usize, 60usize),
        GateMode::Smoke => (8, 25),
    };
    let world = WorldConfig::portal(GATE_SEED, 200, 1).build();
    let registry = Arc::new(Registry::new());
    let events = Arc::new(EventLog::default());
    let mut engine = BingoEngine::new(EngineConfig::default());
    engine.set_telemetry(EngineTelemetry::new(registry.clone(), events.clone()));

    // One engine topic per synthetic true topic 0/1/2.
    let names = ["database research", "data mining", "web ir"];
    let mut topics: Vec<(TopicId, u32)> = Vec::new();
    for (true_topic, name) in names.iter().enumerate() {
        let t = engine.add_topic(TopicTree::ROOT, name);
        topics.push((t, true_topic as u32));
    }
    for &(topic, true_topic) in &topics {
        for id in held_out(&world, true_topic, 0, train_n) {
            engine
                .add_training_url(&world, topic, &world.url_of(id))
                .expect("training page");
        }
    }
    crate::populate_others(&mut engine, &world, &[3, 4], 20);
    let train_wall = WallTimer::start();
    engine.train().expect("training");
    let train_wall_ms = train_wall.elapsed_us() as f64 / 1000.0;

    // Held-out evaluation: macro-F1 over the three topics.
    let mut per_class: Vec<(usize, usize, usize)> = vec![(0, 0, 0); topics.len()]; // (tp, fp, fn)
    let mut evaluated = 0usize;
    let classify_wall = WallTimer::start();
    for (class_idx, &(_, true_topic)) in topics.iter().enumerate() {
        for id in held_out(&world, true_topic, train_n, eval_n) {
            let Ok((_, _, features)) = engine.analyze_url(&world, &world.url_of(id)) else {
                continue;
            };
            evaluated += 1;
            let judgment = engine.classify(&features);
            let predicted = judgment
                .topic
                .and_then(|t| topics.iter().position(|&(tid, _)| tid.0 == t));
            match predicted {
                Some(p) if p == class_idx => per_class[class_idx].0 += 1,
                Some(p) => {
                    per_class[p].1 += 1;
                    per_class[class_idx].2 += 1;
                }
                None => per_class[class_idx].2 += 1,
            }
        }
    }
    let classify_wall_ms = (classify_wall.elapsed_us() as f64 / 1000.0).max(0.001);

    let f1s: Vec<f64> = per_class
        .iter()
        .map(|&(tp, fp, fn_)| {
            let p = tp as f64 / (tp + fp).max(1) as f64;
            let r = tp as f64 / (tp + fn_).max(1) as f64;
            if p + r > 0.0 {
                2.0 * p * r / (p + r)
            } else {
                0.0
            }
        })
        .collect();
    let macro_f1 = f1s.iter().sum::<f64>() / f1s.len().max(1) as f64;
    let report = json!({
        "scenario": "classify",
        "evaluated": evaluated,
        "macro_f1": macro_f1,
        "per_class_f1": f1s,
        "docs_per_wall_sec": evaluated as f64 * 1000.0 / classify_wall_ms,
        "stages": {
            "train": { "wall_ms": train_wall_ms },
            "classify": { "wall_ms": classify_wall_ms },
        },
    });
    ScenarioRun {
        report,
        evidence: DeterminismEvidence {
            snapshot_json: registry.snapshot().deterministic().to_json(),
            events_jsonl: events.to_jsonl(),
        },
    }
}

/// Run the pipeline scenario once: a fixed healthy URL set pushed
/// through the staged batch pipeline by the real-thread executor with
/// the engine's batch classifier judging every document.
///
/// Two legs share one trained engine and URL list:
///
/// * **single-thread** — runs against the scenario registry; its
///   deterministic telemetry is the determinism evidence and its
///   document/classification/link-row counts gate tightly (they can
///   only change when pipeline behavior changes),
/// * **multi-thread** — runs against a throwaway registry (batch
///   partitioning across workers is scheduling-dependent, so its
///   histograms may not replay); only its wall-clock throughput is
///   gated, loosely.
pub fn run_pipeline_scenario(mode: GateMode) -> ScenarioRun {
    let (authors, noise_scale, train_n, urls_n, threads) = match mode {
        GateMode::Full => (300usize, 2usize, 12usize, 800usize, 8usize),
        GateMode::Smoke => (120, 1, 8, 300, 4),
    };
    let world = Arc::new(WorldConfig::portal(GATE_SEED, authors, noise_scale).build());

    // Three-topic engine, trained exactly like the classify scenario.
    let mut engine = BingoEngine::new(EngineConfig::default());
    let names = ["database research", "data mining", "web ir"];
    let mut topics: Vec<(TopicId, u32)> = Vec::new();
    for (true_topic, name) in names.iter().enumerate() {
        let t = engine.add_topic(TopicTree::ROOT, name);
        topics.push((t, true_topic as u32));
    }
    for &(topic, true_topic) in &topics {
        for id in held_out(&world, true_topic, 0, train_n) {
            engine
                .add_training_url(&world, topic, &world.url_of(id))
                .expect("training page");
        }
    }
    crate::populate_others(&mut engine, &world, &[3, 4], 20);
    engine.train().expect("training");

    // Fixed work list: the first N pages that fetch cleanly (no
    // truncation, redirects or scripted host faults).
    let urls: Vec<(String, Option<u32>)> = (0..world.page_count() as u64)
        .filter(|&id| {
            let page = world.page(id);
            page.size_hint.is_none()
                && page.redirect_to.is_none()
                && world.host(page.host).behavior == HostBehavior::Normal
        })
        .take(urls_n)
        .map(|id| (world.url_of(id), None))
        .collect();

    // Single-thread leg: deterministic counters + evidence.
    let registry = Arc::new(Registry::new());
    let events = Arc::new(EventLog::default());
    engine.set_telemetry(EngineTelemetry::new(registry.clone(), events.clone()));
    let telemetry = CrawlTelemetry::new(registry.clone(), events.clone());
    let det_store = DocumentStore::new();
    let det_vocab = SharedVocabulary::seeded(&engine.vocab);
    let single_wall = WallTimer::start();
    let det_report = {
        let judge = engine.batch_classifier();
        run_pipeline(
            Arc::clone(&world),
            det_store.clone(),
            urls.clone(),
            &det_vocab,
            &judge,
            &telemetry,
            &PipelineOptions::flat(1, 64),
        )
    };
    let single_wall_ms = (single_wall.elapsed_us() as f64 / 1000.0).max(0.001);
    let evidence = DeterminismEvidence {
        snapshot_json: registry.snapshot().deterministic().to_json(),
        events_jsonl: events.to_jsonl(),
    };

    // Multi-thread leg: wall throughput only, telemetry discarded.
    engine.set_telemetry(EngineTelemetry::default());
    let mt_store = DocumentStore::new();
    let mt_vocab = SharedVocabulary::seeded(&engine.vocab);
    let mt_wall = WallTimer::start();
    let mt_report = {
        let judge = engine.batch_classifier();
        run_pipeline(
            Arc::clone(&world),
            mt_store,
            urls.clone(),
            &mt_vocab,
            &judge,
            &CrawlTelemetry::default(),
            &PipelineOptions::flat(threads, 64),
        )
    };
    let mt_wall_ms = (mt_wall.elapsed_us() as f64 / 1000.0).max(0.001);

    let report = json!({
        "scenario": "pipeline",
        "urls": urls.len(),
        "documents": det_report.documents,
        "positively_classified": det_report.stats.positively_classified,
        "link_rows": det_store.link_count(),
        "threads": threads,
        "mt_documents": mt_report.documents,
        "docs_per_minute_1t": det_report.docs_per_minute,
        "docs_per_minute": mt_report.docs_per_minute,
        "stages": {
            "single_thread": { "wall_ms": single_wall_ms },
            "multi_thread": { "wall_ms": mt_wall_ms },
        },
    });
    ScenarioRun { report, evidence }
}

/// Run the recovery scenario once: crash-consistent checkpointing end
/// to end. A chaos-world crawl checkpoints periodically; the process
/// "dies" partway through a checkpoint write (injected byte-budget
/// crash); recovery rolls back to the newest complete generation, and
/// the resumed crawl finishes the same virtual budget as an
/// uninterrupted reference run. Gated: post-resume harvest ratio and
/// stored-page count (deterministic) plus the recovery wall time
/// (loose gross-regression backstop).
pub fn run_recovery_scenario(mode: GateMode) -> ScenarioRun {
    let (budget_ms, ckpt_every) = match mode {
        GateMode::Full => (140_000u64, 25u64),
        GateMode::Smoke => (60_000, 10),
    };
    let accept = |_: &AnalyzedDocument, _: &PageContext| Judgment {
        topic: Some(0),
        confidence: 1.0,
    };
    let world = Arc::new(WorldConfig::chaos(GATE_SEED).build());
    let base_config = CrawlConfig {
        max_depth: 0,
        ..CrawlConfig::default()
    };
    let total_wall = WallTimer::start();

    // Uninterrupted reference run.
    let mut reference = Crawler::new(world.clone(), base_config.clone(), DocumentStore::new());
    reference.add_seed(&world.url_of(1), Some(0));
    {
        let mut judge = accept;
        let mut vocab = Vocabulary::new();
        reference.run_until(budget_ms, &mut judge, &mut vocab);
    }
    let ref_stats = reference.stats().clone();
    let ref_ratio = ref_stats.stored_pages as f64 / ref_stats.visited_urls.max(1) as f64;

    // Doomed run: automatic checkpoints, killed at half the reference
    // harvest partway through its next checkpoint write.
    let dir = std::env::temp_dir().join(format!("bingo-bench-recovery-{}", mode.key()));
    let _ = std::fs::remove_dir_all(&dir);
    let ckpt_config = CrawlConfig {
        checkpoint_every_docs: ckpt_every,
        checkpoint_dir: Some(dir.clone()),
        ..base_config.clone()
    };
    {
        let mut doomed = Crawler::new(world.clone(), ckpt_config, DocumentStore::new());
        doomed.add_seed(&world.url_of(1), Some(0));
        let mut judge = accept;
        let mut vocab = Vocabulary::new();
        while doomed.stats().stored_pages < ref_stats.stored_pages / 2 {
            if doomed.step(&mut judge, &mut vocab) == StepOutcome::FrontierEmpty {
                break;
            }
        }
        assert!(
            doomed.stats().checkpoints_written > 0,
            "recovery scenario wrote no checkpoint before the kill"
        );
        let fs = CrashFs::with_budget(1024);
        let _ = doomed.save_session_with(&fs, &dir); // dies mid-write
    }

    // Timed recovery: roll back to the newest complete generation.
    let resume_config = CrawlConfig {
        checkpoint_every_docs: 0,
        checkpoint_dir: None,
        ..base_config
    };
    let recovery_wall = WallTimer::start();
    let mut resumed = Crawler::resume_session(world.clone(), resume_config, &dir)
        .expect("recovery from crashed checkpoint");
    let recovery_wall_ms = (recovery_wall.elapsed_us() as f64 / 1000.0).max(0.001);
    let stored_recovered = resumed.stats().stored_pages;

    // The resumed leg finishes the budget under the scenario registry:
    // its telemetry is the determinism evidence.
    let registry = Arc::new(Registry::new());
    let events = Arc::new(EventLog::default());
    resumed.set_telemetry(CrawlTelemetry::new(registry.clone(), events.clone()));
    {
        let mut judge = accept;
        let mut vocab = Vocabulary::new();
        resumed.run_until(budget_ms, &mut judge, &mut vocab);
    }
    let stats = resumed.stats().clone();
    let harvest_ratio = stats.stored_pages as f64 / stats.visited_urls.max(1) as f64;
    let ratio_drift = (harvest_ratio - ref_ratio).abs() / ref_ratio.max(1e-9);
    let _ = std::fs::remove_dir_all(&dir);

    let report = json!({
        "scenario": "recovery",
        "stored_reference": ref_stats.stored_pages,
        "stored_recovered": stored_recovered,
        "stored_resumed": stats.stored_pages,
        "harvest_ratio": harvest_ratio,
        "harvest_ratio_reference": ref_ratio,
        "ratio_drift": ratio_drift,
        "recovery_wall_ms": recovery_wall_ms,
        "wall_ms": total_wall.elapsed_us() as f64 / 1000.0,
    });
    ScenarioRun {
        report,
        evidence: DeterminismEvidence {
            snapshot_json: registry.snapshot().deterministic().to_json(),
            events_jsonl: events.to_jsonl(),
        },
    }
}

/// The fixed lexicon pools the serve workload draws query phrases from.
const SERVE_POOLS: &[&[&str]] = &[
    lexicon::DATABASE_RESEARCH,
    lexicon::DATA_MINING,
    lexicon::WEB_IR,
    lexicon::COMMON,
];

/// Run the serve scenario once: the portal serving layer under live
/// crawl writes.
///
/// Two legs share one world and one seeded [`QueryMix`]:
///
/// * **deterministic** — a discrete-event crawl feeds the snapshot-swap
///   [`LiveIndex`] through the store tee while a [`VirtualLoadGen`]
///   issues closed-loop portal requests on the *virtual* clock between
///   crawler steps. Request/hit counts and the serve/index telemetry
///   are the determinism evidence. Afterwards the final snapshot must
///   answer a fixed query prefix *identically* (ids and bit-exact
///   scores) to a batch [`InvertedIndex::build`] over the final store —
///   the snapshot-consistency contract, gated as `equivalence_ok`.
/// * **concurrent** — real reader threads drive the
///   [`PortalService`] closed-loop while the threaded pipeline executor
///   bulk-loads the same fixed URL set into the teed store; readers keep
///   issuing until the crawl finishes, so query traffic spans the whole
///   write phase. Gated loosely: QPS and p50/p99 latency (wall metrics).
pub fn run_serve_scenario(mode: GateMode) -> ScenarioRun {
    let (authors, noise_scale, budget_ms, clients, urls_n, crawl_threads, serve_threads, target) =
        match mode {
            GateMode::Full => (
                300usize, 2usize, 120_000u64, 6usize, 800usize, 8usize, 4usize, 12_000u64,
            ),
            GateMode::Smoke => (120, 1, 40_000, 3, 300, 4, 3, 1_500),
        };
    let world = Arc::new(WorldConfig::portal(GATE_SEED, authors, noise_scale).build());
    let accept = |_: &AnalyzedDocument, _: &PageContext| Judgment {
        topic: Some(0),
        confidence: 1.0,
    };
    let mix = QueryMix::from_lexicons(GATE_SEED, SERVE_POOLS, &[0], 64);
    let total_wall = WallTimer::start();

    // Deterministic leg: discrete-event crawl + virtual-clock load
    // generator, every serve metric on the scenario registry.
    let registry = Arc::new(Registry::new());
    let events = Arc::new(EventLog::default());
    let live = LiveIndex::new(32).with_obs(LiveIndexObs::new(&registry));
    let store = DocumentStore::new().with_tee(Arc::new(live.clone()));
    let service =
        PortalService::new(store.clone(), live.clone()).with_metrics(ServeMetrics::new(&registry));
    let mut crawler = Crawler::new(world.clone(), CrawlConfig::default(), store);
    crawler.set_telemetry(CrawlTelemetry::new(registry.clone(), events.clone()));
    for author in &world.authors()[..2] {
        crawler.add_seed(&world.url_of(author.homepage), Some(0));
    }
    let mut generator = VirtualLoadGen::new(mix.clone(), clients, (40, 160), GATE_SEED);
    let mut reader = service.reader();
    let det_wall = WallTimer::start();
    {
        let mut judge = accept;
        let mut vocab = Vocabulary::new();
        while crawler.clock_ms() < budget_ms {
            let outcome = crawler.step(&mut judge, &mut vocab);
            generator.tick(crawler.clock_ms(), &service, &mut reader, &vocab);
            if outcome == StepOutcome::FrontierEmpty {
                break;
            }
        }
        live.commit();

        // Snapshot-consistency check: replay the first 300 workload
        // requests against the final incremental snapshot and a batch
        // rebuild; hits must match bit for bit.
        let snapshot = service.reader().snapshot();
        let batch = InvertedIndex::build(crawler.store());
        let mut eq_queries = 0u64;
        let mut equivalent = true;
        for i in 0..300 {
            let PortalRequest::Query { text, opts } = mix.request(i) else {
                continue;
            };
            eq_queries += 1;
            let terms = analyze_query_with(|stem| vocab.lookup_term(stem).map(|id| id.0), &text);
            let incr = bingo_search::rank::rank(
                crawler.store(),
                &*snapshot,
                &terms,
                &opts.filter,
                opts.ranking,
                opts.top_k,
            );
            let full = bingo_search::rank::rank(
                crawler.store(),
                &batch,
                &terms,
                &opts.filter,
                opts.ranking,
                opts.top_k,
            );
            equivalent &= incr.len() == full.len()
                && incr
                    .iter()
                    .zip(&full)
                    .all(|(a, b)| a.doc_id == b.doc_id && a.score.to_bits() == b.score.to_bits());
        }
        let det_wall_ms = (det_wall.elapsed_us() as f64 / 1000.0).max(0.001);
        let stats = crawler.stats().clone();
        let evidence = DeterminismEvidence {
            snapshot_json: registry.snapshot().deterministic().to_json(),
            events_jsonl: events.to_jsonl(),
        };

        // Concurrent leg: threaded crawl bulk-loads the teed store while
        // real reader threads hammer the service. Telemetry is throwaway
        // (thread scheduling skews histograms); only wall QPS/latency
        // are reported.
        let urls: Vec<(String, Option<u32>)> = (0..world.page_count() as u64)
            .filter(|&id| {
                let page = world.page(id);
                page.size_hint.is_none()
                    && page.redirect_to.is_none()
                    && world.host(page.host).behavior == HostBehavior::Normal
            })
            .take(urls_n)
            .map(|id| (world.url_of(id), None))
            .collect();
        let mt_live = LiveIndex::new(32);
        let mt_store = DocumentStore::new().with_tee(Arc::new(mt_live.clone()));
        let mt_vocab = SharedVocabulary::new();
        let mt_service = PortalService::new(mt_store.clone(), mt_live.clone());
        let crawl_active = AtomicBool::new(true);
        let mt_wall = WallTimer::start();
        let (mt_report, load) = std::thread::scope(|s| {
            let crawl = s.spawn(|| {
                let report = run_pipeline(
                    Arc::clone(&world),
                    mt_store.clone(),
                    urls.clone(),
                    &mt_vocab,
                    &accept,
                    &CrawlTelemetry::default(),
                    &PipelineOptions::flat(crawl_threads, 64),
                );
                crawl_active.store(false, Ordering::Relaxed);
                report
            });
            let load = run_closed_loop(
                &mt_service,
                &mt_vocab,
                &mix,
                serve_threads,
                target,
                Some(&crawl_active),
            );
            (crawl.join().expect("crawl thread"), load)
        });
        let mt_wall_ms = (mt_wall.elapsed_us() as f64 / 1000.0).max(0.001);
        mt_live.commit();

        let report = json!({
            "scenario": "serve",
            "virtual_ms": crawler.clock_ms(),
            "stored_pages": stats.stored_pages,
            "queries_issued": generator.issued(),
            "query_hits": generator.query_hits(),
            "epochs": live.epoch(),
            "max_epoch_seen": generator.max_epoch(),
            "equivalence_ok": u64::from(equivalent),
            "equivalence_queries": eq_queries,
            "threads": { "crawl": crawl_threads, "serve": serve_threads },
            "mt_documents": mt_report.documents,
            "mt_issued": load.issued,
            "mt_during_crawl": load.during_crawl,
            "mt_query_hits": load.query_hits,
            "mt_max_epoch": load.max_epoch,
            "qps": load.qps,
            // Floored at 1µs: sub-microsecond percentiles would bake a
            // zero bound into the baseline that no slower machine could
            // ever meet.
            "p50_us": load.p50_us.max(1),
            "p90_us": load.p90_us.max(1),
            "p99_us": load.p99_us.max(1),
            "wall_ms": total_wall.elapsed_us() as f64 / 1000.0,
            "stages": {
                "deterministic": { "wall_ms": det_wall_ms },
                "concurrent": { "wall_ms": mt_wall_ms },
            },
        });
        ScenarioRun { report, evidence }
    }
}

/// Resident-set size (MB) of one `/proc/self/status` field
/// (`VmRSS:` current, `VmHWM:` peak). Returns 0 when unreadable.
fn rss_status_mb(field: &str) -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix(field))
        .and_then(|rest| {
            rest.trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<f64>()
                .ok()
        })
        .map_or(0.0, |kb| kb / 1024.0)
}

/// Reset the kernel's peak-RSS high-water mark so `VmHWM` measures
/// only the work that follows (best-effort; a no-op where
/// `/proc/self/clear_refs` is unavailable).
fn reset_rss_peak() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Sizing knobs of one scale-scenario run.
struct ScaleParams {
    /// Report `scenario` name (`"scale"` or `"scale10m"`).
    name: &'static str,
    paged: bingo_webworld::PagedConfig,
    /// Segment seal cadence (documents per sealed segment).
    seal_every: usize,
    /// Frontier incoming-queue capacity: sized to hold the whole
    /// discovered tail — the spill layer makes that memory-cheap.
    incoming_cap: usize,
    /// In-memory entry payloads per incoming queue; the rest spills.
    frontier_hot_cap: usize,
    /// `Some(cap)`: the duplicate filter spills past `cap` resident
    /// fingerprints per set; `None` keeps every fingerprint resident.
    dedup_hot_cap: Option<usize>,
    /// Most-significant-term cache entries kept resident (0 = all).
    page_terms_cap: usize,
    /// Sparse per-segment block index instead of the dense per-row
    /// locator map.
    sparse: bool,
    /// Small-segment merge policy (`None` never compacts).
    compaction: Option<CompactionConfig>,
    /// Fixed budget on RSS *growth* during the crawl, MB.
    rss_budget_mb: f64,
    /// Scratch directory tag (segments + spill files).
    tag: String,
}

/// Run the scale scenario once: a seeded crawl of a paged synthetic web
/// (one million pages in [`GateMode::Full`]) through the disk-backed
/// segmented store and the spillable frontier, inside a fixed RSS
/// budget.
///
/// Nothing in the path materializes the web or the harvest in memory:
/// host blocks generate on demand into a bounded cache, sealed segments
/// live on disk behind the write workspace, and the frontier keeps only
/// a bounded hot set of entry payloads resident. The report carries the
/// RSS evidence (`rss_growth_mb` against the fixed `rss_budget_mb`,
/// gated as the `rss_within_budget` bit); the deterministic coverage,
/// harvest and segment counts gate tightly.
pub fn run_scale_scenario(mode: GateMode) -> ScenarioRun {
    let params = match mode {
        GateMode::Full => ScaleParams {
            name: "scale",
            paged: bingo_webworld::PagedConfig::scale_full(GATE_SEED),
            seal_every: 4_096,
            incoming_cap: 1_500_000,
            frontier_hot_cap: 512,
            dedup_hot_cap: None,
            page_terms_cap: 0,
            sparse: false,
            compaction: None,
            rss_budget_mb: 1_024.0,
            tag: "full".into(),
        },
        GateMode::Smoke => ScaleParams {
            name: "scale",
            paged: bingo_webworld::PagedConfig::scale_smoke(GATE_SEED),
            seal_every: 256,
            incoming_cap: 50_000,
            frontier_hot_cap: 64,
            dedup_hot_cap: None,
            page_terms_cap: 0,
            sparse: false,
            compaction: None,
            rss_budget_mb: 256.0,
            tag: "smoke".into(),
        },
    };
    run_scale_with(params)
}

/// Run the 10M-page scale scenario once: ten times the [`run_scale_scenario`]
/// full-mode world under the *same* 1024 MB RSS-growth budget. The 1M
/// scenario leaves the duplicate filter, the most-significant-term
/// cache and the per-row segment index fully resident; at ten million
/// pages those are exactly the O(pages) structures that would eat the
/// budget, so this scenario turns on every bounding knob at once:
///
/// * the dedup fingerprint sets spill past `dedup_hot_cap` to
///   hash-sharded files (`crawl.dedup.*` metrics),
/// * the segmented store runs the sparse block index plus small-segment
///   compaction (`store.compaction.*` metrics),
/// * the most-significant-term cache and work/frontier queues are
///   capacity-bounded as before.
///
/// Smoke mode shrinks the world to the 10K-page miniature but keeps
/// every spill/compaction knob active at tiny caps, so CI exercises the
/// full bounded pipeline (compaction runs, dedup shard merges) in
/// seconds.
pub fn run_scale10m_scenario(mode: GateMode) -> ScenarioRun {
    let params = match mode {
        GateMode::Full => ScaleParams {
            name: "scale10m",
            paged: bingo_webworld::PagedConfig::scale_10m(GATE_SEED),
            seal_every: 4_096,
            incoming_cap: 15_000_000,
            frontier_hot_cap: 512,
            dedup_hot_cap: Some(262_144),
            page_terms_cap: 65_536,
            sparse: true,
            // Full-size seals land exactly on seal_every, so only a
            // trailing partial segment is ever a candidate: compaction
            // stays armed but normally idle at this scale (the smoke
            // sizes exercise the merge path on every run).
            compaction: Some(CompactionConfig {
                small_docs: 2_048,
                min_run: 4,
            }),
            rss_budget_mb: 1_024.0,
            tag: "10m-full".into(),
        },
        GateMode::Smoke => ScaleParams {
            name: "scale10m",
            paged: bingo_webworld::PagedConfig::scale_smoke(GATE_SEED),
            seal_every: 256,
            incoming_cap: 50_000,
            frontier_hot_cap: 64,
            dedup_hot_cap: Some(1_024),
            page_terms_cap: 2_048,
            sparse: true,
            // small_docs > seal_every: every sealed segment is a merge
            // candidate, so runs of three coalesce as the crawl seals —
            // the merge path executes on every smoke run.
            compaction: Some(CompactionConfig {
                small_docs: 320,
                min_run: 3,
            }),
            rss_budget_mb: 256.0,
            tag: "10m-smoke".into(),
        },
    };
    run_scale_with(params)
}

fn run_scale_with(params: ScaleParams) -> ScenarioRun {
    let total_wall = WallTimer::start();
    let world = Arc::new(World::paged(params.paged));
    let pages = world.page_count() as u64;

    let scratch = std::env::temp_dir().join(format!("bingo-bench-scale-{}", params.tag));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scale scratch dir");
    let store = DocumentStore::segmented_cfg(
        scratch.join("segments"),
        SegmentStoreConfig {
            seal_every: params.seal_every,
            sparse: params.sparse,
            compaction: params.compaction,
        },
    )
    .expect("segment spine");
    let base = CrawlConfig::default().harvesting();
    let config = CrawlConfig {
        incoming_queue_cap: params.incoming_cap,
        frontier_spill_dir: Some(scratch.join("frontier")),
        frontier_hot_cap: params.frontier_hot_cap,
        dedup_spill_dir: params.dedup_hot_cap.map(|_| scratch.join("dedup")),
        dedup_hot_cap: params.dedup_hot_cap.unwrap_or(base.dedup_hot_cap),
        page_terms_cap: params.page_terms_cap,
        ..base
    };

    let registry = Arc::new(Registry::new());
    let events = Arc::new(EventLog::default());
    let compaction_tel = CompactionTelemetry::new(&registry);
    reset_rss_peak();
    let rss_start_mb = rss_status_mb("VmRSS:");

    let mut crawler = Crawler::new(world.clone(), config, store.clone());
    crawler.set_telemetry(CrawlTelemetry::new(registry.clone(), events.clone()));
    crawler.add_seed(&world.url_of(0), Some(0));
    let mut spilled_peak = 0usize;
    let crawl_wall = WallTimer::start();
    {
        let mut judge = |_: &AnalyzedDocument, _: &PageContext| Judgment {
            topic: Some(0),
            confidence: 1.0,
        };
        let mut vocab = Vocabulary::new();
        loop {
            if crawler.step(&mut judge, &mut vocab) == StepOutcome::FrontierEmpty {
                break;
            }
            spilled_peak = spilled_peak.max(crawler.frontier_spilled_len());
        }
    }
    let crawl_wall_ms = (crawl_wall.elapsed_us() as f64 / 1000.0).max(0.001);
    let seal_wall = WallTimer::start();
    store.seal_now().expect("final seal");
    let seal_wall_ms = seal_wall.elapsed_us() as f64 / 1000.0;
    let compaction = store.compaction_stats();
    let mut last_compaction = CompactionStats::default();
    compaction_tel.record(&compaction, &mut last_compaction);
    let dedup = crawler.dedup_stats();

    // Peak RSS growth over the whole crawl, against the fixed budget.
    let rss_peak_mb = rss_status_mb("VmHWM:");
    let rss_growth_mb = (rss_peak_mb - rss_start_mb).max(0.0);

    let stats = crawler.stats().clone();
    let virtual_ms = crawler.clock_ms().max(1);
    let wall_ms = (total_wall.elapsed_us() as f64 / 1000.0).max(0.001);
    let report = json!({
        "scenario": params.name,
        "world_pages": pages,
        "visited_urls": stats.visited_urls,
        "stored_pages": stats.stored_pages,
        "harvest_ratio": stats.stored_pages as f64 / stats.visited_urls.max(1) as f64,
        "coverage": stats.visited_urls as f64 / pages as f64,
        "virtual_ms": virtual_ms,
        "urls_per_virtual_sec": stats.visited_urls as f64 * 1000.0 / virtual_ms as f64,
        "urls_per_wall_sec": stats.visited_urls as f64 * 1000.0 / wall_ms,
        "segments_sealed": store.segment_count(),
        "sealed_documents": store.sealed_documents(),
        "workspace_documents": store.workspace_documents(),
        "spilled_peak": spilled_peak,
        "spill_active": u64::from(spilled_peak > 0),
        "dedup_hot": dedup.hot as u64,
        "dedup_spilled": dedup.spilled as u64,
        "dedup_merges": dedup.merges,
        "dedup_disk_probes": dedup.disk_probes,
        "dedup_disk_hits": dedup.disk_hits,
        "dedup_io_errors": dedup.io_errors,
        "dedup_spill_active": u64::from(dedup.spilled > 0 || dedup.merges > 0),
        "compaction_runs": compaction.runs,
        "compaction_segments_merged": compaction.segments_merged,
        "compaction_rows_rewritten": compaction.rows_rewritten,
        "compaction_overrides_materialized": compaction.overrides_materialized,
        "compaction_bytes_written": compaction.bytes_written,
        "compaction_orphans_reaped": compaction.orphans_reaped,
        "paged_blocks_generated": world.paged_blocks_generated(),
        "paged_resident_blocks": world.paged_resident_blocks(),
        "rss_start_mb": rss_start_mb,
        "rss_peak_mb": rss_peak_mb,
        "rss_growth_mb": rss_growth_mb,
        "rss_budget_mb": params.rss_budget_mb,
        "rss_within_budget": u64::from(rss_growth_mb <= params.rss_budget_mb),
        "wall_ms": wall_ms,
        "stages": {
            "crawl": { "wall_ms": crawl_wall_ms },
            "final_seal": { "wall_ms": seal_wall_ms },
        },
    });
    let _ = std::fs::remove_dir_all(&scratch);
    ScenarioRun {
        report,
        evidence: DeterminismEvidence {
            snapshot_json: registry.snapshot().deterministic().to_json(),
            events_jsonl: events.to_jsonl(),
        },
    }
}

/// Run the dist scenario once: the coordinator/worker distributed
/// crawl under node-kill chaos, against a calm reference.
///
/// Three legs share one world and one scenario-wide `dist.*` registry:
///
/// * **calm** — an N-node crawl to frontier exhaustion; its page set
///   and harvest ratio are the reference,
/// * **chaos** — the same crawl under a seeded [`NodeFaultPlan`]
///   (whole-node kills and stalls), interrupted by a whole-process
///   kill at a virtual-time budget,
/// * **resume** — recovery from the newest crash-consistent multi-node
///   generation (timed as `recovery_wall_ms`), the fault plan
///   reinstalled, and the crawl drained.
///
/// Gated: the chaos run must converge to exactly the calm page set
/// (`converged`, exact — the acceptance criterion "calm contents minus
/// quarantined URLs" with a poison budget high enough that nothing
/// quarantines), the scripted kill/restart counts and the
/// lease-requeue coverage must not silently shrink, the chaos harvest
/// ratio gates against its own baseline (`ratio_drift` vs calm is
/// reported, not gated: re-stores after node kills inflate the chaos
/// counters — the within-2%-of-uninterrupted contract is asserted on
/// clean counters in `crates/dist/tests/dist_chaos.rs`), and the
/// resume path gets a loose wall-time backstop.
pub fn run_dist_scenario(mode: GateMode) -> ScenarioRun {
    let (nodes, page_scale, interrupt_ms) = match mode {
        GateMode::Full => (4usize, 3usize, 5_000u64),
        GateMode::Smoke => (3, 1, 3_000),
    };
    let mut world_config = WorldConfig::small_test(GATE_SEED);
    // Scale the small-test topology rather than using the portal
    // world: the dist crawl drains its whole reachable component, so
    // the world itself is the size knob.
    world_config.topics = vec![
        TopicConfig::new("dbresearch", "database_research", 60 * page_scale, 3),
        TopicConfig::new("datamining", "data_mining", 40 * page_scale, 2),
        TopicConfig::new("sports", "sports", 60 * page_scale, 3),
        TopicConfig::new("entertainment", "entertainment", 60 * page_scale, 3),
    ];
    let world = Arc::new(world_config.build());
    let pages = world.page_count() as u64;
    let judge: Arc<dyn BatchJudge> = Arc::new(|_: &AnalyzedDocument, _: &PageContext| Judgment {
        topic: Some(0),
        confidence: 1.0,
    });
    let registry = Arc::new(Registry::new());
    let events = Arc::new(EventLog::default());
    let telemetry = DistTelemetry::new(registry.clone(), events.clone());
    let total_wall = WallTimer::start();

    let dist_config = |dir: &Path| {
        let mut config = DistConfig::new(nodes, dir);
        // Depth beyond the world's diameter (truncation would make the
        // reachable fringe scheduling-dependent) and a poison budget
        // nothing reaches, so calm and chaos converge exactly.
        config.max_depth = 100;
        config.poison_budget = 100;
        config.snapshot_every_acks = 8;
        config
    };
    let seed_coordinator = |dir: &Path, telemetry: &DistTelemetry| {
        let mut coord = Coordinator::new(world.clone(), judge.clone(), dist_config(dir));
        coord.set_telemetry(telemetry.clone());
        for id in 1..=6 {
            coord.add_seed(&world.url_of(id), Some(0));
        }
        coord
    };
    let page_ids = |coord: &Coordinator| {
        let mut ids: Vec<u64> = coord
            .combined_store()
            .all_documents()
            .into_iter()
            .map(|d| d.id)
            .collect();
        ids.sort_unstable();
        ids
    };

    // Calm leg: the reference page set and harvest ratio.
    let calm_dir = std::env::temp_dir().join(format!("bingo-bench-dist-calm-{}", mode.key()));
    let _ = std::fs::remove_dir_all(&calm_dir);
    let calm_wall = WallTimer::start();
    let mut calm = seed_coordinator(&calm_dir, &telemetry);
    let calm_stats = calm.run(10_000_000).expect("calm dist run");
    let calm_wall_ms = (calm_wall.elapsed_us() as f64 / 1000.0).max(0.001);
    let calm_ids = page_ids(&calm);
    let calm_visited = calm_stats.fetch_ok + calm_stats.fetch_err + calm_stats.redirects;
    let calm_ratio = calm_stats.stored as f64 / calm_visited.max(1) as f64;

    // Chaos leg: scripted node kills/stalls, then the whole process
    // dies at a virtual-time budget.
    let chaos_dir = std::env::temp_dir().join(format!("bingo-bench-dist-chaos-{}", mode.key()));
    let _ = std::fs::remove_dir_all(&chaos_dir);
    let plan = NodeFaultPlan::generate(GATE_SEED, nodes, &NodeFaultProfile::chaos());
    assert!(!plan.is_empty(), "chaos profile must script node faults");
    let chaos_wall = WallTimer::start();
    let mut doomed = seed_coordinator(&chaos_dir, &telemetry);
    doomed.install_faults(plan.clone());
    doomed.run(interrupt_ms).expect("interrupted dist run");
    drop(doomed); // process killed; the cut on disk is the survivor

    // Resume leg: recover the newest complete multi-node generation
    // (timed), reinstall the plan, drain the crawl.
    let recovery_wall = WallTimer::start();
    let mut resumed = Coordinator::resume(world.clone(), judge.clone(), dist_config(&chaos_dir))
        .expect("dist resume from committed cut");
    let recovery_wall_ms = (recovery_wall.elapsed_us() as f64 / 1000.0).max(0.001);
    resumed.set_telemetry(telemetry.clone());
    resumed.install_faults(plan);
    let final_stats = resumed.run(10_000_000).expect("resumed dist run");
    let chaos_wall_ms = (chaos_wall.elapsed_us() as f64 / 1000.0).max(0.001);
    let chaos_ids = page_ids(&resumed);
    let queue_stats = resumed.queue_stats();
    let visited = final_stats.fetch_ok + final_stats.fetch_err + final_stats.redirects;
    let harvest_ratio = final_stats.stored as f64 / visited.max(1) as f64;
    let ratio_drift = (harvest_ratio - calm_ratio).abs() / calm_ratio.max(1e-9);
    let converged = u64::from(chaos_ids == calm_ids);
    let _ = std::fs::remove_dir_all(&calm_dir);
    let _ = std::fs::remove_dir_all(&chaos_dir);

    let wall_ms = (total_wall.elapsed_us() as f64 / 1000.0).max(0.001);
    let report = json!({
        "scenario": "dist",
        "nodes": nodes,
        "world_pages": pages,
        "stored_pages": final_stats.stored,
        "stored_calm": calm_stats.stored,
        "harvest_ratio": harvest_ratio,
        "harvest_ratio_calm": calm_ratio,
        "ratio_drift": ratio_drift,
        "converged": converged,
        "kills": final_stats.kills,
        "stalls": final_stats.stalls,
        "restarts": final_stats.restarts,
        "replayed": final_stats.replayed,
        "discarded_batches": final_stats.discarded_batches,
        "requeued": queue_stats.requeued,
        "quarantined": queue_stats.quarantined,
        "snapshots": final_stats.snapshots,
        "recovery_wall_ms": recovery_wall_ms,
        "wall_ms": wall_ms,
        "stages": {
            "calm": { "wall_ms": calm_wall_ms },
            "chaos": { "wall_ms": chaos_wall_ms },
        },
    });
    ScenarioRun {
        report,
        evidence: DeterminismEvidence {
            snapshot_json: registry.snapshot().deterministic().to_json(),
            events_jsonl: events.to_jsonl(),
        },
    }
}

/// How one metric of a scenario report is gated.
#[derive(Debug, Clone, Copy)]
pub struct MetricSpec {
    /// Dot path into the report (`stages.train.wall_ms`).
    pub path: &'static str,
    /// `true`: regression = value below baseline; `false`: above.
    pub higher_is_better: bool,
    /// Relative tolerance before the gate fails.
    pub rel_tol: f64,
    /// Wall-clock metric: expectation is scaled by the CPU calibration
    /// ratio and the tolerance is a gross-regression backstop.
    pub wall: bool,
}

/// Gated metrics of the crawl scenario.
pub const CRAWL_SPECS: &[MetricSpec] = &[
    MetricSpec {
        path: "urls_per_virtual_sec",
        higher_is_better: true,
        rel_tol: 0.10,
        wall: false,
    },
    MetricSpec {
        path: "harvest_ratio",
        higher_is_better: true,
        rel_tol: 0.10,
        wall: false,
    },
    MetricSpec {
        path: "stored_pages",
        higher_is_better: true,
        rel_tol: 0.10,
        wall: false,
    },
    MetricSpec {
        path: "urls_per_wall_sec",
        higher_is_better: true,
        rel_tol: 0.50,
        wall: true,
    },
];

/// Gated metrics of the classify scenario.
pub const CLASSIFY_SPECS: &[MetricSpec] = &[
    MetricSpec {
        path: "macro_f1",
        higher_is_better: true,
        rel_tol: 0.05,
        wall: false,
    },
    MetricSpec {
        path: "docs_per_wall_sec",
        higher_is_better: true,
        rel_tol: 0.50,
        wall: true,
    },
];

/// Gated metrics of the pipeline scenario. Counts come from the
/// single-thread leg (deterministic); wall throughput from the
/// multi-thread leg.
pub const PIPELINE_SPECS: &[MetricSpec] = &[
    MetricSpec {
        path: "documents",
        higher_is_better: true,
        rel_tol: 0.02,
        wall: false,
    },
    MetricSpec {
        path: "positively_classified",
        higher_is_better: true,
        rel_tol: 0.05,
        wall: false,
    },
    MetricSpec {
        path: "link_rows",
        higher_is_better: true,
        rel_tol: 0.05,
        wall: false,
    },
    MetricSpec {
        path: "docs_per_minute",
        higher_is_better: true,
        rel_tol: 0.50,
        wall: true,
    },
];

/// Gated metrics of the recovery scenario. Harvest ratio and stored
/// pages are deterministic; the recovery wall time is a loose backstop
/// against the resume path getting pathologically slow.
pub const RECOVERY_SPECS: &[MetricSpec] = &[
    MetricSpec {
        path: "harvest_ratio",
        higher_is_better: true,
        rel_tol: 0.10,
        wall: false,
    },
    MetricSpec {
        path: "stored_resumed",
        higher_is_better: true,
        rel_tol: 0.05,
        wall: false,
    },
    MetricSpec {
        path: "recovery_wall_ms",
        higher_is_better: false,
        rel_tol: 1.0,
        wall: true,
    },
];

/// Gated metrics of the serve scenario. Request/hit counts and the
/// batch-equivalence bit come from the deterministic leg (exact replay,
/// tight tolerances — `equivalence_ok` admits none); QPS and latency
/// percentiles come from the concurrent leg and gate loosely as
/// calibration-scaled wall metrics.
pub const SERVE_SPECS: &[MetricSpec] = &[
    MetricSpec {
        path: "queries_issued",
        higher_is_better: true,
        rel_tol: 0.02,
        wall: false,
    },
    MetricSpec {
        path: "query_hits",
        higher_is_better: true,
        rel_tol: 0.10,
        wall: false,
    },
    MetricSpec {
        path: "stored_pages",
        higher_is_better: true,
        rel_tol: 0.10,
        wall: false,
    },
    MetricSpec {
        path: "epochs",
        higher_is_better: true,
        rel_tol: 0.10,
        wall: false,
    },
    MetricSpec {
        path: "equivalence_ok",
        higher_is_better: true,
        rel_tol: 0.0,
        wall: false,
    },
    MetricSpec {
        // Concurrent-leg QPS swings with runner contention (the crawl
        // threads compete with the readers); this is a collapse
        // detector, not a throughput benchmark.
        path: "qps",
        higher_is_better: true,
        rel_tol: 0.75,
        wall: true,
    },
    MetricSpec {
        path: "p50_us",
        higher_is_better: false,
        rel_tol: 2.0,
        wall: true,
    },
    MetricSpec {
        path: "p99_us",
        higher_is_better: false,
        rel_tol: 3.0,
        wall: true,
    },
];

/// Gated metrics of the scale scenario. Coverage, harvest and segment
/// counts are deterministic and gate tightly; `rss_within_budget` is
/// the memory-bounded contract itself (the crawl's RSS growth stayed
/// inside the fixed per-mode budget — no tolerance); wall throughput
/// is the usual loose calibration-scaled backstop.
pub const SCALE_SPECS: &[MetricSpec] = &[
    MetricSpec {
        path: "coverage",
        higher_is_better: true,
        rel_tol: 0.02,
        wall: false,
    },
    MetricSpec {
        path: "stored_pages",
        higher_is_better: true,
        rel_tol: 0.05,
        wall: false,
    },
    MetricSpec {
        path: "harvest_ratio",
        higher_is_better: true,
        rel_tol: 0.05,
        wall: false,
    },
    MetricSpec {
        path: "segments_sealed",
        higher_is_better: true,
        rel_tol: 0.05,
        wall: false,
    },
    MetricSpec {
        path: "spill_active",
        higher_is_better: true,
        rel_tol: 0.0,
        wall: false,
    },
    MetricSpec {
        path: "rss_within_budget",
        higher_is_better: true,
        rel_tol: 0.0,
        wall: false,
    },
    MetricSpec {
        path: "urls_per_wall_sec",
        higher_is_better: true,
        rel_tol: 0.50,
        wall: true,
    },
];

/// Gated metrics of the 10M scale scenario: everything the 1M scale
/// scenario gates, plus the bounded-layer evidence — the duplicate
/// filter actually spilled (`dedup_spill_active`, exact), it never hit
/// an I/O error (`dedup_io_errors` must stay at the baseline's zero),
/// and segment compaction performed at least the baseline's merge runs
/// (exact; the smoke sizes guarantee runs > 0, full-size seals land on
/// the seal threshold so full mode records 0 and trivially holds).
pub const SCALE10M_SPECS: &[MetricSpec] = &[
    MetricSpec {
        path: "coverage",
        higher_is_better: true,
        rel_tol: 0.02,
        wall: false,
    },
    MetricSpec {
        path: "stored_pages",
        higher_is_better: true,
        rel_tol: 0.05,
        wall: false,
    },
    MetricSpec {
        path: "harvest_ratio",
        higher_is_better: true,
        rel_tol: 0.05,
        wall: false,
    },
    MetricSpec {
        path: "segments_sealed",
        higher_is_better: true,
        rel_tol: 0.05,
        wall: false,
    },
    MetricSpec {
        path: "spill_active",
        higher_is_better: true,
        rel_tol: 0.0,
        wall: false,
    },
    MetricSpec {
        path: "dedup_spill_active",
        higher_is_better: true,
        rel_tol: 0.0,
        wall: false,
    },
    MetricSpec {
        path: "dedup_io_errors",
        higher_is_better: false,
        rel_tol: 0.0,
        wall: false,
    },
    MetricSpec {
        path: "compaction_runs",
        higher_is_better: true,
        rel_tol: 0.0,
        wall: false,
    },
    MetricSpec {
        path: "rss_within_budget",
        higher_is_better: true,
        rel_tol: 0.0,
        wall: false,
    },
    MetricSpec {
        path: "urls_per_wall_sec",
        higher_is_better: true,
        rel_tol: 0.50,
        wall: true,
    },
];

/// Gated metrics of the dist scenario. Convergence is the contract
/// itself and admits no tolerance; the scripted kill/restart counts
/// and the lease-requeue coverage are lower-bounded so the chaos leg
/// cannot silently stop exercising recovery; harvest ratio and stored
/// pages gate like every crawl; the resume wall time is a loose
/// calibration-scaled backstop against the recovery path getting
/// pathologically slow.
pub const DIST_SPECS: &[MetricSpec] = &[
    MetricSpec {
        path: "converged",
        higher_is_better: true,
        rel_tol: 0.0,
        wall: false,
    },
    MetricSpec {
        path: "stored_pages",
        higher_is_better: true,
        rel_tol: 0.05,
        wall: false,
    },
    MetricSpec {
        path: "harvest_ratio",
        higher_is_better: true,
        rel_tol: 0.05,
        wall: false,
    },
    MetricSpec {
        path: "kills",
        higher_is_better: true,
        rel_tol: 0.0,
        wall: false,
    },
    MetricSpec {
        path: "restarts",
        higher_is_better: true,
        rel_tol: 0.0,
        wall: false,
    },
    MetricSpec {
        path: "requeued",
        higher_is_better: true,
        rel_tol: 0.25,
        wall: false,
    },
    MetricSpec {
        path: "recovery_wall_ms",
        higher_is_better: false,
        rel_tol: 1.0,
        wall: true,
    },
];

/// Resolve a dot path inside a JSON value.
pub fn json_path<'v>(value: &'v Value, path: &str) -> Option<&'v Value> {
    let mut cur = value;
    for seg in path.split('.') {
        cur = cur.get(seg)?;
    }
    Some(cur)
}

/// Structured baseline-vs-actual outcome of one gated metric — the
/// machine-readable form behind [`compare_reports`], also rendered as
/// a markdown table into `$GITHUB_STEP_SUMMARY` on gate failure.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    /// Scenario the metric belongs to.
    pub scenario: String,
    /// Dot path of the metric inside the report.
    pub path: String,
    /// Baseline value (`None`: missing from the baseline file).
    pub baseline: Option<f64>,
    /// Value of the current run (`None`: missing from the report).
    pub actual: Option<f64>,
    /// The pass bound after tolerance and calibration scaling.
    pub bound: f64,
    /// Direction of the bound.
    pub higher_is_better: bool,
    /// Wall-clock metric (bound was calibration-scaled).
    pub wall: bool,
    /// Calibration ratio applied to wall bounds.
    pub calib_scale: f64,
    /// Whether the metric passed.
    pub ok: bool,
}

impl MetricDiff {
    /// The human-readable failure line (`None` when the metric passed).
    pub fn failure_line(&self) -> Option<String> {
        if self.ok {
            return None;
        }
        Some(match (self.baseline, self.actual) {
            (None, _) => format!(
                "{}.{}: missing from baseline (re-record with --update)",
                self.scenario, self.path
            ),
            (_, None) => format!("{}.{}: missing from current run", self.scenario, self.path),
            (Some(base), Some(cur)) => format!(
                "{}.{}: {cur:.4} vs baseline {base:.4} (expected {} {:.4}{})",
                self.scenario,
                self.path,
                if self.higher_is_better { ">=" } else { "<=" },
                self.bound,
                if self.wall {
                    format!(", calibration-scaled x{:.3}", self.calib_scale)
                } else {
                    String::new()
                },
            ),
        })
    }
}

/// Render diffs as a GitHub-flavored markdown table (baseline vs
/// actual per metric), for `$GITHUB_STEP_SUMMARY`.
pub fn markdown_diff_table(diffs: &[MetricDiff]) -> String {
    let mut out = String::from(
        "| metric | baseline | actual | bound | direction | status |\n\
         |---|---|---|---|---|---|\n",
    );
    let fmt = |v: Option<f64>| v.map_or("missing".to_string(), |x| format!("{x:.4}"));
    for d in diffs {
        out.push_str(&format!(
            "| {}.{} | {} | {} | {:.4}{} | {} | {} |\n",
            d.scenario,
            d.path,
            fmt(d.baseline),
            fmt(d.actual),
            d.bound,
            if d.wall { " (wall)" } else { "" },
            if d.higher_is_better { ">=" } else { "<=" },
            if d.ok { "ok" } else { "FAIL" },
        ));
    }
    out
}

/// Compare a current report against a baseline section, metric by
/// metric. `calib_scale` is `baseline_calibration_ms /
/// current_calibration_ms` — values < 1 mean this machine is slower,
/// so wall expectations shrink. Returns one [`MetricDiff`] per spec.
pub fn diff_reports(
    scenario: &str,
    baseline: &Value,
    current: &Value,
    specs: &[MetricSpec],
    calib_scale: f64,
) -> Vec<MetricDiff> {
    let mut diffs = Vec::new();
    for spec in specs {
        let base = json_path(baseline, spec.path).and_then(Value::as_f64);
        let cur = json_path(current, spec.path).and_then(Value::as_f64);
        // A slower machine (calib_scale < 1) lowers wall-throughput
        // expectations and *raises* wall-latency expectations.
        // Calibration only ever *loosens* a wall bound: a machine that
        // calibrates faster than the baseline recorder gets no stricter
        // bound, because the calibration workload itself is noisy on
        // shared runners and must not manufacture regressions.
        let loosen = calib_scale.min(1.0);
        let expected = base.unwrap_or(0.0);
        let expected = if spec.wall {
            if spec.higher_is_better {
                expected * loosen
            } else {
                expected / loosen
            }
        } else {
            expected
        };
        let bound = if spec.higher_is_better {
            expected * (1.0 - spec.rel_tol)
        } else {
            expected * (1.0 + spec.rel_tol)
        };
        let ok = match (base, cur) {
            (Some(_), Some(cur)) => {
                if spec.higher_is_better {
                    cur >= bound
                } else {
                    cur <= bound
                }
            }
            _ => false,
        };
        diffs.push(MetricDiff {
            scenario: scenario.to_string(),
            path: spec.path.to_string(),
            baseline: base,
            actual: cur,
            bound,
            higher_is_better: spec.higher_is_better,
            wall: spec.wall,
            calib_scale,
            ok,
        });
    }
    diffs
}

/// Compare a current report against a baseline section. Returns
/// human-readable failure lines (empty = pass); the structured form is
/// [`diff_reports`].
pub fn compare_reports(
    scenario: &str,
    baseline: &Value,
    current: &Value,
    specs: &[MetricSpec],
    calib_scale: f64,
) -> Vec<String> {
    diff_reports(scenario, baseline, current, specs, calib_scale)
        .iter()
        .filter_map(MetricDiff::failure_line)
        .collect()
}

/// Check that two same-seed runs produced byte-identical telemetry.
/// Returns failure lines (empty = deterministic).
pub fn check_determinism(
    scenario: &str,
    a: &DeterminismEvidence,
    b: &DeterminismEvidence,
) -> Vec<String> {
    let mut failures = Vec::new();
    if a.snapshot_json != b.snapshot_json {
        failures.push(format!(
            "{scenario}: deterministic metrics snapshots differ between same-seed runs"
        ));
    }
    if a.events_jsonl != b.events_jsonl {
        failures.push(format!(
            "{scenario}: event logs differ between same-seed runs"
        ));
    }
    failures
}

/// Baseline file name of a scenario.
pub fn baseline_file(scenario: &str) -> String {
    format!("BENCH_{scenario}.json")
}

/// Load a baseline file; `None` when missing or unreadable.
pub fn load_baseline(dir: &Path, scenario: &str) -> Option<Value> {
    let text = std::fs::read_to_string(dir.join(baseline_file(scenario))).ok()?;
    serde_json::from_str(&text).ok()
}

/// Metric-name prefixes of the spill/compaction telemetry that gets its
/// own `<scenario>.<mode>.spill.json` artifact next to the full
/// snapshot — the memory-bounding evidence (dedup shards, vocabulary
/// log, work-queue overflow, stale-file sweeps, segment compaction) in
/// one small file instead of buried in the complete metrics dump.
const SPILL_METRIC_PREFIXES: &[&str] = &[
    "crawl.dedup.",
    "crawl.spill.",
    "crawl.work_queue.",
    "vocab.spill.",
    "store.compaction.",
];

/// Extract the spill/compaction counters and gauges from a rendered
/// metrics snapshot. Returns an object with `counters` and `gauges`
/// sections holding only `SPILL_METRIC_PREFIXES` metrics (empty
/// sections when the snapshot has none — e.g. scenarios without a
/// crawler).
pub fn spill_telemetry(snapshot_json: &str) -> Value {
    let snap: Value = serde_json::from_str(snapshot_json).unwrap_or(Value::Null);
    let mut sections: Vec<(String, Value)> = Vec::new();
    for kind in ["counters", "gauges"] {
        let mut kept: Vec<(String, Value)> = Vec::new();
        if let Some(Value::Object(entries)) = snap.get(kind) {
            for (key, value) in entries {
                if SPILL_METRIC_PREFIXES.iter().any(|p| key.starts_with(p)) {
                    kept.push((key.clone(), value.clone()));
                }
            }
        }
        sections.push((kind.to_string(), Value::Object(kept)));
    }
    Value::Object(sections)
}

/// Artifacts of one gated scenario+mode: report, evidence files, and
/// the spill/compaction telemetry extract.
pub fn write_run_artifacts(
    out_dir: &Path,
    scenario: &str,
    mode: GateMode,
    run: &ScenarioRun,
) -> std::io::Result<()> {
    std::fs::create_dir_all(out_dir)?;
    let stem = format!("{scenario}.{}", mode.key());
    std::fs::write(
        out_dir.join(format!("{stem}.report.json")),
        serde_json::to_string_pretty(&run.report).expect("report serializes"),
    )?;
    std::fs::write(
        out_dir.join(format!("{stem}.metrics.json")),
        &run.evidence.snapshot_json,
    )?;
    std::fs::write(
        out_dir.join(format!("{stem}.events.jsonl")),
        &run.evidence.events_jsonl,
    )?;
    std::fs::write(
        out_dir.join(format!("{stem}.spill.json")),
        serde_json::to_string_pretty(&spill_telemetry(&run.evidence.snapshot_json))
            .expect("spill telemetry serializes"),
    )?;
    Ok(())
}

/// Default artifact directory for gate runs.
pub fn default_out_dir() -> PathBuf {
    PathBuf::from("target/bench_gate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_path_traverses() {
        let v = json!({"a": {"b": {"c": 3}}});
        assert_eq!(json_path(&v, "a.b.c").and_then(Value::as_u64), Some(3));
        assert!(json_path(&v, "a.x").is_none());
    }

    #[test]
    fn compare_flags_regressions_within_tolerance() {
        let base = json!({"tput": 100.0, "wall_tput": 50.0});
        let specs = [
            MetricSpec {
                path: "tput",
                higher_is_better: true,
                rel_tol: 0.10,
                wall: false,
            },
            MetricSpec {
                path: "wall_tput",
                higher_is_better: true,
                rel_tol: 0.50,
                wall: true,
            },
        ];
        // Within tolerance: pass.
        let ok = json!({"tput": 91.0, "wall_tput": 40.0});
        assert!(compare_reports("s", &base, &ok, &specs, 1.0).is_empty());
        // 11% virtual-throughput drop: fail.
        let slow = json!({"tput": 89.0, "wall_tput": 50.0});
        let fails = compare_reports("s", &base, &slow, &specs, 1.0);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("tput"));
        // A slower machine (calibration scale 0.5) halves the wall
        // expectation: 20 ≥ 50·0.5·0.5 passes.
        let other_machine = json!({"tput": 100.0, "wall_tput": 20.0});
        assert!(compare_reports("s", &base, &other_machine, &specs, 0.5).is_empty());
        // Missing metric is a failure, not a silent pass.
        let missing = json!({"tput": 100.0});
        assert_eq!(compare_reports("s", &base, &missing, &specs, 1.0).len(), 1);
    }

    #[test]
    fn diff_reports_structures_every_spec() {
        let base = json!({"tput": 100.0});
        let specs = [
            MetricSpec {
                path: "tput",
                higher_is_better: true,
                rel_tol: 0.10,
                wall: false,
            },
            MetricSpec {
                path: "absent",
                higher_is_better: true,
                rel_tol: 0.10,
                wall: false,
            },
        ];
        let cur = json!({"tput": 89.0, "absent": 1.0});
        let diffs = diff_reports("s", &base, &cur, &specs, 1.0);
        assert_eq!(diffs.len(), 2);
        assert!(!diffs[0].ok);
        assert_eq!(diffs[0].baseline, Some(100.0));
        assert_eq!(diffs[0].actual, Some(89.0));
        assert!((diffs[0].bound - 90.0).abs() < 1e-9);
        assert!(!diffs[1].ok, "missing baseline must not pass");
        assert_eq!(diffs[1].baseline, None);
        // failure_line() reproduces the compare_reports strings.
        assert!(diffs[0].failure_line().unwrap().contains("89.0000"));
        assert!(diffs[1]
            .failure_line()
            .unwrap()
            .contains("missing from baseline"));
        // Passing diffs carry no failure line.
        let ok = diff_reports("s", &base, &json!({"tput": 95.0}), &specs[..1], 1.0);
        assert!(ok[0].ok);
        assert!(ok[0].failure_line().is_none());
    }

    #[test]
    fn markdown_table_marks_failures() {
        let base = json!({"tput": 100.0});
        let specs = [MetricSpec {
            path: "tput",
            higher_is_better: true,
            rel_tol: 0.10,
            wall: false,
        }];
        let diffs = diff_reports("s", &base, &json!({"tput": 50.0}), &specs, 1.0);
        let table = markdown_diff_table(&diffs);
        assert!(table.contains("| s.tput |"));
        assert!(table.contains("| FAIL |"));
        assert!(table.contains("100.0000"));
        assert!(table.contains("50.0000"));
    }

    #[test]
    fn wall_latency_expectation_rises_on_slower_machines() {
        let base = json!({"lat": 100.0});
        let specs = [MetricSpec {
            path: "lat",
            higher_is_better: false,
            rel_tol: 0.50,
            wall: true,
        }];
        // Same machine: 160 > 100·1.5 fails.
        let slow = json!({"lat": 160.0});
        assert_eq!(compare_reports("s", &base, &slow, &specs, 1.0).len(), 1);
        // Half-speed machine (scale 0.5): bound doubles to 100/0.5·1.5
        // = 300, so the same 160 passes.
        assert!(compare_reports("s", &base, &slow, &specs, 0.5).is_empty());
        // A double-speed machine (scale 2.0) must NOT tighten the bound
        // below the baseline's own tolerance: 140 ≤ 100·1.5 still
        // passes.
        let ok = json!({"lat": 140.0});
        assert!(compare_reports("s", &base, &ok, &specs, 2.0).is_empty());
    }

    #[test]
    fn determinism_check_compares_bytes() {
        let a = DeterminismEvidence {
            snapshot_json: "{}".into(),
            events_jsonl: "".into(),
        };
        let mut b = a.clone();
        assert!(check_determinism("s", &a, &b).is_empty());
        b.events_jsonl = "x\n".into();
        assert_eq!(check_determinism("s", &a, &b).len(), 1);
    }

    #[test]
    fn calibration_is_positive() {
        assert!(calibrate_cpu_ms() > 0.0);
    }

    /// End-to-end: the smoke pipeline scenario runs, its single-thread
    /// leg replays byte-identically, and the counters are non-trivial.
    #[test]
    fn pipeline_scenario_is_deterministic_and_counts_documents() {
        let a = run_pipeline_scenario(GateMode::Smoke);
        let b = run_pipeline_scenario(GateMode::Smoke);
        assert!(check_determinism("pipeline", &a.evidence, &b.evidence).is_empty());
        let docs = json_path(&a.report, "documents")
            .and_then(Value::as_u64)
            .unwrap();
        assert!(docs >= 100, "pipeline stored too few documents: {docs}");
        assert!(
            json_path(&a.report, "positively_classified")
                .and_then(Value::as_u64)
                .unwrap()
                > 0,
            "classification never fired"
        );
        assert!(
            json_path(&a.report, "link_rows")
                .and_then(Value::as_u64)
                .unwrap()
                > 0,
            "no link rows emitted"
        );
    }

    /// End-to-end: the smoke recovery scenario survives its injected
    /// mid-checkpoint crash, replays byte-identically, and the resumed
    /// crawl actually recovers checkpointed progress.
    #[test]
    fn recovery_scenario_is_deterministic_and_recovers() {
        let a = run_recovery_scenario(GateMode::Smoke);
        let b = run_recovery_scenario(GateMode::Smoke);
        assert!(check_determinism("recovery", &a.evidence, &b.evidence).is_empty());
        let recovered = json_path(&a.report, "stored_recovered")
            .and_then(Value::as_u64)
            .unwrap();
        assert!(recovered > 0, "resume recovered nothing");
        let resumed = json_path(&a.report, "stored_resumed")
            .and_then(Value::as_u64)
            .unwrap();
        assert!(resumed > recovered, "no progress after resume");
        let drift = json_path(&a.report, "ratio_drift")
            .and_then(Value::as_f64)
            .unwrap();
        assert!(drift <= 0.05, "harvest ratio drifted {drift:.4}");
    }

    /// End-to-end: the smoke serve scenario replays byte-identically,
    /// the incremental index answers the fixed query prefix exactly
    /// like a batch rebuild, and the concurrent leg overlaps query
    /// traffic with the threaded crawl.
    #[test]
    fn serve_scenario_is_deterministic_and_snapshot_consistent() {
        let a = run_serve_scenario(GateMode::Smoke);
        let b = run_serve_scenario(GateMode::Smoke);
        assert!(check_determinism("serve", &a.evidence, &b.evidence).is_empty());
        assert_eq!(
            json_path(&a.report, "equivalence_ok").and_then(Value::as_u64),
            Some(1),
            "incremental snapshot diverged from batch rebuild"
        );
        let issued = json_path(&a.report, "queries_issued")
            .and_then(Value::as_u64)
            .unwrap();
        assert!(issued > 300, "virtual load generator barely ran: {issued}");
        assert!(
            json_path(&a.report, "query_hits")
                .and_then(Value::as_u64)
                .unwrap()
                > 0,
            "no query ever hit a document"
        );
        let mt_issued = json_path(&a.report, "mt_issued")
            .and_then(Value::as_u64)
            .unwrap();
        assert!(mt_issued >= 1_500, "closed loop under target: {mt_issued}");
        assert!(
            json_path(&a.report, "mt_during_crawl")
                .and_then(Value::as_u64)
                .unwrap()
                > 0,
            "no request overlapped the live crawl"
        );
        assert!(
            json_path(&a.report, "mt_max_epoch")
                .and_then(Value::as_u64)
                .unwrap()
                > 0,
            "concurrent readers never saw a published snapshot"
        );
    }

    /// End-to-end: a miniature scale run (600 paged pages, so it stays
    /// fast in debug builds) replays byte-identically, covers the whole
    /// paged world through the segmented store and spillable frontier,
    /// and stays inside its RSS budget.
    #[test]
    fn scale_scenario_is_deterministic_and_memory_bounded() {
        let mini = || ScaleParams {
            name: "scale",
            paged: bingo_webworld::PagedConfig {
                seed: GATE_SEED,
                hosts: 60,
                pages_per_host: 10,
                hot_cap: 16,
            },
            seal_every: 64,
            incoming_cap: 5_000,
            frontier_hot_cap: 16,
            dedup_hot_cap: None,
            page_terms_cap: 0,
            sparse: false,
            compaction: None,
            rss_budget_mb: 256.0,
            tag: "test".into(),
        };
        let a = run_scale_with(mini());
        let b = run_scale_with(mini());
        assert!(check_determinism("scale", &a.evidence, &b.evidence).is_empty());
        let get = |p: &str| json_path(&a.report, p).and_then(Value::as_u64).unwrap();
        assert!(
            json_path(&a.report, "coverage")
                .and_then(Value::as_f64)
                .unwrap()
                > 0.9,
            "crawl left most of the paged world unvisited"
        );
        assert!(get("segments_sealed") >= 2, "store never spanned segments");
        assert_eq!(get("spill_active"), 1, "frontier never spilled");
        assert_eq!(get("rss_within_budget"), 1, "RSS budget blown");
        assert_eq!(
            json_path(&a.report, "visited_urls").unwrap(),
            json_path(&b.report, "visited_urls").unwrap(),
            "same-seed runs disagree on visited count"
        );
    }

    /// End-to-end: the same miniature world with every bounding layer
    /// armed — spilling dedup, sparse segment index, compaction, capped
    /// term cache — replays byte-identically, visits exactly the same
    /// pages as the unbounded run (the spill layers must not change
    /// crawl behavior), and actually exercises dedup spill + compaction.
    #[test]
    fn scale_scenario_spill_layers_preserve_crawl_and_activate() {
        let world = bingo_webworld::PagedConfig {
            seed: GATE_SEED,
            hosts: 60,
            pages_per_host: 10,
            hot_cap: 16,
        };
        let plain = run_scale_with(ScaleParams {
            name: "scale",
            paged: world.clone(),
            seal_every: 64,
            incoming_cap: 5_000,
            frontier_hot_cap: 16,
            dedup_hot_cap: None,
            page_terms_cap: 0,
            sparse: false,
            compaction: None,
            rss_budget_mb: 256.0,
            tag: "test-plain".into(),
        });
        let bounded = || ScaleParams {
            name: "scale10m",
            paged: world.clone(),
            seal_every: 64,
            incoming_cap: 5_000,
            frontier_hot_cap: 16,
            dedup_hot_cap: Some(64),
            page_terms_cap: 128,
            sparse: true,
            compaction: Some(bingo_store::CompactionConfig {
                small_docs: 80,
                min_run: 3,
            }),
            rss_budget_mb: 256.0,
            tag: "test-bounded".into(),
        };
        let a = run_scale_with(bounded());
        let b = run_scale_with(bounded());
        assert!(check_determinism("scale10m", &a.evidence, &b.evidence).is_empty());
        for key in ["visited_urls", "stored_pages", "coverage"] {
            assert_eq!(
                json_path(&a.report, key).unwrap(),
                json_path(&plain.report, key).unwrap(),
                "spill layers changed the crawl ({key})"
            );
        }
        let get = |p: &str| json_path(&a.report, p).and_then(Value::as_u64).unwrap();
        assert_eq!(get("dedup_spill_active"), 1, "dedup never spilled");
        assert_eq!(get("dedup_io_errors"), 0, "dedup spill hit I/O errors");
        assert!(get("compaction_runs") > 0, "compaction never ran");
        assert!(
            get("segments_sealed") < plain_sealed(&plain.report),
            "compaction did not reduce live segment count"
        );
        assert_eq!(get("rss_within_budget"), 1, "RSS budget blown");
    }

    fn plain_sealed(report: &Value) -> u64 {
        json_path(report, "segments_sealed")
            .and_then(Value::as_u64)
            .unwrap()
    }

    /// End-to-end: the smoke classify scenario runs, is deterministic
    /// across two runs, and produces a usable report.
    #[test]
    fn classify_scenario_is_deterministic_and_scored() {
        let a = run_classify_scenario(GateMode::Smoke);
        let b = run_classify_scenario(GateMode::Smoke);
        assert!(check_determinism("classify", &a.evidence, &b.evidence).is_empty());
        let f1 = json_path(&a.report, "macro_f1")
            .and_then(Value::as_f64)
            .unwrap();
        assert!(f1 > 0.5, "macro-F1 collapsed: {f1}");
        assert!(
            json_path(&a.report, "evaluated")
                .and_then(Value::as_u64)
                .unwrap()
                > 30
        );
    }
}
