//! The expert-search experiment of Section 5.3 (Figures 4 and 5).
//!
//! A "needle-in-a-haystack" query: find public-domain open-source
//! implementations of the ARIES recovery algorithm. The procedure
//! mirrors the paper:
//!
//! 1. Query a conventional keyword engine over the whole corpus for
//!    "aries recovery method/algorithm"; the user selects 7 reasonable
//!    seed documents from the top ranks (Figure 4).
//! 2. A short focused crawl (10 virtual minutes) from those seeds.
//! 3. Postprocess with the local search engine: query "source code
//!    release" with cosine ranking and inspect the top 10 (Figure 5).
//!
//! The baseline contrast: the direct keyword query "public domain open
//! source aries recovery" against the whole corpus returns no useful
//! system pages in the top 10 — exactly the failure mode that motivates
//! focused crawling.

use crate::populate_others;
use bingo_core::{BingoEngine, EngineConfig, TopicTree};
use bingo_crawler::{CrawlConfig, CrawlStats, Crawler};
use bingo_search::{QueryOptions, RankingScheme, SearchEngine};
use bingo_store::{DocumentRow, DocumentStore};
use bingo_textproc::{analyze_html, ContentRegistry, Vocabulary};
use bingo_webworld::gen::WorldConfig;
use bingo_webworld::{FetchOutcome, World};
use std::sync::Arc;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct ExpertExperimentConfig {
    /// World seed.
    pub seed: u64,
    /// Focused-crawl budget in virtual ms (paper: 10 minutes).
    pub crawl_ms: u64,
    /// OTHERS negatives.
    pub n_others: usize,
    /// Authority-blend settings for the focused crawl (disabled by
    /// default; `exp_authority` flips it on for the recall contrast).
    pub authority: bingo_crawler::AuthorityConfig,
}

impl Default for ExpertExperimentConfig {
    fn default() -> Self {
        ExpertExperimentConfig {
            seed: 2003,
            crawl_ms: 600_000,
            n_others: 40,
            authority: bingo_crawler::AuthorityConfig::default(),
        }
    }
}

/// One ranked result row (Figure 5 style).
#[derive(Debug, Clone)]
pub struct RankedResult {
    /// Ranking score.
    pub score: f32,
    /// URL.
    pub url: String,
}

/// Experiment outcome.
#[derive(Debug, Clone)]
pub struct ExpertOutcome {
    /// The seed documents the "user" selected (Figure 4).
    pub seeds: Vec<String>,
    /// Crawl counters of the focused crawl.
    pub stats: CrawlStats,
    /// Documents positively classified into the ARIES topic.
    pub positive: u64,
    /// Top-10 for "source code release" over the crawl result (Figure 5).
    pub focused_top10: Vec<RankedResult>,
    /// Baseline: direct keyword query over the whole corpus.
    pub baseline_top10: Vec<RankedResult>,
    /// How many of the known needle pages (Shore/MiniBase/Exodus
    /// analogs) appear in the focused top-10.
    pub needles_in_focused_top10: usize,
    /// Same count for the baseline top-10.
    pub needles_in_baseline_top10: usize,
}

/// Build a conventional "Google-style" index over the *entire* corpus:
/// every page analyzed and indexed, no focusing. This is the baseline
/// the paper contrasts against.
pub fn build_global_index(world: &World, vocab: &mut Vocabulary) -> (DocumentStore, SearchEngine) {
    let registry = ContentRegistry::new();
    let store = DocumentStore::new();
    for id in 0..world.page_count() as u64 {
        let meta = world.page(id);
        if meta.size_hint.is_some() || meta.redirect_to.is_some() {
            continue;
        }
        let url = world.url_of(id);
        let FetchOutcome::Ok(resp) = world.fetch(&url, 0) else {
            continue;
        };
        let Ok(html) = registry.to_html(resp.mime, &resp.payload) else {
            continue;
        };
        let doc = analyze_html(&html, vocab);
        let _ = store.insert_document(DocumentRow {
            id,
            url,
            host: meta.host,
            mime: resp.mime,
            depth: 0,
            title: doc.title,
            topic: None,
            confidence: 0.0,
            term_freqs: doc.term_freqs.iter().map(|&(t, f)| (t.0, f)).collect(),
            size: resp.size as usize,
            fetched_at: 0,
        });
    }
    let engine = SearchEngine::build(&store);
    (store, engine)
}

/// The scenario's needle pages: open-source ARIES implementations.
pub const NEEDLE_PAGES: [&str; 5] = [
    "shore-home",
    "shore-node5",
    "minibase-home",
    "minibase-logmgr",
    "exodus-home",
];

fn needle_urls(world: &World) -> Vec<String> {
    NEEDLE_PAGES
        .iter()
        .filter_map(|n| world.named_page(n))
        .map(|p| world.url_of(p))
        .collect()
}

/// The seven Figure-4 seed pages.
pub const SEED_PAGES: [&str; 7] = [
    "seed:bell-labs-slides",
    "seed:cmu-lecture",
    "seed:harvard-reading",
    "seed:brandeis-abstract",
    "mohan-page",
    "seed:stanford-seminar",
    "seed:vldb-paper",
];

/// Run the expert-search experiment.
pub fn run(cfg: &ExpertExperimentConfig) -> ExpertOutcome {
    let world = Arc::new(WorldConfig::expert(cfg.seed).build());
    let needles = needle_urls(&world);

    // --- Step 0: the baseline keyword engine over the whole corpus.
    let mut global_vocab = Vocabulary::new();
    let (_global_store, global_engine) = build_global_index(&world, &mut global_vocab);
    let baseline_top10: Vec<RankedResult> = global_engine
        .query(
            &global_vocab,
            "public domain open source aries recovery",
            &QueryOptions {
                ranking: RankingScheme::Cosine,
                top_k: 10,
                filter: bingo_search::TopicFilter::Any,
            },
        )
        .into_iter()
        .map(|h| RankedResult {
            score: h.score,
            url: h.url,
        })
        .collect();

    // --- Step 1: the user selects the 7 seeds (Figure 4). The scenario
    // pins them; sanity: they must rank well for the bootstrap query.
    let seeds: Vec<String> = SEED_PAGES
        .iter()
        .map(|n| world.url_of(world.named_page(n).expect("scenario page")))
        .collect();

    // --- Step 2: focused crawl from the seeds. Unlike the §5.2 portal
    // run, the archetype-confidence threshold stays ON here: the needle
    // pages blend recovery and open-source vocabulary, and promoting
    // them as archetypes drags the whole crawl into the open-source
    // topic — the §3.2 topic-drift failure mode.
    let mut engine = BingoEngine::new(EngineConfig::default());
    let topic = engine.add_topic(TopicTree::ROOT, "ARIES");
    for url in &seeds {
        engine
            .add_training_url(&world, topic, url)
            .unwrap_or_else(|e| panic!("seed {url}: {e}"));
    }
    populate_others(&mut engine, &world, &[3, 4], cfg.n_others);
    engine.train().expect("training");

    let mut crawler = Crawler::new(
        world.clone(),
        CrawlConfig {
            max_depth: 0,
            authority: cfg.authority.clone(),
            ..CrawlConfig::default()
        },
        DocumentStore::new(),
    );
    for url in &seeds {
        crawler.add_seed(url, Some(topic.0));
    }
    // Short learning slice, one retraining, then harvest — compressed
    // into the 10-minute budget like the paper's expert crawl.
    engine.crawl_until(&mut crawler, cfg.crawl_ms / 5, 0);
    engine.retrain(&mut crawler);
    engine.switch_to_harvesting(&mut crawler);
    engine.crawl_until(&mut crawler, cfg.crawl_ms, 0);

    // --- Step 3: postprocess with the local search engine.
    let local = SearchEngine::build(crawler.store());
    // "Keyword search filtering with relevance ranking based on cosine
    // similarity", filtered at the ARIES class of the topic hierarchy.
    let focused_top10: Vec<RankedResult> = local
        .query(
            &engine.vocab,
            "source code release",
            &QueryOptions {
                ranking: RankingScheme::Cosine,
                top_k: 10,
                filter: bingo_search::TopicFilter::Exact(topic.0),
            },
        )
        .into_iter()
        .map(|h| RankedResult {
            score: h.score,
            url: h.url,
        })
        .collect();

    if std::env::var("BINGO_DEBUG_EXPERT").is_ok() {
        let mut by_topic: std::collections::HashMap<Option<u32>, usize> = Default::default();
        crawler.store().for_each_document(|row| {
            if row.topic == Some(topic.0) {
                *by_topic.entry(world.true_topic(row.id)).or_insert(0) += 1;
            }
        });
        eprintln!("run(): classified-ARIES by true topic: {by_topic:?}");
        for d in engine
            .tree
            .node(topic)
            .training
            .iter()
            .filter(|d| d.archetype)
        {
            eprintln!(
                "run(): archetype {} true={:?}",
                d.url,
                world.resolve_url(&d.url).and_then(|p| world.true_topic(p))
            );
        }
    }

    let count_needles = |results: &[RankedResult]| {
        results
            .iter()
            .filter(|r| needles.iter().any(|n| &r.url == n))
            .count()
    };

    let positive = crawler.stats().positively_classified;
    ExpertOutcome {
        seeds,
        stats: crawler.stats().clone(),
        positive,
        needles_in_focused_top10: count_needles(&focused_top10),
        needles_in_baseline_top10: count_needles(&baseline_top10),
        focused_top10,
        baseline_top10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expert_search_finds_the_needles() {
        let out = run(&ExpertExperimentConfig {
            seed: 7,
            crawl_ms: 600_000,
            n_others: 30,
            ..ExpertExperimentConfig::default()
        });
        assert_eq!(out.seeds.len(), 7);
        assert!(out.stats.visited_urls > 100);
        assert!(out.positive > 10, "only {} positive", out.positive);
        assert!(
            out.needles_in_focused_top10 >= 2,
            "focused top-10 missed the needles: {:#?}",
            out.focused_top10
        );
        assert!(
            out.needles_in_focused_top10 > out.needles_in_baseline_top10,
            "focused crawl must beat the keyword baseline"
        );
    }
}
