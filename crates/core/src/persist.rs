//! Saving and restoring a trained engine.
//!
//! A BINGO! crawl is a long-running affair ("setting up an overnight
//! crawl ... looking at the results the next morning", Section 1.2);
//! the trained state — topic tree with training documents, vocabulary,
//! corpus statistics and all per-topic decision models — survives the
//! process through a JSON snapshot, so postprocessing, feedback rounds
//! and crawl resumption can run in later sessions.

use crate::engine::{BingoEngine, EngineError, Phase};
use crate::model::TopicModel;
use crate::topic::TopicTree;
use bingo_textproc::fxhash::FxHashMap;
use bingo_textproc::tfidf::CorpusStats;
use bingo_textproc::Vocabulary;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

#[derive(Serialize, Deserialize)]
struct EngineSnapshot {
    magic: String,
    version: u32,
    config: crate::engine::EngineConfig,
    phase: Phase,
    vocab: Vocabulary,
    tree: TopicTree,
    corpus: CorpusStats,
    models: Vec<(u32, TopicModel)>,
}

const MAGIC: &str = "bingo-engine";
const VERSION: u32 = 1;

/// Serialize the engine's trained state to a writer as JSON.
pub fn save_engine<W: Write>(engine: &BingoEngine, w: W) -> Result<(), EngineError> {
    let snapshot = EngineSnapshot {
        magic: MAGIC.to_string(),
        version: VERSION,
        config: engine.config.clone(),
        phase: engine.phase(),
        vocab: engine.vocab.clone(),
        tree: engine.tree.clone(),
        corpus: engine.corpus().clone(),
        models: engine.models_snapshot(),
    };
    serde_json::to_writer(w, &snapshot).map_err(|e| EngineError::Persist(e.to_string()))
}

/// Restore an engine from a snapshot. Derived lookup structures
/// (vocabulary index, feature-selection projections) are rebuilt; the
/// candidate pool is session state and starts empty.
pub fn load_engine<R: Read>(r: R) -> Result<BingoEngine, EngineError> {
    let mut snapshot: EngineSnapshot =
        serde_json::from_reader(r).map_err(|e| EngineError::Persist(e.to_string()))?;
    if snapshot.magic != MAGIC {
        return Err(EngineError::Persist(format!(
            "bad magic {:?}",
            snapshot.magic
        )));
    }
    if snapshot.version != VERSION {
        return Err(EngineError::Persist(format!(
            "unsupported version {}",
            snapshot.version
        )));
    }
    snapshot.vocab.rebuild_index();
    let mut models: FxHashMap<u32, TopicModel> = FxHashMap::default();
    for (id, mut model) in snapshot.models {
        for space in &mut model.spaces {
            space.selector.rebuild_index();
        }
        models.insert(id, model);
    }
    Ok(BingoEngine::from_parts(
        snapshot.config,
        snapshot.phase,
        snapshot.vocab,
        snapshot.tree,
        snapshot.corpus,
        models,
    ))
}

/// File name of the engine snapshot inside a crawl-session directory.
pub const ENGINE_FILE: &str = "engine.json";

/// Save a complete crawl session — the trained engine plus the
/// crawler's checkpoint and document store — into `dir` as one
/// crash-consistent checkpoint generation: all three files and the
/// manifest land in the same `gen-NNNNNN` directory, so a crash at any
/// byte of the write leaves the previous generation untouched. Together
/// with [`load_session`] this is the "overnight crawl" workflow with
/// crash tolerance: a killed harvest resumes from the last complete
/// generation written by this function (or by the crawler's automatic
/// checkpoint interval, which writes the same layout minus the engine
/// file).
pub fn save_session<P: AsRef<std::path::Path>>(
    engine: &BingoEngine,
    crawler: &bingo_crawler::Crawler,
    dir: P,
) -> Result<(), EngineError> {
    save_session_with(engine, crawler, &bingo_store::durable::StdFs, dir)
}

/// [`save_session`] over an injectable filesystem (crash-point testing).
pub fn save_session_with<P: AsRef<std::path::Path>>(
    engine: &BingoEngine,
    crawler: &bingo_crawler::Crawler,
    fs: &dyn bingo_store::durable::DurableFs,
    dir: P,
) -> Result<(), EngineError> {
    let dir = dir.as_ref();
    let persist = |e: std::io::Error| EngineError::Persist(e.to_string());
    let mut writer = bingo_store::durable::GenerationWriter::begin(fs, dir).map_err(persist)?;
    crawler
        .write_session_into(&mut writer)
        .map_err(|e| EngineError::Persist(e.to_string()))?;
    let mut engine_bytes = Vec::new();
    save_engine(engine, &mut engine_bytes)?;
    writer
        .write_file(ENGINE_FILE, &engine_bytes)
        .map_err(persist)?;
    writer.commit().map_err(persist)?;
    bingo_store::durable::prune_generations(dir, crawler.config.checkpoint_keep);
    Ok(())
}

/// Resume a crawl session saved by [`save_session`]: rebuilds the
/// engine and a crawler positioned exactly where the crawl stopped.
/// `world` and `config` must match the original crawl. The engine comes
/// from the newest complete generation that carries an engine snapshot
/// (automatic crawl checkpoints do not); the crawler from the newest
/// complete generation overall. A pre-generation flat session directory
/// still loads.
pub fn load_session<P: AsRef<std::path::Path>>(
    world: std::sync::Arc<bingo_webworld::World>,
    config: bingo_crawler::CrawlConfig,
    dir: P,
) -> Result<(BingoEngine, bingo_crawler::Crawler), EngineError> {
    let dir = dir.as_ref();
    let engine_path = bingo_store::durable::complete_generations(dir)
        .into_iter()
        .find(|g| g.manifest.files.iter().any(|f| f.name == ENGINE_FILE))
        .map(|g| g.dir.join(ENGINE_FILE))
        .unwrap_or_else(|| dir.join(ENGINE_FILE)); // legacy flat layout
    let engine = load_engine_from(engine_path)?;
    let crawler = bingo_crawler::Crawler::resume_session(world, config, dir)
        .map_err(|e| EngineError::Persist(e.to_string()))?;
    Ok((engine, crawler))
}

/// Save to a file path (write-temp + fsync + atomic rename: a crash
/// mid-write never leaves a torn engine snapshot).
pub fn save_engine_to<P: AsRef<std::path::Path>>(
    engine: &BingoEngine,
    path: P,
) -> Result<(), EngineError> {
    let mut buf = Vec::new();
    save_engine(engine, &mut buf)?;
    bingo_store::durable::atomic_write(path.as_ref(), &buf)
        .map_err(|e| EngineError::Persist(e.to_string()))
}

/// Load from a file path.
pub fn load_engine_from<P: AsRef<std::path::Path>>(path: P) -> Result<BingoEngine, EngineError> {
    let f = std::fs::File::open(path).map_err(|e| EngineError::Persist(e.to_string()))?;
    load_engine(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, TopicTree as Tree};
    use bingo_webworld::gen::WorldConfig;

    fn trained_engine() -> (BingoEngine, bingo_webworld::World, crate::TopicId) {
        let world = WorldConfig::small_test(71).build();
        let mut engine = BingoEngine::new(EngineConfig::default());
        let topic = engine.add_topic(Tree::ROOT, "database research");
        for a in &world.authors()[..3] {
            engine
                .add_training_url(&world, topic, &world.url_of(a.homepage))
                .unwrap();
        }
        let mut added = 0;
        for id in 0..world.page_count() as u64 {
            if matches!(world.true_topic(id), Some(2) | Some(3)) {
                if engine.add_others_url(&world, &world.url_of(id)).is_ok() {
                    added += 1;
                }
                if added >= 20 {
                    break;
                }
            }
        }
        engine.train().unwrap();
        (engine, world, topic)
    }

    #[test]
    fn round_trip_preserves_decisions() {
        let (mut engine, world, topic) = trained_engine();
        // Collect a probe set and its verdicts before saving.
        let probes: Vec<_> = (0..world.page_count() as u64)
            .filter(|&id| {
                matches!(world.true_topic(id), Some(0) | Some(2))
                    && world.page(id).kind == bingo_webworld::PageKind::Content
            })
            .take(12)
            .filter_map(|id| {
                engine
                    .analyze_url(&world, &world.url_of(id))
                    .ok()
                    .map(|(_, _, f)| f)
            })
            .collect();
        let before: Vec<_> = probes.iter().map(|f| engine.classify(f)).collect();

        let mut buf = Vec::new();
        save_engine(&engine, &mut buf).unwrap();
        let restored = load_engine(&buf[..]).unwrap();

        assert_eq!(restored.tree.len(), engine.tree.len());
        assert_eq!(restored.vocab.len(), engine.vocab.len());
        assert_eq!(restored.phase(), engine.phase());
        assert!(restored.model(topic).is_some());
        let after: Vec<_> = probes.iter().map(|f| restored.classify(f)).collect();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.topic, a.topic);
            assert!((b.confidence - a.confidence).abs() < 1e-5);
        }
    }

    #[test]
    fn restored_engine_can_retrain() {
        let (engine, world, topic) = trained_engine();
        let mut buf = Vec::new();
        save_engine(&engine, &mut buf).unwrap();
        let mut restored = load_engine(&buf[..]).unwrap();
        // Training data came back: retraining from scratch succeeds.
        restored.train().unwrap();
        assert!(restored.model(topic).is_some());
        let _ = world;
    }

    #[test]
    fn rejects_garbage_and_wrong_magic() {
        assert!(load_engine(&b"not json"[..]).is_err());
        let wrong = serde_json::json!({
            "magic": "nope", "version": 1, "config": serde_json::Value::Null,
        });
        assert!(load_engine(wrong.to_string().as_bytes()).is_err());
    }

    #[test]
    fn session_round_trip_resumes_crawl() {
        use bingo_crawler::{CrawlConfig, Crawler};
        use bingo_store::DocumentStore;
        use std::sync::Arc;

        let (mut engine, world, _topic) = trained_engine();
        let world = Arc::new(world);
        let config = CrawlConfig {
            max_depth: 0,
            ..CrawlConfig::default()
        };
        let mut crawler = Crawler::new(world.clone(), config.clone(), DocumentStore::new());
        crawler.add_seed(&world.url_of(1), None);
        engine.crawl_until(&mut crawler, 3_000, 0);
        let mid_stored = crawler.stats().stored_pages;
        let mid_clock = crawler.clock_ms();
        assert!(mid_stored > 0, "warm-up crawl stored nothing");

        let dir = std::env::temp_dir().join("bingo-session-test");
        std::fs::remove_dir_all(&dir).ok();
        save_session(&engine, &crawler, &dir).unwrap();

        let (mut engine2, mut resumed) = load_session(world.clone(), config, &dir).unwrap();
        assert_eq!(resumed.stats().stored_pages, mid_stored);
        assert_eq!(resumed.clock_ms(), mid_clock);
        assert_eq!(
            resumed.store().document_count(),
            crawler.store().document_count()
        );
        // Both the original and the resumed session keep crawling.
        let more = engine2.crawl_until(&mut resumed, u64::MAX, 0);
        assert!(more > 0, "resumed session must continue the harvest");
        assert!(resumed.stats().stored_pages > mid_stored);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crashed_session_save_rolls_back_engine_and_crawler_together() {
        use bingo_crawler::{CrawlConfig, Crawler};
        use bingo_store::durable::CrashFs;
        use bingo_store::DocumentStore;
        use std::sync::Arc;

        let (mut engine, world, _topic) = trained_engine();
        let world = Arc::new(world);
        let config = CrawlConfig {
            max_depth: 0,
            ..CrawlConfig::default()
        };
        let mut crawler = Crawler::new(world.clone(), config.clone(), DocumentStore::new());
        crawler.add_seed(&world.url_of(1), None);
        engine.crawl_until(&mut crawler, 3_000, 0);
        assert!(crawler.stats().stored_pages > 0);

        let dir = std::env::temp_dir().join("bingo-session-crash-test");
        std::fs::remove_dir_all(&dir).ok();
        save_session(&engine, &crawler, &dir).unwrap();
        let stored_then = crawler.stats().stored_pages;

        // More progress, then the process dies partway through the next
        // combined save: neither the newer crawl state nor a newer
        // engine snapshot may become visible.
        engine.crawl_until(&mut crawler, 8_000, 0);
        let fs = CrashFs::with_budget(512);
        assert!(save_session_with(&engine, &crawler, &fs, &dir).is_err());
        assert!(fs.crashed());

        let (engine2, resumed) = load_session(world.clone(), config, &dir).unwrap();
        assert_eq!(
            resumed.stats().stored_pages,
            stored_then,
            "crawler rolled back to the last complete generation"
        );
        assert_eq!(engine2.tree.len(), engine.tree.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_round_trip() {
        let (engine, _world, _topic) = trained_engine();
        let dir = std::env::temp_dir().join("bingo-engine-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.json");
        save_engine_to(&engine, &path).unwrap();
        let restored = load_engine_from(&path).unwrap();
        assert_eq!(restored.tree.len(), engine.tree.len());
        std::fs::remove_file(path).ok();
    }
}
