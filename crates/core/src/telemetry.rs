//! Engine telemetry: classification, training and retraining metrics.
//!
//! Confidence values are floats; histograms store `u64`, so confidences
//! are recorded in milli-units (`|confidence| * 1000` rounded down),
//! split into positive and negative histograms. That keeps the snapshot
//! deterministic (the underlying SVM math is) while preserving the
//! distribution shape the paper watches when tuning the archetype
//! threshold.

use bingo_crawler::Judgment;
use bingo_obs::{Counter, EventLog, Gauge, Histogram, Registry};
use bingo_textproc::TextprocMetrics;
use std::sync::Arc;

/// Metric and event handles for one engine. Cloning shares the
/// underlying registry and atomics.
#[derive(Clone)]
pub struct EngineTelemetry {
    /// The registry the handles live in.
    pub registry: Arc<Registry>,
    /// Structured event log (retraining rounds, phase switches).
    pub events: Arc<EventLog>,
    /// Documents classified (accepted or rejected).
    pub classified: Counter,
    /// Documents accepted into some topic.
    pub accepted: Counter,
    /// Documents rejected into OTHERS.
    pub rejected: Counter,
    /// Confidence (milli-units) of accepted documents.
    pub conf_pos_milli: Arc<Histogram>,
    /// |confidence| (milli-units) of rejected documents.
    pub conf_neg_milli: Arc<Histogram>,
    /// Full training rounds completed.
    pub train_rounds: Counter,
    /// Topic models produced by the last training round.
    pub train_models: Gauge,
    /// Total MI-selected features across all spaces of all models.
    pub train_features: Gauge,
    /// Wall-clock cost of a training round (volatile).
    pub train_wall_ms: Arc<Histogram>,
    /// Retraining rounds completed.
    pub retrain_rounds: Counter,
    /// Archetypes promoted across all retraining rounds.
    pub promoted: Counter,
    /// Hub links boosted into the frontier.
    pub hubs_boosted: Counter,
    /// Document-analysis metrics for engine-side analysis (training
    /// seeds, virtual documents).
    pub textproc: TextprocMetrics,
}

impl EngineTelemetry {
    /// Register all engine metrics in `registry`, logging events to
    /// `events`.
    pub fn new(registry: Arc<Registry>, events: Arc<EventLog>) -> Self {
        EngineTelemetry {
            classified: registry.counter("engine.classify.total"),
            accepted: registry.counter("engine.classify.accepted"),
            rejected: registry.counter("engine.classify.rejected"),
            conf_pos_milli: registry.histogram("engine.classify.conf_pos_milli"),
            conf_neg_milli: registry.histogram("engine.classify.conf_neg_milli"),
            train_rounds: registry.counter("engine.train.rounds"),
            train_models: registry.gauge("engine.train.models"),
            train_features: registry.gauge("engine.train.features"),
            train_wall_ms: registry.wall_histogram("engine.train.wall_ms"),
            retrain_rounds: registry.counter("engine.retrain.rounds"),
            promoted: registry.counter("engine.retrain.promoted"),
            hubs_boosted: registry.counter("engine.retrain.hubs_boosted"),
            textproc: TextprocMetrics::new(registry.clone()),
            registry,
            events,
        }
    }

    /// Roll one classification verdict into the counters and confidence
    /// histograms.
    pub fn record_judgment(&self, judgment: &Judgment) {
        self.classified.inc();
        let milli = (judgment.confidence.abs() * 1000.0) as u64;
        if judgment.topic.is_some() {
            self.accepted.inc();
            self.conf_pos_milli.observe(milli);
        } else {
            self.rejected.inc();
            // Rejections at the f32::MIN sentinel carry no signal.
            if judgment.confidence.is_finite() && judgment.confidence > -1e18 {
                self.conf_neg_milli.observe(milli);
            }
        }
    }
}

impl Default for EngineTelemetry {
    fn default() -> Self {
        EngineTelemetry::new(Arc::new(Registry::new()), Arc::new(EventLog::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn judgments_split_by_acceptance() {
        let t = EngineTelemetry::default();
        t.record_judgment(&Judgment {
            topic: Some(0),
            confidence: 0.5,
        });
        t.record_judgment(&Judgment {
            topic: None,
            confidence: -0.25,
        });
        let snap = t.registry.snapshot();
        assert_eq!(snap.counters["engine.classify.total"], 2);
        assert_eq!(snap.counters["engine.classify.accepted"], 1);
        assert_eq!(snap.counters["engine.classify.rejected"], 1);
        assert_eq!(snap.histograms["engine.classify.conf_pos_milli"].max, 500);
        assert_eq!(snap.histograms["engine.classify.conf_neg_milli"].max, 250);
        assert!(snap.volatile.contains("engine.train.wall_ms"));
    }
}
