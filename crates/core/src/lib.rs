//! The BINGO! engine — the paper's primary contribution as a library.
//!
//! BINGO! ("Bookmark-Induced Gathering of Information", CIDR 2003) is a
//! focused crawler that interleaves crawling, automatic SVM
//! classification into a user-provided topic tree, mutual-information
//! feature selection, HITS link analysis, and archetype-driven
//! retraining. This crate ties the substrates together:
//!
//! * [`topic`] — the topic tree with per-node training data (Figure 2),
//! * [`model`] — per-topic SVM models over multiple feature spaces with
//!   meta classification (Sections 2.4, 3.4, 3.5),
//! * [`engine`] — the orchestration: classification of crawled pages,
//!   candidate archetype tracking, retraining with authority/confidence
//!   archetype promotion and topic-drift protection, hub boosting, and
//!   the learning → harvesting phase switch (Sections 2.5-2.6, 3.1-3.3).
//!
//! # Quickstart
//!
//! ```
//! use bingo_core::{BingoEngine, EngineConfig, TopicTree};
//! use bingo_crawler::{Crawler, CrawlConfig};
//! use bingo_store::DocumentStore;
//! use bingo_webworld::gen::WorldConfig;
//! use std::sync::Arc;
//!
//! let world = Arc::new(WorldConfig::small_test(7).build());
//! let mut engine = BingoEngine::new(EngineConfig::default());
//! let topic = engine.add_topic(TopicTree::ROOT, "database research");
//!
//! // Seed with the top author's homepage; negatives from noise pages.
//! let seed = world.authors()[0].homepage;
//! let seed_url = world.url_of(seed);
//! engine.add_training_url(&world, topic, &seed_url).unwrap();
//! let mut added = 0;
//! for id in 0..world.page_count() as u64 {
//!     if world.true_topic(id) == Some(2) {
//!         if engine.add_others_url(&world, &world.url_of(id)).is_ok() {
//!             added += 1;
//!         }
//!         if added >= 10 { break; }
//!     }
//! }
//! engine.train().unwrap();
//!
//! let mut crawler = Crawler::new(world, CrawlConfig::default(), DocumentStore::new());
//! crawler.add_seed(&seed_url, Some(topic.0));
//! let stored = engine.crawl_until(&mut crawler, 60_000, 0);
//! assert!(stored > 0);
//! ```

pub mod engine;
pub mod model;
pub mod persist;
pub mod telemetry;
pub mod topic;

pub use engine::{
    BingoEngine, Candidate, EngineConfig, EngineError, Phase, RetrainReport, TopicClassifier,
};
pub use model::{ModelConfig, SpaceModel, TopicModel};
pub use telemetry::EngineTelemetry;
pub use topic::{TopicId, TopicNode, TopicTree, TrainingDoc};

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_crawler::{CrawlConfig, Crawler};
    use bingo_store::DocumentStore;
    use bingo_webworld::gen::WorldConfig;
    use bingo_webworld::World;
    use std::sync::Arc;

    /// Build an engine trained on topic 0 (database research) seeds with
    /// sports/entertainment negatives.
    fn trained_engine(world: &Arc<World>) -> (BingoEngine, TopicId) {
        // Mirror §5.2: with an extremely small seed set the paper did not
        // enforce the archetype confidence threshold.
        let mut engine = BingoEngine::new(EngineConfig {
            archetype_threshold: false,
            ..EngineConfig::default()
        });
        let topic = engine.add_topic(TopicTree::ROOT, "database research");
        // Seeds: top-2 author homepages (the DeWitt/Gray setup of §5.2).
        for a in &world.authors()[..2] {
            engine
                .add_training_url(world, topic, &world.url_of(a.homepage))
                .unwrap();
        }
        // OTHERS: noise pages from sports (topic 2) and entertainment (3).
        let mut added = 0;
        for id in 0..world.page_count() as u64 {
            if matches!(world.true_topic(id), Some(2) | Some(3))
                && world.page(id).kind == bingo_webworld::PageKind::Content
            {
                if engine.add_others_url(world, &world.url_of(id)).is_ok() {
                    added += 1;
                }
                if added >= 30 {
                    break;
                }
            }
        }
        engine.train().unwrap();
        (engine, topic)
    }

    #[test]
    fn engine_classifies_on_topic_pages() {
        let world = Arc::new(WorldConfig::small_test(51).build());
        let (mut engine, topic) = trained_engine(&world);
        // A database-research content page should classify positively...
        // Pick an unblended page: pages blending a second topic's
        // vocabulary are legitimately ambiguous.
        let db_page = (0..world.page_count() as u64)
            .find(|&id| {
                world.true_topic(id) == Some(0)
                    && world.page(id).secondary_topic.is_none()
                    && world.page(id).kind == bingo_webworld::PageKind::Content
            })
            .unwrap();
        let (_, _, f) = engine.analyze_url(&world, &world.url_of(db_page)).unwrap();
        let j = engine.classify(&f);
        assert_eq!(
            j.topic,
            Some(topic.0),
            "db page rejected ({})",
            j.confidence
        );
        // ...and a sports page should not.
        // Sports pages may sit on dead/flaky hosts; take the first one
        // that actually fetches.
        let f = (100..world.page_count() as u64)
            .filter(|&id| {
                world.true_topic(id) == Some(2)
                    && world.page(id).kind == bingo_webworld::PageKind::Content
            })
            .find_map(|id| {
                engine
                    .analyze_url(&world, &world.url_of(id))
                    .ok()
                    .map(|(_, _, f)| f)
            })
            .expect("a fetchable sports page");
        let j = engine.classify(&f);
        assert_eq!(j.topic, None, "sports page accepted ({})", j.confidence);
    }

    #[test]
    fn batch_classifier_matches_sequential_classify() {
        let world = Arc::new(WorldConfig::small_test(53).build());
        let (mut engine, _) = trained_engine(&world);
        // A mixed bag of fetchable content pages from every topic.
        let mut features = Vec::new();
        for id in 0..world.page_count() as u64 {
            if world.page(id).kind == bingo_webworld::PageKind::Content {
                if let Ok((_, _, f)) = engine.analyze_url(&world, &world.url_of(id)) {
                    features.push(f);
                }
            }
            if features.len() >= 40 {
                break;
            }
        }
        assert!(features.len() >= 20, "world too small for the test");

        let classifier = engine.batch_classifier();
        fn assert_sync<T: Sync>(_: &T) {}
        assert_sync(&classifier);

        let batch = classifier.classify_batch(&features);
        let mut accepted = 0;
        for (f, got) in features.iter().zip(&batch) {
            let want = classifier.classify(f);
            assert_eq!(got.topic, want.topic);
            assert_eq!(got.confidence, want.confidence);
            accepted += usize::from(got.topic.is_some());
        }
        assert!(accepted > 0, "batch accepted nothing — test is vacuous");
        assert!(accepted < batch.len(), "batch rejected nothing");

        // Shared across worker threads the handle gives the same answers.
        let threaded: Vec<bingo_crawler::Judgment> = std::thread::scope(|scope| {
            let handles: Vec<_> = features
                .chunks(7)
                .map(|chunk| scope.spawn(move || classifier.classify_batch(chunk)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(threaded.len(), batch.len());
        for (a, b) in threaded.iter().zip(&batch) {
            assert_eq!(a.topic, b.topic);
            assert_eq!(a.confidence, b.confidence);
        }
    }

    #[test]
    fn learning_crawl_collects_candidates_and_retrains() {
        let world = Arc::new(WorldConfig::small_test(51).build());
        let (mut engine, topic) = trained_engine(&world);
        let seed_hosts: bingo_textproc::fxhash::FxHashSet<String> = world.authors()[..2]
            .iter()
            .map(|a| {
                bingo_webworld::fetch::host_of_url(&world.url_of(a.homepage))
                    .unwrap()
                    .to_string()
            })
            .collect();
        let config = CrawlConfig {
            allowed_hosts: Some(seed_hosts),
            ..CrawlConfig::default()
        };
        let mut crawler = Crawler::new(world.clone(), config, DocumentStore::new());
        for a in &world.authors()[..2] {
            crawler.add_seed(&world.url_of(a.homepage), Some(topic.0));
        }
        engine.crawl_until(&mut crawler, u64::MAX, 0);
        assert!(
            !engine.candidates(topic).is_empty(),
            "learning crawl found no candidates"
        );
        let before = engine.tree.node(topic).training.len();
        let report = engine.retrain(&mut crawler);
        let after = engine.tree.node(topic).training.len();
        assert!(after > before, "retraining promoted no archetypes");
        assert!(!report.promoted.is_empty());
        assert!(engine.archetype_count(topic) > 0);
    }

    #[test]
    fn full_two_phase_crawl_focuses() {
        let world = Arc::new(WorldConfig::small_test(52).build());
        let (mut engine, topic) = trained_engine(&world);
        let mut crawler = Crawler::new(world.clone(), CrawlConfig::default(), DocumentStore::new());
        for a in &world.authors()[..2] {
            crawler.add_seed(&world.url_of(a.homepage), Some(topic.0));
        }
        // Learning slice.
        engine.crawl_until(&mut crawler, 120_000, 0);
        engine.retrain(&mut crawler);
        // Harvest.
        engine.switch_to_harvesting(&mut crawler);
        assert_eq!(engine.phase(), Phase::Harvesting);
        engine.crawl_until(&mut crawler, 2_000_000, 0);

        // Measure focus: among positively classified pages, the majority
        // must truly be database research (topic 0).
        let mut correct = 0u32;
        let mut wrong = 0u32;
        crawler.store().for_each_document(|row| {
            if row.topic == Some(topic.0) {
                match world.true_topic(row.id) {
                    Some(0) => correct += 1,
                    Some(_) => wrong += 1,
                    None => {} // welcome/nav pages are not counted
                }
            }
        });
        assert!(correct > 0, "harvest classified nothing correctly");
        assert!(
            correct > wrong * 2,
            "focus lost: {correct} correct vs {wrong} wrong"
        );
    }

    #[test]
    fn archetype_threshold_gates_promotion() {
        // With the threshold enforced and an overfit tiny training set,
        // promotion is (correctly) conservative: every promoted archetype
        // must beat the mean training confidence.
        let world = Arc::new(WorldConfig::small_test(51).build());
        let (mut engine, topic) = trained_engine(&world);
        engine.config.archetype_threshold = true;
        let mut crawler = Crawler::new(world.clone(), CrawlConfig::default(), DocumentStore::new());
        for a in &world.authors()[..2] {
            crawler.add_seed(&world.url_of(a.homepage), Some(topic.0));
        }
        engine.crawl_until(&mut crawler, 200_000, 0);
        let threshold = engine.mean_training_confidence(topic);
        let training_pages: std::collections::HashSet<u64> = engine
            .tree
            .node(topic)
            .training
            .iter()
            .map(|d| d.page_id)
            .collect();
        // Best candidate that is not already a training document (the
        // seeds re-crawl themselves with high confidence).
        let best_candidate = engine
            .candidates(topic)
            .iter()
            .filter(|c| !training_pages.contains(&c.page_id))
            .map(|c| c.confidence)
            .fold(f32::MIN, f32::max);
        engine.retrain(&mut crawler);
        let promoted: Vec<_> = engine
            .tree
            .node(topic)
            .training
            .iter()
            .filter(|d| d.archetype)
            .collect();
        if best_candidate <= threshold {
            assert!(promoted.is_empty(), "promotion must respect the threshold");
        } else {
            assert!(!promoted.is_empty());
        }
    }

    #[test]
    fn manual_archetype_promotion_with_trimming() {
        let world = Arc::new(WorldConfig::small_test(51).build());
        let (mut engine, topic) = trained_engine(&world);
        let mut crawler = Crawler::new(world.clone(), CrawlConfig::default(), DocumentStore::new());
        for a in &world.authors()[..2] {
            crawler.add_seed(&world.url_of(a.homepage), Some(topic.0));
        }
        engine.crawl_until(&mut crawler, 100_000, 0);
        let stored = crawler.store().all_documents();
        let candidate = stored
            .iter()
            .find(|r| {
                !engine
                    .tree
                    .node(topic)
                    .training
                    .iter()
                    .any(|d| d.page_id == r.id)
            })
            .expect("some non-training document");

        let before = engine.tree.node(topic).training.len();
        // Promote once without trimming...
        engine
            .promote_manual_archetype(crawler.store(), topic, candidate.id, None)
            .unwrap();
        assert_eq!(engine.tree.node(topic).training.len(), before + 1);
        // ...idempotent on repeat...
        engine
            .promote_manual_archetype(crawler.store(), topic, candidate.id, None)
            .unwrap();
        assert_eq!(engine.tree.node(topic).training.len(), before + 1);
        // ...and a trimmed page replaces the diluted original content.
        let other = stored
            .iter()
            .find(|r| {
                r.id != candidate.id
                    && !engine
                        .tree
                        .node(topic)
                        .training
                        .iter()
                        .any(|d| d.page_id == r.id)
            })
            .unwrap();
        engine
            .promote_manual_archetype(
                crawler.store(),
                topic,
                other.id,
                Some("<p>database transaction recovery logging index</p>"),
            )
            .unwrap();
        let promoted = engine
            .tree
            .node(topic)
            .training
            .iter()
            .find(|d| d.page_id == other.id)
            .unwrap();
        assert!(promoted.archetype);
        assert!(promoted.features.term_freqs.len() <= 5, "trimmed features");
        // Unknown page errors.
        assert!(engine
            .promote_manual_archetype(crawler.store(), topic, u64::MAX, None)
            .is_err());
        // Retraining with the manual archetypes succeeds.
        engine.train().unwrap();
    }

    #[test]
    fn ready_for_harvesting_gate() {
        let world = Arc::new(WorldConfig::small_test(53).build());
        let (mut engine, _topic) = trained_engine(&world);
        engine.config.n_auth = 1;
        engine.config.n_conf = 1;
        assert!(!engine.ready_for_harvesting());
        let mut crawler = Crawler::new(world.clone(), CrawlConfig::default(), DocumentStore::new());
        for a in &world.authors()[..2] {
            crawler.add_seed(&world.url_of(a.homepage), Some(1));
        }
        engine.crawl_until(&mut crawler, 300_000, 0);
        engine.retrain(&mut crawler);
        assert!(engine.ready_for_harvesting());
    }
}
