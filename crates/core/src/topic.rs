//! The topic tree (Section 2, Figure 2).
//!
//! "The crawler starts from a user's bookmark file or some other form of
//! personalized topic directory. These intellectually classified
//! documents provide the initial seeds and the initial training data."
//! Every node holds its positive training documents; the negatives for a
//! node's classifier are the training documents of its *competing* topics
//! (siblings) plus the virtual OTHERS examples (Section 3.1).

use bingo_textproc::DocumentFeatures;
use serde::{Deserialize, Serialize};

/// Identifier of a topic-tree node. The root is [`TopicTree::ROOT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TopicId(pub u32);

/// One training document of a topic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingDoc {
    /// Page id when the document came from the web (0 for virtual docs).
    pub page_id: u64,
    /// Source URL (empty for virtual documents such as query seeds).
    pub url: String,
    /// The document's feature ingredients.
    pub features: DocumentFeatures,
    /// True when promoted automatically as an archetype (vs. provided by
    /// the user).
    pub archetype: bool,
}

/// A node of the topic tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopicNode {
    /// Topic name.
    pub name: String,
    /// Parent node (`None` for the root).
    pub parent: Option<TopicId>,
    /// Child topics.
    pub children: Vec<TopicId>,
    /// Positive training documents.
    pub training: Vec<TrainingDoc>,
}

/// The tree of topics of interest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopicTree {
    nodes: Vec<TopicNode>,
    /// Virtual OTHERS training documents: "semantically far away"
    /// common-sense material used as negatives everywhere (Section 3.1).
    pub others: Vec<TrainingDoc>,
}

impl Default for TopicTree {
    fn default() -> Self {
        Self::new()
    }
}

impl TopicTree {
    /// The root node: the union of the user's topics of interest.
    pub const ROOT: TopicId = TopicId(0);

    /// A tree with only the root.
    pub fn new() -> Self {
        TopicTree {
            nodes: vec![TopicNode {
                name: "ROOT".to_string(),
                parent: None,
                children: Vec::new(),
                training: Vec::new(),
            }],
            others: Vec::new(),
        }
    }

    /// Add a topic under `parent`. Returns the new node's id.
    pub fn add_topic(&mut self, parent: TopicId, name: &str) -> TopicId {
        let id = TopicId(self.nodes.len() as u32);
        self.nodes.push(TopicNode {
            name: name.to_string(),
            parent: Some(parent),
            children: Vec::new(),
            training: Vec::new(),
        });
        self.nodes[parent.0 as usize].children.push(id);
        id
    }

    /// Node accessor.
    pub fn node(&self, id: TopicId) -> &TopicNode {
        &self.nodes[id.0 as usize]
    }

    /// Mutable node accessor.
    pub fn node_mut(&mut self, id: TopicId) -> &mut TopicNode {
        &mut self.nodes[id.0 as usize]
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// All node ids in creation order (root first).
    pub fn ids(&self) -> impl Iterator<Item = TopicId> {
        (0..self.nodes.len() as u32).map(TopicId)
    }

    /// Ids of all non-root nodes.
    pub fn topic_ids(&self) -> impl Iterator<Item = TopicId> {
        (1..self.nodes.len() as u32).map(TopicId)
    }

    /// The competing topics of `id`: its siblings (children of the same
    /// parent, excluding `id` itself).
    pub fn siblings(&self, id: TopicId) -> Vec<TopicId> {
        match self.node(id).parent {
            Some(p) => self
                .node(p)
                .children
                .iter()
                .copied()
                .filter(|&c| c != id)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Leaf topics (no children, excluding the root).
    pub fn leaves(&self) -> Vec<TopicId> {
        self.topic_ids()
            .filter(|&id| self.node(id).children.is_empty())
            .collect()
    }

    /// All training docs of a node and its descendants (a parent topic's
    /// positive examples include its subtree).
    pub fn subtree_training(&self, id: TopicId) -> Vec<&TrainingDoc> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.extend(self.node(n).training.iter());
            stack.extend(self.node(n).children.iter().copied());
        }
        out
    }

    /// Full path name of a node, e.g. `ROOT/mathematics/algebra`.
    pub fn path(&self, id: TopicId) -> String {
        let mut parts = vec![self.node(id).name.clone()];
        let mut cur = self.node(id).parent;
        while let Some(p) = cur {
            parts.push(self.node(p).name.clone());
            cur = self.node(p).parent;
        }
        parts.reverse();
        parts.join("/")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u64) -> TrainingDoc {
        TrainingDoc {
            page_id: id,
            url: format!("u{id}"),
            features: DocumentFeatures::default(),
            archetype: false,
        }
    }

    /// The Figure 2 example: mathematics (algebra, stochastics),
    /// agriculture, arts.
    fn figure2() -> (TopicTree, TopicId, TopicId, TopicId, TopicId, TopicId) {
        let mut t = TopicTree::new();
        let math = t.add_topic(TopicTree::ROOT, "mathematics");
        let agri = t.add_topic(TopicTree::ROOT, "agriculture");
        let arts = t.add_topic(TopicTree::ROOT, "arts");
        let algebra = t.add_topic(math, "algebra");
        let stoch = t.add_topic(math, "stochastics");
        (t, math, agri, arts, algebra, stoch)
    }

    #[test]
    fn structure_and_paths() {
        let (t, math, _agri, _arts, algebra, _stoch) = figure2();
        assert_eq!(t.len(), 6);
        assert_eq!(t.node(math).children.len(), 2);
        assert_eq!(t.path(algebra), "ROOT/mathematics/algebra");
        assert_eq!(t.node(algebra).parent, Some(math));
    }

    #[test]
    fn siblings_are_competing_topics() {
        let (t, math, agri, arts, algebra, stoch) = figure2();
        let mut s = t.siblings(math);
        s.sort();
        assert_eq!(s, vec![agri, arts]);
        assert_eq!(t.siblings(algebra), vec![stoch]);
        assert!(t.siblings(TopicTree::ROOT).is_empty());
    }

    #[test]
    fn leaves_exclude_inner_nodes() {
        let (t, math, agri, arts, algebra, stoch) = figure2();
        let leaves = t.leaves();
        assert!(leaves.contains(&algebra) && leaves.contains(&stoch));
        assert!(leaves.contains(&agri) && leaves.contains(&arts));
        assert!(!leaves.contains(&math));
    }

    #[test]
    fn subtree_training_includes_descendants() {
        let (mut t, math, _agri, _arts, algebra, stoch) = figure2();
        t.node_mut(math).training.push(doc(1));
        t.node_mut(algebra).training.push(doc(2));
        t.node_mut(stoch).training.push(doc(3));
        let ids: Vec<u64> = t.subtree_training(math).iter().map(|d| d.page_id).collect();
        assert_eq!(ids.len(), 3);
        assert!(ids.contains(&1) && ids.contains(&2) && ids.contains(&3));
        assert_eq!(t.subtree_training(algebra).len(), 1);
    }

    #[test]
    fn single_node_tree_special_case() {
        // "A single-node tree is a special case for generating an
        // information portal with a single topic."
        let mut t = TopicTree::new();
        assert!(t.is_empty());
        let only = t.add_topic(TopicTree::ROOT, "database research");
        assert_eq!(t.leaves(), vec![only]);
        assert!(t.siblings(only).is_empty());
    }
}
