//! The BINGO! engine: orchestrates classification, archetype selection,
//! retraining, and the learning → harvesting phase transition
//! (Sections 2.6, 3.1-3.3).

use crate::model::{features_from_term_freqs, ModelConfig, TopicModel};
use crate::telemetry::EngineTelemetry;
use crate::topic::{TopicId, TopicTree, TrainingDoc};
use bingo_crawler::{Crawler, DocumentJudge, Judgment, PageContext, StepOutcome};
use bingo_graph::{expand_base_set, Hits, LinkSource};
use bingo_ml::meta::MetaPolicy;
use bingo_obs::{Event, WallTimer};
use bingo_textproc::fxhash::FxHashMap;
use bingo_textproc::tfidf::CorpusStats;
use bingo_textproc::vocab::TermId;
use bingo_textproc::{
    analyze_html_metered, AnalyzedDocument, ContentRegistry, DocumentFeatures, FeatureSpaceKind,
    Vocabulary,
};
use bingo_webworld::{FetchOutcome, World};

/// Engine-level configuration (defaults follow Section 5.1).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EngineConfig {
    /// Per-topic model training parameters.
    pub model: ModelConfig,
    /// Meta decision function during the learning phase (paper default:
    /// unanimous).
    pub meta_learning: MetaPolicy,
    /// Meta decision function during harvesting (paper default:
    /// ξα-weighted average).
    pub meta_harvesting: MetaPolicy,
    /// Run-time-critical mode: evaluate only the single best space.
    pub single_classifier: bool,
    /// Top authorities considered for archetype promotion (N_auth).
    pub n_auth: usize,
    /// Top-confidence documents considered for promotion (N_conf).
    pub n_conf: usize,
    /// Candidate pool size per topic.
    pub candidate_pool: usize,
    /// Enforce the mean-training-confidence threshold on archetypes
    /// (Section 3.2; switch off to reproduce the topic-drift ablation).
    pub archetype_threshold: bool,
    /// Predecessors admitted per base-set page in HITS expansion.
    pub max_predecessors: usize,
    /// Base-set size cap for the per-topic link analysis.
    pub max_base_set: usize,
    /// Top hubs whose outgoing links are boosted after each retraining.
    pub hub_boost: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            model: ModelConfig::default(),
            meta_learning: MetaPolicy::Unanimous,
            meta_harvesting: MetaPolicy::WeightedAverage,
            single_classifier: false,
            n_auth: 10,
            n_conf: 10,
            candidate_pool: 200,
            archetype_threshold: true,
            max_predecessors: 10,
            max_base_set: 1000,
            hub_boost: 5,
        }
    }
}

/// Crawl phase (Section 2.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Phase {
    /// Calibrating precision: sharp focus, depth-first, archetype hunt.
    Learning,
    /// Maximizing recall: soft focus, best-first.
    Harvesting,
}

/// Errors surfaced by engine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The URL could not be fetched from the simulated web.
    Fetch(String),
    /// The payload could not be converted/analyzed.
    Content(String),
    /// Training prerequisites missing (no positives/negatives).
    Training(&'static str),
    /// Engine snapshot (de)serialization failed.
    Persist(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Fetch(u) => write!(f, "cannot fetch {u}"),
            EngineError::Content(u) => write!(f, "cannot analyze {u}"),
            EngineError::Training(m) => write!(f, "training failed: {m}"),
            EngineError::Persist(m) => write!(f, "persistence error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// An automatically classified document remembered as a potential
/// archetype.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Page id.
    pub page_id: u64,
    /// URL.
    pub url: String,
    /// Classification confidence at crawl time.
    pub confidence: f32,
    /// Full feature ingredients captured at crawl time.
    pub features: DocumentFeatures,
}

/// Summary of one retraining round.
#[derive(Debug, Clone, Default)]
pub struct RetrainReport {
    /// Archetypes promoted per topic.
    pub promoted: Vec<(TopicId, usize)>,
    /// Hub URLs boosted into the frontier.
    pub hubs_boosted: usize,
}

/// The engine.
pub struct BingoEngine {
    /// The user's topic tree with training data.
    pub tree: TopicTree,
    /// Shared term dictionary.
    pub vocab: Vocabulary,
    /// Engine configuration.
    pub config: EngineConfig,
    corpus: CorpusStats,
    models: FxHashMap<u32, TopicModel>,
    phase: Phase,
    candidates: FxHashMap<u32, Vec<Candidate>>,
    registry: ContentRegistry,
    obs: EngineTelemetry,
}

impl BingoEngine {
    /// New engine with an empty topic tree.
    pub fn new(config: EngineConfig) -> Self {
        BingoEngine {
            tree: TopicTree::new(),
            vocab: Vocabulary::new(),
            config,
            corpus: CorpusStats::new(),
            models: FxHashMap::default(),
            phase: Phase::Learning,
            candidates: FxHashMap::default(),
            registry: ContentRegistry::new(),
            obs: EngineTelemetry::default(),
        }
    }

    /// Route this engine's metrics and events into a shared telemetry
    /// namespace.
    pub fn set_telemetry(&mut self, obs: EngineTelemetry) {
        self.obs = obs;
    }

    /// The engine's metric handles and event log.
    pub fn telemetry(&self) -> &EngineTelemetry {
        &self.obs
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The trained model of a topic, when available.
    pub fn model(&self, topic: TopicId) -> Option<&TopicModel> {
        self.models.get(&topic.0)
    }

    /// The engine's corpus statistics (idf source).
    pub fn corpus(&self) -> &CorpusStats {
        &self.corpus
    }

    /// Add a topic under `parent`.
    pub fn add_topic(&mut self, parent: TopicId, name: &str) -> TopicId {
        self.tree.add_topic(parent, name)
    }

    /// Fetch a URL from the simulated web and produce its features;
    /// updates the corpus statistics.
    pub fn analyze_url(
        &mut self,
        world: &World,
        url: &str,
    ) -> Result<(u64, String, DocumentFeatures), EngineError> {
        // A few attempts tolerate flaky hosts.
        let response = (0..4)
            .find_map(|attempt| match world.fetch(url, attempt) {
                FetchOutcome::Ok(r) => Some(r),
                _ => None,
            })
            .ok_or_else(|| EngineError::Fetch(url.to_string()))?;
        let html = self
            .registry
            .to_html(response.mime, &response.payload)
            .map_err(|_| EngineError::Content(url.to_string()))?;
        let doc = analyze_html_metered(&html, &mut self.vocab, &self.obs.textproc);
        let features = DocumentFeatures::from_document(&doc);
        self.record_corpus(&features);
        Ok((response.page_id, doc.title, features))
    }

    /// Analyze a raw HTML string into features (virtual training
    /// documents, e.g. a query turned into a document for expert search).
    pub fn analyze_virtual(&mut self, html: &str) -> DocumentFeatures {
        let doc = analyze_html_metered(html, &mut self.vocab, &self.obs.textproc);
        let features = DocumentFeatures::from_document(&doc);
        self.record_corpus(&features);
        features
    }

    fn record_corpus(&mut self, features: &DocumentFeatures) {
        self.corpus.add_document(
            features
                .occurrences(FeatureSpaceKind::Combined)
                .iter()
                .map(|&(i, _)| TermId(i)),
        );
    }

    /// Add an intellectually classified training document for `topic` by
    /// URL (bookmark-style seeding).
    pub fn add_training_url(
        &mut self,
        world: &World,
        topic: TopicId,
        url: &str,
    ) -> Result<(), EngineError> {
        let (page_id, _title, features) = self.analyze_url(world, url)?;
        self.tree.node_mut(topic).training.push(TrainingDoc {
            page_id,
            url: url.to_string(),
            features,
            archetype: false,
        });
        Ok(())
    }

    /// Add a virtual training document (not backed by a page).
    pub fn add_training_virtual(&mut self, topic: TopicId, html: &str) {
        let features = self.analyze_virtual(html);
        self.tree.node_mut(topic).training.push(TrainingDoc {
            page_id: 0,
            url: String::new(),
            features,
            archetype: false,
        });
    }

    /// Populate the virtual OTHERS class with a far-away document
    /// (Section 3.1's systematic negative examples).
    pub fn add_others_url(&mut self, world: &World, url: &str) -> Result<(), EngineError> {
        let (page_id, _title, features) = self.analyze_url(world, url)?;
        self.tree.others.push(TrainingDoc {
            page_id,
            url: url.to_string(),
            features,
            archetype: false,
        });
        Ok(())
    }

    /// (Re)train all topic classifiers: for each topic, positives are its
    /// subtree's training docs; negatives are the competing siblings'
    /// docs plus the OTHERS class.
    pub fn train(&mut self) -> Result<(), EngineError> {
        let timer = WallTimer::start();
        let ids: Vec<TopicId> = self.tree.topic_ids().collect();
        let mut new_models = FxHashMap::default();
        for id in ids {
            let positives: Vec<&DocumentFeatures> = self
                .tree
                .subtree_training(id)
                .into_iter()
                .map(|d| &d.features)
                .collect();
            let mut negatives: Vec<&DocumentFeatures> = Vec::new();
            for sib in self.tree.siblings(id) {
                negatives.extend(
                    self.tree
                        .subtree_training(sib)
                        .into_iter()
                        .map(|d| &d.features),
                );
            }
            negatives.extend(self.tree.others.iter().map(|d| &d.features));
            if positives.is_empty() {
                continue;
            }
            if negatives.is_empty() {
                return Err(EngineError::Training(
                    "no negative examples: populate OTHERS or add sibling topics",
                ));
            }
            if let Some(model) =
                TopicModel::train(&positives, &negatives, &self.corpus, &self.config.model)
            {
                new_models.insert(id.0, model);
            }
        }
        if new_models.is_empty() {
            return Err(EngineError::Training("no topic could be trained"));
        }
        self.obs.train_rounds.inc();
        self.obs.train_models.set(new_models.len() as i64);
        let features: usize = new_models
            .values()
            .map(|m| m.spaces.iter().map(|s| s.selector.len()).sum::<usize>())
            .sum();
        self.obs.train_features.set(features as i64);
        timer.observe_ms(&self.obs.train_wall_ms);
        self.models = new_models;
        Ok(())
    }

    /// Classify a document top-down through the topic tree
    /// (Section 2.4). Returns the deepest accepted topic and the
    /// confidence of the final decision.
    pub fn classify(&self, features: &DocumentFeatures) -> Judgment {
        let policy = match self.phase {
            Phase::Learning => self.config.meta_learning,
            Phase::Harvesting => self.config.meta_harvesting,
        };
        let judgment = classify_impl(
            &self.tree,
            &self.models,
            features,
            policy,
            self.config.single_classifier,
        );
        self.obs.record_judgment(&judgment);
        judgment
    }

    /// A read-only, `Sync` classification handle over the trained
    /// models, using the meta policy of the current phase. Worker
    /// threads of the batch document pipeline share one of these to
    /// classify concurrently while the engine itself stays untouched.
    pub fn batch_classifier(&self) -> TopicClassifier<'_> {
        let policy = match self.phase {
            Phase::Learning => self.config.meta_learning,
            Phase::Harvesting => self.config.meta_harvesting,
        };
        TopicClassifier {
            tree: &self.tree,
            models: &self.models,
            obs: &self.obs,
            policy,
            single_classifier: self.config.single_classifier,
        }
    }

    /// Mean training confidence of a topic (the archetype threshold).
    pub fn mean_training_confidence(&self, topic: TopicId) -> f32 {
        self.models
            .get(&topic.0)
            .map(|m| m.mean_training_confidence)
            .unwrap_or(0.0)
    }

    /// Run the crawler until `deadline_ms` (virtual), retraining every
    /// `retrain_every` stored-and-positively-classified documents when
    /// `retrain_every > 0`. Returns documents stored in this slice.
    pub fn crawl_until(
        &mut self,
        crawler: &mut Crawler,
        deadline_ms: u64,
        retrain_every: u64,
    ) -> u64 {
        let mut stored = 0u64;
        let mut classified_since_retrain = 0u64;
        loop {
            if crawler.clock_ms() >= deadline_ms {
                break;
            }
            let outcome = self.judge_step(crawler);
            match outcome {
                StepOutcome::Stored { judgment, .. } => {
                    stored += 1;
                    if judgment.topic.is_some() {
                        classified_since_retrain += 1;
                    }
                }
                StepOutcome::Skipped(_) => {}
                StepOutcome::FrontierEmpty => break,
            }
            if retrain_every > 0 && classified_since_retrain >= retrain_every {
                classified_since_retrain = 0;
                let _ = self.retrain(crawler);
            }
        }
        stored
    }

    /// One crawl step with this engine as the judge.
    pub fn judge_step(&mut self, crawler: &mut Crawler) -> StepOutcome {
        let policy = match self.phase {
            Phase::Learning => self.config.meta_learning,
            Phase::Harvesting => self.config.meta_harvesting,
        };
        let BingoEngine {
            tree,
            vocab,
            config,
            corpus,
            models,
            candidates,
            obs,
            ..
        } = self;
        let mut judge = EngineJudge {
            tree,
            models,
            corpus,
            candidates,
            obs,
            policy,
            single_classifier: config.single_classifier,
            pool_cap: config.candidate_pool,
        };
        crawler.step(&mut judge, vocab)
    }

    /// Retraining round (Sections 2.5, 3.2): promote archetypes from top
    /// authorities and top-confidence documents, retrain all classifiers,
    /// and boost the best hubs' links in the frontier.
    pub fn retrain(&mut self, crawler: &mut Crawler) -> RetrainReport {
        let mut report = RetrainReport::default();
        let cap = self.config.n_auth.min(self.config.n_conf);
        let leaves = self.tree.leaves();
        for topic in leaves {
            let t = topic.0;
            // --- Link analysis over the topic's crawled documents.
            let mut base = crawler.store().topic_documents(t);
            base.truncate(self.config.max_base_set);
            let mut hub_candidates: Vec<(u64, f64)> = Vec::new();
            let mut authority_candidates: Vec<(u64, f64)> = Vec::new();
            if !base.is_empty() {
                let world = crawler.world().clone();
                let nodes = expand_base_set(world.as_ref(), &base, self.config.max_predecessors);
                let hits = Hits::default().run(world.as_ref(), &nodes);
                authority_candidates = hits.top_authorities(self.config.n_auth);
                hub_candidates = hits.top_hubs(self.config.hub_boost);
            }

            // --- Candidate set: top authorities ∪ top-confidence docs.
            let mut pool = self.candidates.get(&t).cloned().unwrap_or_default();
            pool.sort_by(|a, b| {
                b.confidence
                    .partial_cmp(&a.confidence)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            pool.truncate(self.config.n_conf);
            let mut union: FxHashMap<u64, Candidate> =
                pool.into_iter().map(|c| (c.page_id, c)).collect();
            for (page, _score) in &authority_candidates {
                if union.contains_key(page) {
                    continue;
                }
                // Rebuild features from the stored row when the candidate
                // pool does not hold this authority.
                if let Some(row) = crawler.store().document(*page) {
                    if row.topic != Some(t) {
                        continue;
                    }
                    let features = features_from_term_freqs(&row.term_freqs);
                    let confidence = self
                        .models
                        .get(&t)
                        .map(|m| {
                            m.confidence(
                                &features,
                                MetaPolicy::WeightedAverage,
                                self.config.single_classifier,
                            )
                        })
                        .unwrap_or(0.0);
                    union.insert(
                        *page,
                        Candidate {
                            page_id: *page,
                            url: row.url,
                            confidence,
                            features,
                        },
                    );
                }
            }

            // --- Threshold and promotion (Section 3.2).
            let threshold = if self.config.archetype_threshold {
                self.mean_training_confidence(topic)
            } else {
                f32::MIN
            };
            let existing: std::collections::HashSet<u64> = self
                .tree
                .node(topic)
                .training
                .iter()
                .map(|d| d.page_id)
                .collect();
            let mut ordered: Vec<Candidate> = union.into_values().collect();
            ordered.sort_by(|a, b| {
                b.confidence
                    .partial_cmp(&a.confidence)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut promoted = 0usize;
            for cand in ordered {
                if promoted >= cap {
                    break;
                }
                if cand.confidence <= threshold || existing.contains(&cand.page_id) {
                    continue;
                }
                self.tree.node_mut(topic).training.push(TrainingDoc {
                    page_id: cand.page_id,
                    url: cand.url,
                    features: cand.features,
                    archetype: true,
                });
                promoted += 1;
            }
            if promoted > 0 {
                report.promoted.push((topic, promoted));
            }

            // --- Resume from the best hubs (Section 2.5): their links go
            // to the high-priority end of the crawl queue.
            let world = crawler.world().clone();
            for (hub, score) in hub_candidates {
                for succ in world.successors(hub) {
                    let url = world.url_of(succ);
                    crawler.boost_url(&url, Some(t), 10.0 + score as f32);
                    report.hubs_boosted += 1;
                }
            }
        }
        // Retrain with the extended basis (feature selection reruns
        // inside model training).
        let _ = self.train();
        self.obs.retrain_rounds.inc();
        let promoted_total: usize = report.promoted.iter().map(|&(_, n)| n).sum();
        self.obs.promoted.add(promoted_total as u64);
        self.obs.hubs_boosted.add(report.hubs_boosted as u64);
        self.obs.events.emit(
            Event::at(crawler.clock_ms(), "engine.retrain")
                .with("hubs_boosted", report.hubs_boosted)
                .with("promoted", promoted_total),
        );
        report
    }

    /// Manually promote a crawled document to training data — the user
    /// feedback step between learning and harvesting (Section 2.6: "the
    /// user can intellectually identify archetypes among the documents
    /// found so far"). When `trimmed_html` is given, the user has edited
    /// the page to remove irrelevant, diluting parts (Section 2.6's
    /// page-trimming), and the trimmed text is analyzed instead of the
    /// stored features.
    pub fn promote_manual_archetype(
        &mut self,
        store: &bingo_store::DocumentStore,
        topic: TopicId,
        page_id: u64,
        trimmed_html: Option<&str>,
    ) -> Result<(), EngineError> {
        let row = store
            .document(page_id)
            .ok_or(EngineError::Training("document not in the crawl database"))?;
        if self
            .tree
            .node(topic)
            .training
            .iter()
            .any(|d| d.page_id == page_id)
        {
            return Ok(()); // already training data
        }
        let features = match trimmed_html {
            Some(html) => self.analyze_virtual(html),
            None => features_from_term_freqs(&row.term_freqs),
        };
        self.tree.node_mut(topic).training.push(TrainingDoc {
            page_id,
            url: row.url,
            features,
            archetype: true,
        });
        Ok(())
    }

    /// Number of archetypes promoted so far for a topic.
    pub fn archetype_count(&self, topic: TopicId) -> usize {
        self.tree
            .node(topic)
            .training
            .iter()
            .filter(|d| d.archetype)
            .count()
    }

    /// "Once the training set has reached min{N_auth, N_conf} documents
    /// per topic" the harvesting phase can start.
    pub fn ready_for_harvesting(&self) -> bool {
        let need = self.config.n_auth.min(self.config.n_conf);
        self.tree
            .leaves()
            .iter()
            .all(|&t| self.archetype_count(t) >= need)
    }

    /// Switch to the harvesting phase: soft focus, best-first strategy,
    /// no depth/domain limits (Section 3.3).
    pub fn switch_to_harvesting(&mut self, crawler: &mut Crawler) {
        self.phase = Phase::Harvesting;
        crawler.config = crawler.config.harvesting();
        self.obs
            .events
            .emit(Event::at(crawler.clock_ms(), "engine.phase.harvesting"));
    }

    /// Snapshot of all trained models (persistence support).
    pub(crate) fn models_snapshot(&self) -> Vec<(u32, TopicModel)> {
        let mut v: Vec<(u32, TopicModel)> =
            self.models.iter().map(|(&k, m)| (k, m.clone())).collect();
        v.sort_by_key(|&(k, _)| k);
        v
    }

    /// Rebuild an engine from persisted parts (see [`crate::persist`]).
    pub(crate) fn from_parts(
        config: EngineConfig,
        phase: Phase,
        vocab: Vocabulary,
        tree: TopicTree,
        corpus: CorpusStats,
        models: FxHashMap<u32, TopicModel>,
    ) -> Self {
        BingoEngine {
            tree,
            vocab,
            config,
            corpus,
            models,
            phase,
            candidates: FxHashMap::default(),
            registry: ContentRegistry::new(),
            obs: EngineTelemetry::default(),
        }
    }

    /// Candidate pool of a topic (inspection/testing).
    pub fn candidates(&self, topic: TopicId) -> &[Candidate] {
        self.candidates
            .get(&topic.0)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

/// A shareable, read-only view of the engine's trained classifier:
/// topic tree, per-topic models, meta policy and telemetry, nothing
/// mutable. `Sync`, so the real-thread document pipeline can classify
/// on every worker against one handle. Obtain one via
/// [`BingoEngine::batch_classifier`].
///
/// Unlike the crawl-time `EngineJudge` this handle performs *no*
/// corpus or archetype-candidate bookkeeping — it is the harvesting
/// fast path, where throughput matters and retraining is off.
#[derive(Clone, Copy)]
pub struct TopicClassifier<'a> {
    tree: &'a TopicTree,
    models: &'a FxHashMap<u32, TopicModel>,
    obs: &'a EngineTelemetry,
    policy: MetaPolicy,
    single_classifier: bool,
}

impl TopicClassifier<'_> {
    /// Classify one document; identical to [`BingoEngine::classify`].
    pub fn classify(&self, features: &DocumentFeatures) -> Judgment {
        let judgment = classify_impl(
            self.tree,
            self.models,
            features,
            self.policy,
            self.single_classifier,
        );
        self.obs.record_judgment(&judgment);
        judgment
    }

    /// Classify a batch with one level-synchronous top-down descent:
    /// documents are grouped by their current tree node and each
    /// competing child model is evaluated once per group via
    /// [`TopicModel::decide_batch`], amortizing model dispatch and
    /// per-space setup across the batch. Per document the decisions and
    /// confidences are exactly those of [`classify`](Self::classify).
    pub fn classify_batch(&self, features: &[DocumentFeatures]) -> Vec<Judgment> {
        let n = features.len();
        let mut assigned: Vec<Option<TopicId>> = vec![None; n];
        let mut confidence = vec![f32::MIN; n];
        let mut groups: Vec<(TopicId, Vec<usize>)> = vec![(TopicTree::ROOT, (0..n).collect())];
        while !groups.is_empty() {
            let mut descend: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
            for (node, idxs) in groups {
                let children = &self.tree.node(node).children;
                if children.is_empty() {
                    continue;
                }
                let docs: Vec<&DocumentFeatures> = idxs.iter().map(|&i| &features[i]).collect();
                let mut best: Vec<Option<(TopicId, f32)>> = vec![None; idxs.len()];
                let mut best_rejected = vec![f32::MIN; idxs.len()];
                for &child in children {
                    let Some(model) = self.models.get(&child.0) else {
                        continue;
                    };
                    let decisions = model.decide_batch(&docs, self.policy, self.single_classifier);
                    for (k, (accept, conf)) in decisions.into_iter().enumerate() {
                        if accept {
                            if best[k].map(|(_, c)| conf > c).unwrap_or(true) {
                                best[k] = Some((child, conf));
                            }
                        } else {
                            best_rejected[k] = best_rejected[k].max(conf);
                        }
                    }
                }
                for (k, &i) in idxs.iter().enumerate() {
                    match best[k] {
                        Some((child, conf)) => {
                            assigned[i] = Some(child);
                            confidence[i] = conf;
                            descend.entry(child.0).or_default().push(i);
                        }
                        None => {
                            if assigned[i].is_none() {
                                confidence[i] = if best_rejected[k] == f32::MIN {
                                    -1.0
                                } else {
                                    best_rejected[k]
                                };
                            }
                        }
                    }
                }
            }
            groups = descend.into_iter().map(|(t, v)| (TopicId(t), v)).collect();
            groups.sort_unstable_by_key(|&(t, _)| t.0);
        }
        assigned
            .into_iter()
            .zip(confidence)
            .map(|(topic, confidence)| {
                let judgment = Judgment {
                    topic: topic.map(|t| t.0),
                    confidence,
                };
                self.obs.record_judgment(&judgment);
                judgment
            })
            .collect()
    }
}

/// The classify stage of the real-thread document pipeline: build the
/// multi-space features (document + incoming anchors + neighbour terms)
/// for a whole batch and run one level-synchronous hierarchical descent.
impl bingo_crawler::BatchJudge for TopicClassifier<'_> {
    fn judge_batch(&self, docs: &[AnalyzedDocument], ctxs: &[PageContext]) -> Vec<Judgment> {
        let features: Vec<DocumentFeatures> = docs
            .iter()
            .zip(ctxs)
            .map(|(doc, ctx)| {
                let mut f = DocumentFeatures::from_document(doc);
                f.add_incoming_anchor(&ctx.anchor_terms);
                f.add_neighbor_terms(&ctx.neighbor_terms);
                f
            })
            .collect();
        self.classify_batch(&features)
    }
}

/// The crawl-time judge: classification + corpus/candidate bookkeeping,
/// borrowing disjoint engine fields so the crawler can hold the shared
/// vocabulary mutably at the same time.
struct EngineJudge<'a> {
    tree: &'a TopicTree,
    models: &'a FxHashMap<u32, TopicModel>,
    corpus: &'a mut CorpusStats,
    candidates: &'a mut FxHashMap<u32, Vec<Candidate>>,
    obs: &'a EngineTelemetry,
    policy: MetaPolicy,
    single_classifier: bool,
    pool_cap: usize,
}

impl DocumentJudge for EngineJudge<'_> {
    fn judge(&mut self, doc: &AnalyzedDocument, ctx: &PageContext) -> Judgment {
        let mut features = DocumentFeatures::from_document(doc);
        features.add_incoming_anchor(&ctx.anchor_terms);
        features.add_neighbor_terms(&ctx.neighbor_terms);
        self.corpus.add_document(
            features
                .occurrences(FeatureSpaceKind::Combined)
                .iter()
                .map(|&(i, _)| TermId(i)),
        );
        let judgment = classify_impl(
            self.tree,
            self.models,
            &features,
            self.policy,
            self.single_classifier,
        );
        self.obs.record_judgment(&judgment);
        if let Some(t) = judgment.topic {
            let pool = self.candidates.entry(t).or_default();
            pool.push(Candidate {
                page_id: ctx.page_id,
                url: ctx.url.clone(),
                confidence: judgment.confidence,
                features,
            });
            if pool.len() > self.pool_cap * 2 {
                pool.sort_by(|a, b| {
                    b.confidence
                        .partial_cmp(&a.confidence)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                pool.truncate(self.pool_cap);
            }
        }
        judgment
    }
}

/// Top-down hierarchical classification: at each level evaluate the
/// competing children; descend into the most confident acceptor; a
/// document nobody accepts lands in OTHERS (rejection).
fn classify_impl(
    tree: &TopicTree,
    models: &FxHashMap<u32, TopicModel>,
    features: &DocumentFeatures,
    policy: MetaPolicy,
    single_classifier: bool,
) -> Judgment {
    let mut current = TopicTree::ROOT;
    let mut assigned: Option<TopicId> = None;
    let mut confidence = f32::MIN;
    loop {
        let children = &tree.node(current).children;
        if children.is_empty() {
            break;
        }
        let mut best: Option<(TopicId, f32)> = None;
        let mut best_rejected = f32::MIN;
        for &child in children {
            let Some(model) = models.get(&child.0) else {
                continue;
            };
            let (accept, conf) = model.decide(features, policy, single_classifier);
            if accept {
                if best.map(|(_, c)| conf > c).unwrap_or(true) {
                    best = Some((child, conf));
                }
            } else {
                best_rejected = best_rejected.max(conf);
            }
        }
        match best {
            Some((child, conf)) => {
                assigned = Some(child);
                confidence = conf;
                current = child;
            }
            None => {
                if assigned.is_none() {
                    confidence = if best_rejected == f32::MIN {
                        -1.0
                    } else {
                        best_rejected
                    };
                }
                break;
            }
        }
    }
    Judgment {
        topic: assigned.map(|t| t.0),
        confidence,
    }
}
