//! Per-topic classifier models (Sections 2.4, 3.4, 3.5).
//!
//! For each topic BINGO! trains one linear SVM *per feature space* on the
//! topic's training documents (positives) against its competing siblings
//! and the OTHERS documents (negatives). Each space carries its own MI
//! feature selection and frozen idf weighting; at decision time the
//! per-space verdicts are combined by the configured meta decision
//! function, or — in the run-time-critical single-classifier mode — only
//! the space with the best ξα precision estimate is evaluated.

use bingo_ml::feature_selection::{FeatureSelection, FeatureSelectionConfig};
use bingo_ml::meta::MetaPolicy;
use bingo_ml::svm::{LinearSvm, SvmConfig, TrainedSvm};
use bingo_ml::{FeatureSelector, NaiveBayes, TrainingSet};
use bingo_textproc::tfidf::{CorpusStats, TfIdfWeighter};
use bingo_textproc::vocab::TermId;
use bingo_textproc::{DocumentFeatures, FeatureSpaceKind, SparseVector};

/// One feature-space variant of a topic's classifier.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SpaceModel {
    /// Which feature components this space uses.
    pub kind: FeatureSpaceKind,
    /// MI-selected feature set with raw→compact projection.
    pub selector: FeatureSelector,
    /// Frozen idf statistics at training time.
    pub weighter: TfIdfWeighter,
    /// The trained SVM in the compact selected space.
    pub svm: TrainedSvm,
}

/// Floor on the projected-mass fraction used when renormalizing after
/// feature selection. A document whose selected features carry less than
/// this fraction of its tf·idf mass is *not* amplified to full unit
/// length: a page sharing only two or three topic terms must not look as
/// confident as a fully topical page.
pub const MIN_PROJECTION_COVERAGE: f32 = 0.3;

impl SpaceModel {
    /// The classifier-ready vector of a document in this space.
    ///
    /// The tf·idf vector is unit-normalized in the full feature space,
    /// projected onto the MI-selected features, and rescaled by
    /// `1 / max(coverage, MIN_PROJECTION_COVERAGE)` where coverage is the
    /// retained mass. Fully topical documents come out unit length;
    /// marginal ones stay proportionally shorter so the SVM bias can
    /// reject them.
    pub fn vector(&self, features: &DocumentFeatures) -> SparseVector {
        let occ = features.occurrences(self.kind);
        let pairs: Vec<(TermId, u32)> = occ.into_iter().map(|(i, f)| (TermId(i), f)).collect();
        let weighted = self.weighter.weigh(&pairs);
        let mut projected = self.selector.project(&weighted);
        let coverage = projected.norm();
        if coverage > 0.0 {
            projected.scale(1.0 / coverage.max(MIN_PROJECTION_COVERAGE));
        }
        projected
    }

    /// Signed hyperplane-distance confidence for a document.
    pub fn confidence(&self, features: &DocumentFeatures) -> f32 {
        self.svm.confidence(&self.vector(features))
    }

    /// The ξα precision estimate of this space's SVM.
    pub fn xi_precision(&self) -> f32 {
        self.svm.estimate.precision()
    }
}

/// Training parameters for one topic model.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ModelConfig {
    /// SVM hyperparameters.
    pub svm: SvmConfig,
    /// Feature-selection sizes (paper: pre-select 5000, keep 2000).
    pub selection: FeatureSelectionConfig,
    /// Feature spaces to train in parallel.
    pub spaces: Vec<FeatureSpaceKind>,
    /// Also train a multinomial Naive Bayes on the first feature space
    /// and include it in the meta committee — a genuinely different
    /// learning method (Section 3.5 combines alternative classifiers,
    /// not only alternative feature spaces).
    pub use_naive_bayes: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            svm: SvmConfig::default(),
            selection: FeatureSelectionConfig::default(),
            spaces: vec![
                FeatureSpaceKind::SingleTerms,
                FeatureSpaceKind::TermPairs,
                FeatureSpaceKind::Combined,
            ],
            use_naive_bayes: false,
        }
    }
}

/// A topic's trained decision models across feature spaces.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TopicModel {
    /// One model per configured feature space.
    pub spaces: Vec<SpaceModel>,
    /// Index into `spaces` of the best space by ξα precision (used in
    /// single-classifier mode).
    pub best_space: usize,
    /// Optional Naive Bayes committee member over the *raw* single-term
    /// space (NB models class-conditional term distributions, so it must
    /// see the negatives' vocabulary too — the MI-projected space keeps
    /// only in-topic features), with its committee weight (training-set
    /// precision).
    pub naive_bayes: Option<(NaiveBayes, f32)>,
    /// Mean confidence of the training documents under the trained model
    /// — the archetype-promotion threshold of Section 3.2.
    pub mean_training_confidence: f32,
}

impl TopicModel {
    /// Train a topic model from positive and negative documents.
    /// Returns `None` when either side is empty.
    pub fn train(
        positives: &[&DocumentFeatures],
        negatives: &[&DocumentFeatures],
        corpus: &CorpusStats,
        config: &ModelConfig,
    ) -> Option<TopicModel> {
        if positives.is_empty() || negatives.is_empty() {
            return None;
        }
        let weighter = corpus.weighter();
        // Balance the box constraints for the (typically tiny) positive
        // side.
        let mut svm_cfg = config.svm;
        svm_cfg.positive_cost_factor =
            (negatives.len() as f32 / positives.len() as f32).clamp(1.0, 50.0);
        let trainer = LinearSvm::new(svm_cfg);

        let mut spaces = Vec::with_capacity(config.spaces.len());
        for &kind in &config.spaces {
            // Occurrences per document for this space.
            let pos_occ: Vec<Vec<(u32, u32)>> =
                positives.iter().map(|f| f.occurrences(kind)).collect();
            let neg_occ: Vec<Vec<(u32, u32)>> =
                negatives.iter().map(|f| f.occurrences(kind)).collect();
            let labeled: Vec<(&[(u32, u32)], bool)> = pos_occ
                .iter()
                .map(|o| (o.as_slice(), true))
                .chain(neg_occ.iter().map(|o| (o.as_slice(), false)))
                .collect();
            let selector = FeatureSelection::new(config.selection).select(&labeled);
            if selector.is_empty() {
                continue;
            }

            let mut set = TrainingSet::new();
            for (occ, positive) in pos_occ
                .iter()
                .map(|o| (o, true))
                .chain(neg_occ.iter().map(|o| (o, false)))
            {
                let pairs: Vec<(TermId, u32)> = occ.iter().map(|&(i, f)| (TermId(i), f)).collect();
                let mut v = selector.project(&weighter.weigh(&pairs));
                let coverage = v.norm();
                if coverage > 0.0 {
                    v.scale(1.0 / coverage.max(MIN_PROJECTION_COVERAGE));
                }
                set.push(v, positive);
            }
            let Some(svm) = trainer.train(&set) else {
                continue;
            };
            spaces.push(SpaceModel {
                kind,
                selector,
                weighter: weighter.clone(),
                svm,
            });
        }
        if spaces.is_empty() {
            return None;
        }

        let best_space = spaces
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.xi_precision()
                    .partial_cmp(&b.1.xi_precision())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);

        // Optional Naive Bayes committee member over raw term counts.
        let naive_bayes = if config.use_naive_bayes {
            let mut nb_set = TrainingSet::new();
            for f in positives {
                nb_set.push(nb_vector(f), true);
            }
            for f in negatives {
                nb_set.push(nb_vector(f), false);
            }
            NaiveBayes::train(&nb_set).map(|nb| {
                let tp = positives
                    .iter()
                    .filter(|f| nb.score(&nb_vector(f)) >= 0.0)
                    .count();
                let fp = negatives
                    .iter()
                    .filter(|f| nb.score(&nb_vector(f)) >= 0.0)
                    .count();
                let weight = if tp + fp > 0 {
                    (tp as f32 / (tp + fp) as f32).max(0.05)
                } else {
                    0.05
                };
                (nb, weight)
            })
        } else {
            None
        };

        let mut model = TopicModel {
            spaces,
            best_space,
            naive_bayes,
            mean_training_confidence: 0.0,
        };
        // The training documents' own confidence scores define the
        // archetype threshold ("training documents have a confidence
        // score associated with them, too", Section 2.4).
        let sum: f32 = positives
            .iter()
            .map(|f| model.confidence(f, MetaPolicy::WeightedAverage, false))
            .sum();
        model.mean_training_confidence = sum / positives.len() as f32;
        Some(model)
    }

    /// The tri-state meta decision over all spaces (Section 3.5).
    /// Returns `(accepted, confidence)`; abstention counts as rejection.
    pub fn decide(
        &self,
        features: &DocumentFeatures,
        policy: MetaPolicy,
        single_classifier: bool,
    ) -> (bool, f32) {
        if single_classifier {
            let conf = self.spaces[self.best_space].confidence(features);
            return (conf >= 0.0, conf);
        }
        let h = (self.spaces.len() + usize::from(self.naive_bayes.is_some())) as f32;
        let t1 = match policy {
            MetaPolicy::Unanimous => h - 0.5,
            MetaPolicy::Majority | MetaPolicy::WeightedAverage => 0.0,
        };
        let mut vote_sum = 0.0f32;
        let mut conf_sum = 0.0f32;
        for space in &self.spaces {
            let conf = space.confidence(features);
            conf_sum += conf;
            let res = if conf >= 0.0 { 1.0 } else { -1.0 };
            let w = match policy {
                MetaPolicy::WeightedAverage => space.xi_precision().max(0.01),
                _ => 1.0,
            };
            vote_sum += w * res;
        }
        if let Some((nb, weight)) = &self.naive_bayes {
            let conf = nb.score(&nb_vector(features));
            conf_sum += conf;
            let res = if conf >= 0.0 { 1.0 } else { -1.0 };
            let w = match policy {
                MetaPolicy::WeightedAverage => weight.max(0.01),
                _ => 1.0,
            };
            vote_sum += w * res;
        }
        let mean_conf = conf_sum / h;
        if vote_sum > t1 {
            (true, mean_conf.max(0.0))
        } else {
            // Negative or abstaining: report a non-positive confidence.
            (false, mean_conf.min(-f32::EPSILON))
        }
    }

    /// Batched [`decide`](Self::decide): evaluates each feature space
    /// once per batch, amortizing the space/model dispatch that
    /// per-document calls repeat. The per-document arithmetic — vector
    /// construction, vote and confidence accumulation in space order —
    /// is exactly that of `decide`, so the two agree bit-for-bit.
    pub fn decide_batch(
        &self,
        docs: &[&DocumentFeatures],
        policy: MetaPolicy,
        single_classifier: bool,
    ) -> Vec<(bool, f32)> {
        if single_classifier {
            let space = &self.spaces[self.best_space];
            let vectors: Vec<SparseVector> = docs.iter().map(|f| space.vector(f)).collect();
            return space
                .svm
                .confidence_batch(&vectors)
                .into_iter()
                .map(|conf| (conf >= 0.0, conf))
                .collect();
        }
        let h = (self.spaces.len() + usize::from(self.naive_bayes.is_some())) as f32;
        let t1 = match policy {
            MetaPolicy::Unanimous => h - 0.5,
            MetaPolicy::Majority | MetaPolicy::WeightedAverage => 0.0,
        };
        let mut vote_sum = vec![0.0f32; docs.len()];
        let mut conf_sum = vec![0.0f32; docs.len()];
        for space in &self.spaces {
            let w = match policy {
                MetaPolicy::WeightedAverage => space.xi_precision().max(0.01),
                _ => 1.0,
            };
            let vectors: Vec<SparseVector> = docs.iter().map(|f| space.vector(f)).collect();
            for (i, conf) in space.svm.confidence_batch(&vectors).into_iter().enumerate() {
                conf_sum[i] += conf;
                vote_sum[i] += w * if conf >= 0.0 { 1.0 } else { -1.0 };
            }
        }
        if let Some((nb, weight)) = &self.naive_bayes {
            let w = match policy {
                MetaPolicy::WeightedAverage => weight.max(0.01),
                _ => 1.0,
            };
            for (i, features) in docs.iter().enumerate() {
                let conf = nb.score(&nb_vector(features));
                conf_sum[i] += conf;
                vote_sum[i] += w * if conf >= 0.0 { 1.0 } else { -1.0 };
            }
        }
        vote_sum
            .into_iter()
            .zip(conf_sum)
            .map(|(votes, confs)| {
                let mean_conf = confs / h;
                if votes > t1 {
                    (true, mean_conf.max(0.0))
                } else {
                    (false, mean_conf.min(-f32::EPSILON))
                }
            })
            .collect()
    }

    /// Confidence only (signed), under the given policy.
    pub fn confidence(
        &self,
        features: &DocumentFeatures,
        policy: MetaPolicy,
        single_classifier: bool,
    ) -> f32 {
        self.decide(features, policy, single_classifier).1
    }
}

/// The raw single-term count vector a Naive Bayes member consumes.
fn nb_vector(features: &DocumentFeatures) -> SparseVector {
    SparseVector::from_pairs(
        features
            .occurrences(FeatureSpaceKind::SingleTerms)
            .into_iter()
            .map(|(i, c)| (i, c as f32))
            .collect(),
    )
}

/// Choose the number of selected features by ξα estimate (Section 3.5:
/// "the same estimation technique can be used for choosing an
/// appropriate value for the number of most significant terms").
///
/// Trains one model per candidate `select` size and returns the size
/// whose best-space ξα precision estimate is highest, together with
/// that model.
pub fn choose_feature_count(
    positives: &[&DocumentFeatures],
    negatives: &[&DocumentFeatures],
    corpus: &CorpusStats,
    base: &ModelConfig,
    candidates: &[usize],
) -> Option<(usize, TopicModel)> {
    let mut best: Option<(usize, TopicModel, f32)> = None;
    for &count in candidates {
        let mut config = base.clone();
        config.selection.select = count;
        let Some(model) = TopicModel::train(positives, negatives, corpus, &config) else {
            continue;
        };
        let score = model.spaces[model.best_space].xi_precision();
        let better = best.as_ref().map(|&(_, _, s)| score > s).unwrap_or(true);
        if better {
            best = Some((count, model, score));
        }
    }
    best.map(|(count, model, _)| (count, model))
}

/// Build [`DocumentFeatures`] from a stored row's term frequencies (used
/// when an authority candidate is not in the in-memory candidate pool;
/// pair/anchor components are unavailable from the flat row and stay
/// empty).
pub fn features_from_term_freqs(term_freqs: &[(u32, u32)]) -> DocumentFeatures {
    DocumentFeatures {
        term_freqs: term_freqs.iter().map(|&(t, f)| (TermId(t), f)).collect(),
        pair_freqs: Vec::new(),
        incoming_anchor_terms: Vec::new(),
        neighbor_terms: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_textproc::{analyze_html, Vocabulary};

    fn corpus_and_docs() -> (CorpusStats, Vec<DocumentFeatures>, Vec<DocumentFeatures>) {
        let mut vocab = Vocabulary::new();
        let mut corpus = CorpusStats::new();
        let mut make = |text: &str| {
            let doc = analyze_html(text, &mut vocab);
            let f = DocumentFeatures::from_document(&doc);
            corpus.add_document(
                f.occurrences(FeatureSpaceKind::Combined)
                    .iter()
                    .map(|&(i, _)| TermId(i)),
            );
            f
        };
        let positives: Vec<DocumentFeatures> = (0..6)
            .map(|i| {
                make(&format!(
                    "<p>database transaction recovery logging concurrency \
                     index query optimization storage {i}</p>"
                ))
            })
            .collect();
        let negatives: Vec<DocumentFeatures> = (0..8)
            .map(|i| {
                make(&format!(
                    "<p>football stadium championship soccer team player \
                     coach season goal ticket {i}</p>"
                ))
            })
            .collect();
        (corpus, positives, negatives)
    }

    fn train() -> (TopicModel, Vec<DocumentFeatures>, Vec<DocumentFeatures>) {
        let (corpus, pos, neg) = corpus_and_docs();
        let p: Vec<&DocumentFeatures> = pos.iter().collect();
        let n: Vec<&DocumentFeatures> = neg.iter().collect();
        let model = TopicModel::train(&p, &n, &corpus, &ModelConfig::default()).unwrap();
        (model, pos, neg)
    }

    #[test]
    fn decide_batch_matches_per_document_decide() {
        let (model, pos, neg) = train();
        let all: Vec<&DocumentFeatures> = pos.iter().chain(neg.iter()).collect();
        for policy in [
            MetaPolicy::Unanimous,
            MetaPolicy::Majority,
            MetaPolicy::WeightedAverage,
        ] {
            for single in [false, true] {
                let batch = model.decide_batch(&all, policy, single);
                for (f, got) in all.iter().zip(&batch) {
                    assert_eq!(*got, model.decide(f, policy, single));
                }
            }
        }
    }

    #[test]
    fn separates_topics_across_all_policies() {
        let (model, pos, neg) = train();
        for policy in [
            MetaPolicy::Unanimous,
            MetaPolicy::Majority,
            MetaPolicy::WeightedAverage,
        ] {
            for f in &pos {
                assert!(model.decide(f, policy, false).0, "positive rejected");
            }
            for f in &neg {
                assert!(!model.decide(f, policy, false).0, "negative accepted");
            }
        }
    }

    #[test]
    fn single_classifier_mode_works() {
        let (model, pos, neg) = train();
        assert!(model.decide(&pos[0], MetaPolicy::Majority, true).0);
        assert!(!model.decide(&neg[0], MetaPolicy::Majority, true).0);
    }

    #[test]
    fn trains_one_model_per_space() {
        let (model, _, _) = train();
        assert_eq!(model.spaces.len(), 3);
        assert!(model.best_space < model.spaces.len());
        for s in &model.spaces {
            let p = s.xi_precision();
            assert!((0.0..=1.0).contains(&p), "precision {p} out of range");
        }
    }

    #[test]
    fn mean_training_confidence_positive() {
        let (model, _, _) = train();
        assert!(
            model.mean_training_confidence > 0.0,
            "training docs should sit on the positive side: {}",
            model.mean_training_confidence
        );
    }

    #[test]
    fn empty_sides_rejected() {
        let (corpus, pos, _neg) = corpus_and_docs();
        let p: Vec<&DocumentFeatures> = pos.iter().collect();
        assert!(TopicModel::train(&p, &[], &corpus, &ModelConfig::default()).is_none());
        assert!(TopicModel::train(&[], &p, &corpus, &ModelConfig::default()).is_none());
    }

    #[test]
    fn naive_bayes_member_joins_the_committee() {
        let (corpus, pos, neg) = corpus_and_docs();
        let p: Vec<&DocumentFeatures> = pos.iter().collect();
        let n: Vec<&DocumentFeatures> = neg.iter().collect();
        let config = ModelConfig {
            use_naive_bayes: true,
            ..ModelConfig::default()
        };
        let model = TopicModel::train(&p, &n, &corpus, &config).unwrap();
        let (nb, weight) = model.naive_bayes.as_ref().expect("nb trained");
        assert!((0.05..=1.0).contains(weight));
        // NB broadly agrees on clean data (it may reject borderline
        // positives — that conservatism is exactly why the unanimous
        // meta trades recall for precision).
        let nb_accepts = pos
            .iter()
            .filter(|f| nb.score(&super::nb_vector(f)) >= 0.0)
            .count();
        assert!(
            nb_accepts * 2 >= pos.len(),
            "NB accepts {nb_accepts}/{}",
            pos.len()
        );
        for f in &pos {
            assert!(model.decide(f, MetaPolicy::Majority, false).0);
        }
        for f in &neg {
            assert!(!model.decide(f, MetaPolicy::Unanimous, false).0);
            assert!(!model.decide(f, MetaPolicy::Majority, false).0);
        }
    }

    #[test]
    fn choose_feature_count_picks_a_candidate() {
        let (corpus, pos, neg) = corpus_and_docs();
        let p: Vec<&DocumentFeatures> = pos.iter().collect();
        let n: Vec<&DocumentFeatures> = neg.iter().collect();
        let (count, model) =
            choose_feature_count(&p, &n, &corpus, &ModelConfig::default(), &[5, 50, 500])
                .expect("some candidate trains");
        assert!([5usize, 50, 500].contains(&count));
        // The returned model is trained with that size.
        assert!(model.spaces[0].selector.len() <= count);
        for f in &pos {
            assert!(model.decide(f, MetaPolicy::Majority, false).0);
        }
    }

    #[test]
    fn features_from_row_round_trip() {
        let f = features_from_term_freqs(&[(3, 2), (9, 1)]);
        assert_eq!(f.term_freqs.len(), 2);
        assert!(f.pair_freqs.is_empty());
        let occ = f.occurrences(FeatureSpaceKind::SingleTerms);
        assert_eq!(occ.len(), 2);
    }
}
