//! Property-based tests of the storage engine: index consistency under
//! arbitrary operation sequences and lossless snapshots of arbitrary
//! databases.

use bingo_graph::LinkSource;
use bingo_store::{persist, DocumentRow, DocumentStore, HostRow, HostState, LinkRow};
use bingo_textproc::MimeType;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

fn row_strategy() -> impl Strategy<Value = DocumentRow> {
    (
        0u64..60,
        0u32..8,
        proptest::option::of(0u32..5),
        -1.0f32..1.0,
        proptest::collection::vec((0u32..100, 1u32..9), 0..12),
        0usize..5000,
    )
        .prop_map(
            |(id, host, topic, confidence, term_freqs, size)| DocumentRow {
                id,
                url: format!("http://h{host}.example/p{id}"),
                host,
                mime: MimeType::Html,
                depth: (id % 7) as u32,
                title: format!("t{id}"),
                topic,
                confidence,
                term_freqs,
                size,
                fetched_at: id * 3,
            },
        )
}

/// An operation against the store.
#[derive(Debug, Clone)]
enum Op {
    Insert(DocumentRow),
    SetTopic(u64, Option<u32>, f32),
    Link(u64, u64),
    Host(u32, u32),
    /// Seal the segmented store's workspace (no-op on the in-memory
    /// reference) — this is what makes flush points arbitrary.
    Seal,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        row_strategy().prop_map(Op::Insert),
        (0u64..60, proptest::option::of(0u32..5), -1.0f32..1.0)
            .prop_map(|(id, t, c)| Op::SetTopic(id, t, c)),
        (0u64..60, 0u64..60).prop_map(|(a, b)| Op::Link(a, b)),
    ]
}

fn seg_op_strategy() -> impl Strategy<Value = Op> {
    // Unweighted arms (the vendored proptest has no weight syntax):
    // listing op_strategy twice biases toward data ops over seals.
    prop_oneof![
        op_strategy(),
        op_strategy(),
        (0u32..8, 0u32..5).prop_map(|(id, failures)| Op::Host(id, failures)),
        Just(Op::Seal),
    ]
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("bingo-store-prop-{tag}-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn apply(store: &DocumentStore, op: &Op) -> bool {
    match op {
        Op::Insert(row) => store.insert_document(row.clone()).is_ok(),
        Op::SetTopic(id, t, c) => store.set_topic(*id, *t, *c).is_ok(),
        Op::Link(a, b) => {
            store.insert_link(LinkRow {
                from: *a,
                to: *b,
                to_url: format!("u{b}"),
            });
            true
        }
        Op::Host(id, failures) => {
            store.upsert_host(HostRow {
                id: *id,
                name: format!("h{id}"),
                state: if *failures > 2 {
                    HostState::Bad
                } else {
                    HostState::Good
                },
                failures: *failures,
            });
            true
        }
        Op::Seal => {
            if store.is_segmented() {
                store.seal_now().expect("seal");
            }
            true
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topic_index_always_matches_rows(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        let store = DocumentStore::new();
        for op in &ops {
            apply(&store, op);
        }
        // Invariant: the by-topic index and the row fields agree exactly.
        let mut by_row: std::collections::HashMap<u32, std::collections::BTreeSet<u64>> =
            Default::default();
        store.for_each_document(|row| {
            if let Some(t) = row.topic {
                by_row.entry(t).or_default().insert(row.id);
            }
        });
        for t in 0..5u32 {
            let idx: std::collections::BTreeSet<u64> =
                store.topic_documents(t).into_iter().collect();
            let rows = by_row.remove(&t).unwrap_or_default();
            prop_assert_eq!(idx, rows, "topic {} index mismatch", t);
        }
        // Invariant: link index is symmetric.
        for id in 0..60u64 {
            for succ in store.successors(id) {
                prop_assert!(store.predecessors(succ).contains(&id));
            }
        }
    }

    #[test]
    fn snapshots_are_lossless(
        rows in proptest::collection::vec(row_strategy(), 0..40),
        links in proptest::collection::vec((0u64..60, 0u64..60), 0..20),
        hosts in proptest::collection::vec((0u32..8, 0u32..5), 0..8),
    ) {
        let store = DocumentStore::new();
        let mut inserted: std::collections::BTreeSet<u64> = Default::default();
        for row in rows {
            if store.insert_document(row.clone()).is_ok() {
                inserted.insert(row.id);
            }
        }
        for (a, b) in links {
            store.insert_link(LinkRow { from: a, to: b, to_url: format!("u{b}") });
        }
        for (id, failures) in hosts {
            store.upsert_host(HostRow {
                id,
                name: format!("h{id}"),
                state: if failures > 2 { HostState::Bad } else { HostState::Good },
                failures,
            });
        }

        let mut buf = Vec::new();
        persist::write_snapshot(&store, &mut buf).unwrap();
        let restored = persist::read_snapshot(&buf[..]).unwrap();

        prop_assert_eq!(restored.document_count(), store.document_count());
        prop_assert_eq!(restored.link_count(), store.link_count());
        prop_assert_eq!(restored.host_count(), store.host_count());
        for &id in &inserted {
            prop_assert_eq!(restored.document(id), store.document(id));
            let mut a = restored.successors(id);
            let mut b = store.successors(id);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
        // Second snapshot of the restored store is byte-identical.
        let mut buf2 = Vec::new();
        persist::write_snapshot(&restored, &mut buf2).unwrap();
        prop_assert_eq!(buf, buf2);
    }

    /// The disk-backed segmented store is observationally equal to the
    /// all-in-memory store under arbitrary operation sequences with
    /// arbitrary seal (flush) points — same rows, same index order,
    /// same link adjacency, byte-identical snapshots — and reads stay
    /// stable across a reopen from disk.
    #[test]
    fn segmented_store_matches_in_memory_for_arbitrary_seal_points(
        ops in proptest::collection::vec(seg_op_strategy(), 0..100)
    ) {
        let dir = fresh_dir("seg");
        let mem = DocumentStore::new();
        // Threshold high enough that only explicit Op::Seal seals.
        let seg = DocumentStore::segmented_with(&dir, 1_000_000).unwrap();
        for op in &ops {
            let a = apply(&mem, op);
            let b = apply(&seg, op);
            prop_assert_eq!(a, b, "op outcome diverged: {:?}", op);
        }

        prop_assert_eq!(seg.document_count(), mem.document_count());
        prop_assert_eq!(seg.link_count(), mem.link_count());
        prop_assert_eq!(seg.host_count(), mem.host_count());
        for id in 0..60u64 {
            prop_assert_eq!(seg.document(id), mem.document(id), "doc {}", id);
            prop_assert_eq!(seg.successors(id), mem.successors(id), "succ {}", id);
            prop_assert_eq!(seg.predecessors(id), mem.predecessors(id), "pred {}", id);
            prop_assert_eq!(seg.host_of(id), mem.host_of(id), "host_of {}", id);
        }
        for t in 0..5u32 {
            prop_assert_eq!(seg.topic_documents(t), mem.topic_documents(t), "topic {}", t);
        }
        for row in mem.all_documents() {
            let hit = seg.document_by_url(&row.url);
            prop_assert_eq!(hit.map(|r| r.id), Some(row.id), "url {}", &row.url);
        }
        prop_assert_eq!(seg.all_links(), mem.all_links());
        for id in 0..8u32 {
            prop_assert_eq!(seg.host(id), mem.host(id), "host row {}", id);
        }

        // Snapshots of the two backends are byte-identical.
        let mut mem_snap = Vec::new();
        persist::write_snapshot(&mem, &mut mem_snap).unwrap();
        let mut seg_snap = Vec::new();
        persist::write_snapshot(&seg, &mut seg_snap).unwrap();
        prop_assert_eq!(&mem_snap, &seg_snap, "live snapshot bytes diverged");

        // Permutation stability across reopen: a final seal persists
        // the workspace and trailing overrides/hosts; reading the
        // directory back yields the same database (topic lists are
        // set-equal — reopen rebuilds them in insertion order).
        seg.seal_now().unwrap();
        drop(seg);
        let re = DocumentStore::segmented_with(&dir, 1_000_000).unwrap();
        prop_assert_eq!(re.document_count(), mem.document_count());
        prop_assert_eq!(re.link_count(), mem.link_count());
        prop_assert_eq!(re.host_count(), mem.host_count());
        for id in 0..60u64 {
            prop_assert_eq!(re.document(id), mem.document(id), "reopen doc {}", id);
        }
        for t in 0..5u32 {
            let mut a = re.topic_documents(t);
            let mut b = mem.topic_documents(t);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "reopen topic {}", t);
        }
        let mut re_snap = Vec::new();
        persist::write_snapshot(&re, &mut re_snap).unwrap();
        prop_assert_eq!(&mem_snap, &re_snap, "reopen snapshot bytes diverged");
        std::fs::remove_dir_all(&dir).ok();
    }
}
