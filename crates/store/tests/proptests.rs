//! Property-based tests of the storage engine: index consistency under
//! arbitrary operation sequences and lossless snapshots of arbitrary
//! databases.

use bingo_graph::LinkSource;
use bingo_store::{persist, DocumentRow, DocumentStore, HostRow, HostState, LinkRow};
use bingo_textproc::MimeType;
use proptest::prelude::*;

fn row_strategy() -> impl Strategy<Value = DocumentRow> {
    (
        0u64..60,
        0u32..8,
        proptest::option::of(0u32..5),
        -1.0f32..1.0,
        proptest::collection::vec((0u32..100, 1u32..9), 0..12),
        0usize..5000,
    )
        .prop_map(
            |(id, host, topic, confidence, term_freqs, size)| DocumentRow {
                id,
                url: format!("http://h{host}.example/p{id}"),
                host,
                mime: MimeType::Html,
                depth: (id % 7) as u32,
                title: format!("t{id}"),
                topic,
                confidence,
                term_freqs,
                size,
                fetched_at: id * 3,
            },
        )
}

/// An operation against the store.
#[derive(Debug, Clone)]
enum Op {
    Insert(DocumentRow),
    SetTopic(u64, Option<u32>, f32),
    Link(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        row_strategy().prop_map(Op::Insert),
        (0u64..60, proptest::option::of(0u32..5), -1.0f32..1.0)
            .prop_map(|(id, t, c)| Op::SetTopic(id, t, c)),
        (0u64..60, 0u64..60).prop_map(|(a, b)| Op::Link(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topic_index_always_matches_rows(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        let store = DocumentStore::new();
        for op in ops {
            match op {
                Op::Insert(row) => {
                    let _ = store.insert_document(row);
                }
                Op::SetTopic(id, t, c) => {
                    let _ = store.set_topic(id, t, c);
                }
                Op::Link(a, b) => {
                    store.insert_link(LinkRow {
                        from: a,
                        to: b,
                        to_url: format!("u{b}"),
                    });
                }
            }
        }
        // Invariant: the by-topic index and the row fields agree exactly.
        let mut by_row: std::collections::HashMap<u32, std::collections::BTreeSet<u64>> =
            Default::default();
        store.for_each_document(|row| {
            if let Some(t) = row.topic {
                by_row.entry(t).or_default().insert(row.id);
            }
        });
        for t in 0..5u32 {
            let idx: std::collections::BTreeSet<u64> =
                store.topic_documents(t).into_iter().collect();
            let rows = by_row.remove(&t).unwrap_or_default();
            prop_assert_eq!(idx, rows, "topic {} index mismatch", t);
        }
        // Invariant: link index is symmetric.
        for id in 0..60u64 {
            for succ in store.successors(id) {
                prop_assert!(store.predecessors(succ).contains(&id));
            }
        }
    }

    #[test]
    fn snapshots_are_lossless(
        rows in proptest::collection::vec(row_strategy(), 0..40),
        links in proptest::collection::vec((0u64..60, 0u64..60), 0..20),
        hosts in proptest::collection::vec((0u32..8, 0u32..5), 0..8),
    ) {
        let store = DocumentStore::new();
        let mut inserted: std::collections::BTreeSet<u64> = Default::default();
        for row in rows {
            if store.insert_document(row.clone()).is_ok() {
                inserted.insert(row.id);
            }
        }
        for (a, b) in links {
            store.insert_link(LinkRow { from: a, to: b, to_url: format!("u{b}") });
        }
        for (id, failures) in hosts {
            store.upsert_host(HostRow {
                id,
                name: format!("h{id}"),
                state: if failures > 2 { HostState::Bad } else { HostState::Good },
                failures,
            });
        }

        let mut buf = Vec::new();
        persist::write_snapshot(&store, &mut buf).unwrap();
        let restored = persist::read_snapshot(&buf[..]).unwrap();

        prop_assert_eq!(restored.document_count(), store.document_count());
        prop_assert_eq!(restored.link_count(), store.link_count());
        prop_assert_eq!(restored.host_count(), store.host_count());
        for &id in &inserted {
            prop_assert_eq!(restored.document(id), store.document(id));
            let mut a = restored.successors(id);
            let mut b = store.successors(id);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
        // Second snapshot of the restored store is byte-identical.
        let mut buf2 = Vec::new();
        persist::write_snapshot(&restored, &mut buf2).unwrap();
        prop_assert_eq!(buf, buf2);
    }
}
