//! Crash-point matrix for segment seals: killing the write at *any*
//! byte of a segment flush — inside the segment file, between segment
//! and manifest, inside the manifest — must never lose an acked seal,
//! and recovery (reopening the store directory) must come up on
//! exactly the newest committed manifest. Rows that were only in the
//! workspace when the crash hit are not durable yet, but they stay
//! readable in the live handle and a retried seal lands them.
//!
//! Seed-driven like `crates/crawler/tests/crash.rs`: set
//! `BINGO_CRASH_SEEDS=7,8,9` to sweep extra pseudo-random crash points
//! (CI pins a fixed seed matrix).

use bingo_store::segment::SEGMENTS_FILE;
use bingo_store::{CrashFs, DocumentRow, DocumentStore, LinkRow};
use bingo_textproc::{fxhash, MimeType};
use std::path::PathBuf;

fn doc(id: u64) -> DocumentRow {
    DocumentRow {
        id,
        url: format!("http://h{}/p{id}", id % 3),
        host: (id % 3) as u32,
        mime: MimeType::Html,
        depth: 1,
        title: format!("doc {id}"),
        topic: Some((id % 2) as u32),
        confidence: 0.5,
        term_freqs: vec![(1, 2), (7, 1)],
        size: 100,
        fetched_at: id,
    }
}

fn link(from: u64, to: u64) -> LinkRow {
    LinkRow {
        from,
        to,
        to_url: format!("http://h{}/p{to}", to % 3),
    }
}

fn crash_seeds() -> Vec<u64> {
    match std::env::var("BINGO_CRASH_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![1, 2, 3],
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bingo-segcrash-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Build a store with batch A sealed (the acked generation) and batch B
/// staged in the workspace, ready for the seal under test.
fn store_at_second_seal(dir: &PathBuf) -> DocumentStore {
    let store = DocumentStore::segmented_with(dir, 1_000_000).expect("open");
    for id in 0..4 {
        store.insert_document(doc(id)).unwrap();
        store.insert_link(link(id, id + 1));
    }
    store.seal_now().expect("acked seal of batch A");
    for id in 4..8 {
        store.insert_document(doc(id)).unwrap();
        store.insert_link(link(id, id + 1));
    }
    store
}

/// Byte sizes (second segment file, manifest) of a clean second seal.
fn seal_sizes() -> (u64, u64) {
    let dir = fresh_dir("sizes");
    let store = store_at_second_seal(&dir);
    store.seal_now().expect("clean seal");
    let seg = std::fs::metadata(dir.join("seg-000001.jsonl"))
        .unwrap()
        .len();
    let manifest = std::fs::metadata(dir.join(SEGMENTS_FILE)).unwrap().len();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
    (seg, manifest)
}

#[test]
fn seal_killed_at_every_byte_keeps_the_acked_segment() {
    let (seg_len, manifest_len) = seal_sizes();
    let total = seg_len + manifest_len;

    // Exact boundaries: before the first byte, one byte in, the edges
    // of the segment/manifest gap, the last manifest byte.
    let mut budgets: Vec<u64> = vec![0, 1, seg_len - 1, seg_len, seg_len + 1, total - 1];
    for seed in crash_seeds() {
        for i in 0u64..6 {
            budgets.push(fxhash::hash_one(&(seed, i)) % total);
        }
    }
    budgets.sort_unstable();
    budgets.dedup();
    budgets.retain(|b| *b < total);

    for budget in budgets {
        let dir = fresh_dir(&format!("matrix-{budget}"));
        let store = store_at_second_seal(&dir);

        let fs = CrashFs::with_budget(budget);
        assert!(
            store.seal_now_with(&fs).is_err(),
            "budget {budget}: seal must report the crash"
        );
        assert!(fs.crashed(), "budget {budget}: crash must have fired");

        // The live handle still merges workspace + sealed reads: no row
        // vanished with the failed seal.
        assert_eq!(store.document_count(), 8, "budget {budget}: live reads");
        assert_eq!(store.document(6).unwrap().title, "doc 6");

        // Recovery: reopening sees exactly the acked first seal — never
        // a torn second segment, never fewer rows than were acked.
        let reopened = DocumentStore::segmented(&dir)
            .unwrap_or_else(|e| panic!("budget {budget}: reopen failed: {e}"));
        assert_eq!(
            reopened.document_count(),
            4,
            "budget {budget}: acked batch lost or torn batch surfaced"
        );
        assert_eq!(reopened.segment_count(), 1, "budget {budget}");
        for id in 0..4 {
            assert!(
                reopened.document(id).is_some(),
                "budget {budget}: acked row {id} lost"
            );
        }
        // Reopen reaped any orphan the crash left: every remaining
        // segment file is referenced by the manifest.
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n != SEGMENTS_FILE && n != "seg-000000.jsonl")
            .collect();
        assert!(
            leftovers.is_empty(),
            "budget {budget}: orphan debris survived reopen: {leftovers:?}"
        );
        drop(reopened);

        // The workspace rows were never acked — but a retried seal from
        // the live handle lands them, and recovery then sees all eight.
        store.seal_now().expect("retried seal");
        drop(store);
        let recovered = DocumentStore::segmented(&dir).unwrap();
        assert_eq!(recovered.document_count(), 8, "budget {budget}: retry");
        assert_eq!(recovered.link_count(), 8, "budget {budget}: retry links");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Populate `dir` with two small sealed segments (a compactable run)
/// followed by one larger sealed segment.
fn build_compactable(dir: &PathBuf) {
    let store = DocumentStore::segmented_with(dir, 1_000_000).expect("open");
    for id in 0..2 {
        store.insert_document(doc(id)).unwrap();
    }
    store.seal_now().expect("small seal 1");
    for id in 2..4 {
        store.insert_document(doc(id)).unwrap();
    }
    store.seal_now().expect("small seal 2");
    for id in 4..12 {
        store.insert_document(doc(id)).unwrap();
        store.insert_link(link(id, id + 1));
    }
    store.seal_now().expect("big seal");
}

/// Open `dir` with a compaction policy armed so `compact_now_with`
/// merges the small run.
fn open_compacting(dir: &PathBuf) -> DocumentStore {
    DocumentStore::segmented_cfg(
        dir,
        bingo_store::SegmentStoreConfig {
            seal_every: 1_000_000,
            sparse: false,
            compaction: Some(bingo_store::CompactionConfig {
                small_docs: 5,
                min_run: 2,
            }),
        },
    )
    .expect("reopen with compaction")
}

/// Byte sizes (merged segment file, manifest) of a clean compaction.
fn compaction_sizes() -> (u64, u64) {
    let dir = fresh_dir("compact-sizes");
    build_compactable(&dir);
    let store = open_compacting(&dir);
    assert!(store.compact_now_with(&bingo_store::StdFs).unwrap());
    let seg = std::fs::metadata(dir.join("seg-000003.jsonl"))
        .unwrap()
        .len();
    let manifest = std::fs::metadata(dir.join(SEGMENTS_FILE)).unwrap().len();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
    (seg, manifest)
}

#[test]
fn compaction_killed_at_every_byte_never_loses_a_row() {
    let (seg_len, manifest_len) = compaction_sizes();
    let total = seg_len + manifest_len;

    let mut budgets: Vec<u64> = vec![0, 1, seg_len - 1, seg_len, seg_len + 1, total - 1];
    for seed in crash_seeds() {
        for i in 0u64..6 {
            budgets.push(fxhash::hash_one(&(seed, i, "compact")) % total);
        }
    }
    budgets.sort_unstable();
    budgets.dedup();
    budgets.retain(|b| *b < total);

    for budget in budgets {
        let dir = fresh_dir(&format!("compact-{budget}"));
        build_compactable(&dir);
        let store = open_compacting(&dir);

        let fs = CrashFs::with_budget(budget);
        assert!(
            store.compact_now_with(&fs).is_err(),
            "budget {budget}: compaction must report the crash"
        );
        assert!(fs.crashed(), "budget {budget}: crash must have fired");
        assert_eq!(store.compaction_stats().runs, 0, "budget {budget}: no ack");

        // The live handle never adopted the torn rewrite: every row
        // still reads from the pre-compaction segments.
        assert_eq!(store.document_count(), 12, "budget {budget}: live reads");
        assert_eq!(store.document(3).unwrap().title, "doc 3");
        drop(store);

        // Recovery: the old manifest still governs; the torn merged
        // segment (if any bytes landed) is an orphan and gets reaped.
        let reopened = DocumentStore::segmented(&dir)
            .unwrap_or_else(|e| panic!("budget {budget}: reopen failed: {e}"));
        assert_eq!(reopened.document_count(), 12, "budget {budget}: rows lost");
        assert_eq!(reopened.segment_count(), 3, "budget {budget}");
        for id in 0..12 {
            assert!(
                reopened.document(id).is_some(),
                "budget {budget}: row {id} lost to a torn compaction"
            );
        }
        drop(reopened);

        // A retried compaction from a fresh handle completes and the
        // merged store still serves every row.
        let retry = open_compacting(&dir);
        assert!(retry.compact_now_with(&bingo_store::StdFs).unwrap());
        assert_eq!(retry.segment_count(), 2, "budget {budget}: retry merge");
        assert_eq!(retry.document_count(), 12, "budget {budget}: retry rows");
        assert_eq!(retry.link_count(), 8, "budget {budget}: retry links");
        drop(retry);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn crash_before_any_commit_recovers_an_empty_store() {
    let dir = fresh_dir("first-seal");
    let store = DocumentStore::segmented_with(&dir, 1_000_000).expect("open");
    for id in 0..4 {
        store.insert_document(doc(id)).unwrap();
    }
    // Kill the very first seal mid-segment: no manifest was ever
    // committed, so recovery sees an empty (but valid) store.
    let fs = CrashFs::with_budget(40);
    assert!(store.seal_now_with(&fs).is_err());
    drop(store);
    let reopened = DocumentStore::segmented(&dir).expect("reopen");
    assert_eq!(reopened.document_count(), 0);
    assert_eq!(reopened.segment_count(), 0);
    std::fs::remove_dir_all(&dir).ok();
}
