//! Crash-consistent artifact persistence: atomic file installs and
//! versioned checkpoint generations.
//!
//! The crawl "may be a database with several million documents"
//! accumulated over days (Section 1.2); losing it to a kill that lands
//! mid-write is not acceptable. This module applies the classic
//! write-ahead-intent discipline of log-structured stores to every
//! session artifact:
//!
//! * [`atomic_write`] never touches the destination in place — bytes go
//!   to a sibling temp file, are flushed and fsynced, and replace the
//!   destination in one rename. A crash at any byte leaves either the
//!   old file or the new file, never a torn hybrid.
//! * A session directory holds numbered **generations**
//!   (`gen-000001/`, `gen-000002/`, …). Each generation's files are
//!   written first; a `MANIFEST.json` recording per-file lengths and
//!   checksums is installed *last* and acts as the commit record. A
//!   generation without a valid manifest — or whose files fail length
//!   or checksum verification — never existed as far as recovery is
//!   concerned.
//! * [`find_newest_complete`] scans generations newest-first and
//!   returns the first one that verifies: rollback-to-last-good is the
//!   load path, not a special case.
//! * [`prune_generations`] keeps the newest K complete generations
//!   (default [`DEFAULT_KEEP_GENERATIONS`]) so multi-day crawls don't
//!   fill the disk with history.
//!
//! All writes go through the [`DurableFs`] trait so tests can inject
//! crashes at an exact byte offset ([`CrashFs`]): the crash-point
//! matrix in `crates/crawler/tests/crash.rs` proves "kill the process
//! at byte N of a checkpoint write, for any N" recovers the newest
//! complete generation.

use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// File name of the per-generation commit record.
pub const MANIFEST_FILE: &str = "MANIFEST.json";
/// Format marker of manifest files.
pub const MANIFEST_MAGIC: &str = "bingo-manifest";
/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;
/// Complete generations kept by [`prune_generations`] by default.
pub const DEFAULT_KEEP_GENERATIONS: usize = 2;

/// Checksum used in manifests: deterministic, dependency-free fxhash
/// over the file bytes. Not cryptographic — it guards against torn and
/// bit-rotted files, not adversaries.
pub fn checksum(bytes: &[u8]) -> u64 {
    bingo_textproc::fxhash::hash_one(&bytes)
}

/// One file recorded in a generation manifest.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct ManifestEntry {
    /// File name relative to the generation directory.
    pub name: String,
    /// Exact byte length.
    pub len: u64,
    /// [`checksum`] of the bytes.
    pub checksum: u64,
}

/// The commit record of one checkpoint generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// Format marker ([`MANIFEST_MAGIC`]).
    pub magic: String,
    /// Format version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Generation number (monotonic within a session directory).
    pub generation: u64,
    /// Files belonging to the generation, in write order.
    pub files: Vec<ManifestEntry>,
}

/// A complete (manifest-verified) generation found in a session
/// directory.
#[derive(Debug, Clone)]
pub struct CompleteGeneration {
    /// Generation number.
    pub generation: u64,
    /// Directory holding the generation's files.
    pub dir: PathBuf,
    /// Its parsed commit record.
    pub manifest: Manifest,
}

/// Filesystem abstraction for durable writes, so tests can kill the
/// write at an exact byte offset. Production code uses [`StdFs`].
pub trait DurableFs: Send + Sync {
    /// Write `bytes` to `path` atomically (temp file → flush → fsync →
    /// rename). On error the destination is untouched; at most a
    /// partial temp file is left behind.
    fn atomic_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Create a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

impl DurableFs for StdFs {
    fn atomic_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        atomic_write(path, bytes)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

/// Sibling temp path: `store.jsonl` → `store.jsonl.tmp` (suffix append,
/// not extension replacement, so dotted names stay unambiguous).
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// flush + fsync, then one rename. The destination either keeps its old
/// content or holds the complete new content — never a prefix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.flush()?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Make the rename itself durable (best effort: some filesystems
    // reject directory fsync).
    if let Some(parent) = path.parent() {
        if let Ok(d) = File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// A crash-injecting filesystem: writes succeed until a total byte
/// budget is exhausted, then the "process dies" — the write in flight
/// keeps only the bytes that fit (left in the temp file, never
/// renamed) and every later operation fails. Driving the budget over
/// `0..total_session_bytes` sweeps the crash point through every byte
/// of a save, including the gaps *between* files.
#[derive(Debug)]
pub struct CrashFs {
    budget: AtomicU64,
    dead: AtomicBool,
}

impl CrashFs {
    /// A filesystem that dies after `budget` bytes have been written.
    pub fn with_budget(budget: u64) -> Self {
        CrashFs {
            budget: AtomicU64::new(budget),
            dead: AtomicBool::new(false),
        }
    }

    /// True once the injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    fn died(&self) -> io::Error {
        self.dead.store(true, Ordering::SeqCst);
        io::Error::other("injected crash: byte budget exhausted")
    }
}

impl DurableFs for CrashFs {
    fn atomic_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.crashed() {
            return Err(self.died());
        }
        let len = bytes.len() as u64;
        let left = self.budget.load(Ordering::SeqCst);
        if left >= len {
            self.budget.fetch_sub(len, Ordering::SeqCst);
            return atomic_write(path, bytes);
        }
        // The crash lands mid-write: the temp file keeps the prefix
        // that fit, the rename never happens, the destination (if any)
        // keeps its old content.
        self.budget.store(0, Ordering::SeqCst);
        let _ = std::fs::write(tmp_path(path), &bytes[..left as usize]);
        Err(self.died())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        if self.crashed() {
            return Err(self.died());
        }
        std::fs::create_dir_all(path)
    }
}

/// Directory name of generation `n` inside a session directory.
pub fn generation_dir(session: &Path, generation: u64) -> PathBuf {
    session.join(format!("gen-{generation:06}"))
}

/// Parse a generation number out of a `gen-NNNNNN` directory name.
fn generation_of(name: &str) -> Option<u64> {
    name.strip_prefix("gen-")?.parse().ok()
}

/// All generation numbers present in `session` (complete or not),
/// sorted descending. A missing or unreadable directory is just empty.
pub fn generation_numbers(session: &Path) -> Vec<u64> {
    let Ok(entries) = std::fs::read_dir(session) else {
        return Vec::new();
    };
    let mut gens: Vec<u64> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| generation_of(&e.file_name().to_string_lossy()))
        .collect();
    gens.sort_unstable_by(|a, b| b.cmp(a));
    gens
}

/// Verify one generation directory against its manifest: the manifest
/// must parse with the right magic/version and every listed file must
/// match its recorded length and checksum.
pub fn verify_generation(dir: &Path) -> Option<Manifest> {
    let text = std::fs::read_to_string(dir.join(MANIFEST_FILE)).ok()?;
    let manifest: Manifest = serde_json::from_str(&text).ok()?;
    if manifest.magic != MANIFEST_MAGIC || manifest.version != MANIFEST_VERSION {
        return None;
    }
    for entry in &manifest.files {
        let bytes = std::fs::read(dir.join(&entry.name)).ok()?;
        if bytes.len() as u64 != entry.len || checksum(&bytes) != entry.checksum {
            return None;
        }
    }
    Some(manifest)
}

/// All complete generations in `session`, newest first.
pub fn complete_generations(session: &Path) -> Vec<CompleteGeneration> {
    generation_numbers(session)
        .into_iter()
        .filter_map(|generation| {
            let dir = generation_dir(session, generation);
            verify_generation(&dir).map(|manifest| CompleteGeneration {
                generation,
                dir,
                manifest,
            })
        })
        .collect()
}

/// The newest complete generation in `session`, if any — the rollback
/// target every load goes through.
pub fn find_newest_complete(session: &Path) -> Option<CompleteGeneration> {
    complete_generations(session).into_iter().next()
}

/// Delete everything but the newest `keep` complete generations
/// (incomplete generations — crashed attempts — are always garbage and
/// removed when older siblings go). Also reaps orphaned segment files
/// a crash between segment seal and manifest commit left in the
/// session directory (see [`crate::segment::reap_orphan_segments`]).
/// Returns the number of generation directories plus orphan files
/// removed; failures to remove are skipped, never fatal.
pub fn prune_generations(session: &Path, keep: usize) -> usize {
    let reaped = crate::segment::reap_orphan_segments(session);
    let keep_gens: Vec<u64> = complete_generations(session)
        .into_iter()
        .take(keep.max(1))
        .map(|g| g.generation)
        .collect();
    if keep_gens.is_empty() {
        return reaped; // nothing proven good: don't delete generations
    }
    let newest_kept = *keep_gens.iter().max().unwrap_or(&0);
    let mut pruned = 0;
    for generation in generation_numbers(session) {
        // Never touch attempts newer than the newest kept commit: an
        // in-flight writer may be mid-commit there.
        if generation > newest_kept || keep_gens.contains(&generation) {
            continue;
        }
        if std::fs::remove_dir_all(generation_dir(session, generation)).is_ok() {
            pruned += 1;
        }
    }
    pruned + reaped
}

/// Staged writer for one checkpoint generation: `begin` picks the next
/// generation number, `write_file` installs each artifact atomically,
/// and `commit` writes the manifest — the single operation that makes
/// the generation visible to recovery.
pub struct GenerationWriter<'a> {
    fs: &'a dyn DurableFs,
    gen_dir: PathBuf,
    generation: u64,
    files: Vec<ManifestEntry>,
}

impl<'a> GenerationWriter<'a> {
    /// Open the next generation of `session` (created if missing).
    pub fn begin(fs: &'a dyn DurableFs, session: &Path) -> io::Result<Self> {
        fs.create_dir_all(session)?;
        let generation = generation_numbers(session).first().copied().unwrap_or(0) + 1;
        let gen_dir = generation_dir(session, generation);
        fs.create_dir_all(&gen_dir)?;
        Ok(GenerationWriter {
            fs,
            gen_dir,
            generation,
            files: Vec::new(),
        })
    }

    /// The generation number being written.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The directory the generation's files land in.
    pub fn dir(&self) -> &Path {
        &self.gen_dir
    }

    /// Write one artifact into the generation and record it for the
    /// manifest. `name` may contain `/` separators (`node-0/store.jsonl`)
    /// — a distributed snapshot commits per-node subtrees under one
    /// manifest; intermediate directories are created through the same
    /// [`DurableFs`], so an injected crash can land on the mkdir too.
    pub fn write_file(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let path = self.gen_dir.join(name);
        if let Some(parent) = path.parent() {
            if parent != self.gen_dir {
                self.fs.create_dir_all(parent)?;
            }
        }
        self.fs.atomic_write(&path, bytes)?;
        self.files.push(ManifestEntry {
            name: name.to_string(),
            len: bytes.len() as u64,
            checksum: checksum(bytes),
        });
        Ok(())
    }

    /// Commit: write the manifest last. Until this returns `Ok`, the
    /// generation does not exist as far as recovery is concerned.
    pub fn commit(self) -> io::Result<u64> {
        let manifest = Manifest {
            magic: MANIFEST_MAGIC.to_string(),
            version: MANIFEST_VERSION,
            generation: self.generation,
            files: self.files,
        };
        let json = serde_json::to_string(&manifest).map_err(|e| io::Error::other(e.to_string()))?;
        self.fs
            .atomic_write(&self.gen_dir.join(MANIFEST_FILE), json.as_bytes())?;
        Ok(self.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_session(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bingo-durable-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn write_generation(session: &Path, files: &[(&str, &[u8])]) -> u64 {
        let fs = StdFs;
        let mut w = GenerationWriter::begin(&fs, session).unwrap();
        for (name, bytes) in files {
            w.write_file(name, bytes).unwrap();
        }
        w.commit().unwrap()
    }

    #[test]
    fn atomic_write_replaces_and_survives_error_paths() {
        let dir = temp_session("atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer");
        assert!(!tmp_path(&path).exists(), "temp file cleaned by rename");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generations_number_monotonically_and_verify() {
        let session = temp_session("gen");
        let g1 = write_generation(&session, &[("a", b"alpha"), ("b", b"beta")]);
        let g2 = write_generation(&session, &[("a", b"alpha-2")]);
        assert_eq!((g1, g2), (1, 2));
        let newest = find_newest_complete(&session).unwrap();
        assert_eq!(newest.generation, 2);
        assert_eq!(newest.manifest.files.len(), 1);
        assert_eq!(std::fs::read(newest.dir.join("a")).unwrap(), b"alpha-2");
        std::fs::remove_dir_all(&session).ok();
    }

    #[test]
    fn nested_file_names_commit_and_verify() {
        let session = temp_session("nested");
        let fs = StdFs;
        let mut w = GenerationWriter::begin(&fs, &session).unwrap();
        w.write_file("node-0/store.jsonl", b"alpha").unwrap();
        w.write_file("node-1/store.jsonl", b"beta").unwrap();
        w.write_file("coordinator.json", b"{}").unwrap();
        w.commit().unwrap();
        let newest = find_newest_complete(&session).unwrap();
        assert_eq!(newest.manifest.files.len(), 3);
        assert_eq!(
            std::fs::read(newest.dir.join("node-1/store.jsonl")).unwrap(),
            b"beta"
        );
        // Corrupting one node's file invalidates the whole generation.
        std::fs::write(newest.dir.join("node-0/store.jsonl"), b"XXXXX").unwrap();
        assert!(find_newest_complete(&session).is_none());
        std::fs::remove_dir_all(&session).ok();
    }

    #[test]
    fn uncommitted_generation_is_invisible() {
        let session = temp_session("uncommitted");
        write_generation(&session, &[("a", b"good")]);
        let fs = StdFs;
        let mut w = GenerationWriter::begin(&fs, &session).unwrap();
        w.write_file("a", b"half-done").unwrap();
        drop(w); // no commit: manifest never written
        let newest = find_newest_complete(&session).unwrap();
        assert_eq!(newest.generation, 1, "uncommitted gen-2 ignored");
        std::fs::remove_dir_all(&session).ok();
    }

    #[test]
    fn corrupt_files_invalidate_the_generation() {
        let session = temp_session("corrupt");
        write_generation(&session, &[("a", b"old")]);
        write_generation(&session, &[("a", b"new contents")]);
        let g2 = generation_dir(&session, 2);
        // Flip bytes without changing the length: checksum catches it.
        std::fs::write(g2.join("a"), b"new CONTENTS").unwrap();
        let newest = find_newest_complete(&session).unwrap();
        assert_eq!(newest.generation, 1, "rolled back past corrupt gen-2");
        // Truncation: length check catches it.
        write_generation(&session, &[("a", b"third time")]);
        let g3 = generation_dir(&session, 3);
        std::fs::write(g3.join("a"), b"thi").unwrap();
        assert_eq!(find_newest_complete(&session).unwrap().generation, 1);
        // Garbled manifest: generation never existed.
        write_generation(&session, &[("a", b"fourth")]);
        std::fs::write(
            generation_dir(&session, 4).join(MANIFEST_FILE),
            b"\xff\x00garbage",
        )
        .unwrap();
        assert_eq!(find_newest_complete(&session).unwrap().generation, 1);
        std::fs::remove_dir_all(&session).ok();
    }

    #[test]
    fn crash_fs_kills_at_byte_budget() {
        let session = temp_session("crashfs");
        // Budget sweep over a two-file generation: whatever the budget,
        // either the commit completes or no complete generation exists.
        let payload_a = b"0123456789".as_slice();
        let payload_b = b"abcdefghijklmnopqrst".as_slice();
        for budget in 0..200u64 {
            let session = session.join(format!("b{budget}"));
            let fs = CrashFs::with_budget(budget);
            let result = (|| -> io::Result<u64> {
                let mut w = GenerationWriter::begin(&fs, &session)?;
                w.write_file("a", payload_a)?;
                w.write_file("b", payload_b)?;
                w.commit()
            })();
            match result {
                Ok(generation) => {
                    assert!(!fs.crashed());
                    assert_eq!(
                        find_newest_complete(&session).unwrap().generation,
                        generation
                    );
                }
                Err(_) => {
                    assert!(fs.crashed());
                    assert!(
                        find_newest_complete(&session).is_none(),
                        "budget {budget}: a torn generation verified as complete"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&session).ok();
    }

    #[test]
    fn crash_fs_between_files_keeps_previous_generation() {
        let session = temp_session("crash-between");
        write_generation(&session, &[("a", b"good-a"), ("b", b"good-b")]);
        // Exactly enough budget for file "a": the crash lands between
        // file a and file b of generation 2.
        let fs = CrashFs::with_budget(6);
        let mut w = GenerationWriter::begin(&fs, &session).unwrap();
        w.write_file("a", b"new-a!").unwrap();
        assert!(w.write_file("b", b"new-b!").is_err());
        let newest = find_newest_complete(&session).unwrap();
        assert_eq!(newest.generation, 1);
        assert_eq!(std::fs::read(newest.dir.join("a")).unwrap(), b"good-a");
        std::fs::remove_dir_all(&session).ok();
    }

    #[test]
    fn pruning_keeps_newest_k_and_counts() {
        let session = temp_session("prune");
        for i in 0..5u8 {
            write_generation(&session, &[("a", &[i])]);
        }
        let pruned = prune_generations(&session, 2);
        assert_eq!(pruned, 3, "three old generations removed");
        let left = generation_numbers(&session);
        assert_eq!(left, vec![5, 4]);
        assert_eq!(prune_generations(&session, 2), 0, "idempotent");
        std::fs::remove_dir_all(&session).ok();
    }

    #[test]
    fn pruning_keep_zero_still_keeps_the_newest() {
        let session = temp_session("prune-zero");
        for i in 0..3u8 {
            write_generation(&session, &[("a", &[i])]);
        }
        // keep = 0 would leave no rollback target; it clamps to 1.
        assert_eq!(prune_generations(&session, 0), 2);
        assert_eq!(generation_numbers(&session), vec![3]);
        assert!(find_newest_complete(&session).is_some());
        std::fs::remove_dir_all(&session).ok();
    }

    #[test]
    fn pruning_with_fewer_generations_than_keep_removes_nothing() {
        let session = temp_session("prune-few");
        for i in 0..2u8 {
            write_generation(&session, &[("a", &[i])]);
        }
        assert_eq!(prune_generations(&session, 5), 0);
        assert_eq!(generation_numbers(&session), vec![2, 1]);
        std::fs::remove_dir_all(&session).ok();
    }

    #[test]
    fn pruning_spares_trailing_incomplete_but_removes_older_ones() {
        let session = temp_session("prune-incomplete");
        let fs = StdFs;
        // Generation 1: a crashed attempt (no manifest).
        {
            let mut w = GenerationWriter::begin(&fs, &session).unwrap();
            w.write_file("a", b"torn").unwrap();
        }
        // Generations 2 and 3: complete.
        write_generation(&session, &[("a", &[2])]);
        write_generation(&session, &[("a", &[3])]);
        // Generation 4: an in-flight attempt newer than any commit.
        {
            let mut w = GenerationWriter::begin(&fs, &session).unwrap();
            w.write_file("a", b"in-flight").unwrap();
        }
        // Keep 1 → generation 3 stays; the old complete generation 2 and
        // the old crashed generation 1 go; the in-flight generation 4 is
        // never touched (its writer may still be mid-commit).
        assert_eq!(prune_generations(&session, 1), 2);
        assert_eq!(generation_numbers(&session), vec![4, 3]);
        assert_eq!(
            find_newest_complete(&session).map(|g| g.generation),
            Some(3)
        );
        std::fs::remove_dir_all(&session).ok();
    }

    #[test]
    fn pruning_reaps_orphan_segment_files() {
        let session = temp_session("prune-orphans");
        for i in 0..3u8 {
            write_generation(&session, &[("a", &[i])]);
        }
        // Debris of a crash between segment seal and manifest commit:
        // no SEGMENTS.json references these, so both are orphans.
        std::fs::write(session.join("seg-000007.jsonl"), b"orphan").unwrap();
        std::fs::write(session.join("seg-000008.jsonl.tmp"), b"torn").unwrap();
        assert_eq!(
            prune_generations(&session, 2),
            3,
            "one old generation + two orphan segment files"
        );
        assert_eq!(generation_numbers(&session), vec![3, 2]);
        assert!(!session.join("seg-000007.jsonl").exists());
        assert!(!session.join("seg-000008.jsonl.tmp").exists());
        std::fs::remove_dir_all(&session).ok();
    }

    #[test]
    fn pruning_never_deletes_without_a_good_generation() {
        let session = temp_session("prune-empty");
        let fs = StdFs;
        let mut w = GenerationWriter::begin(&fs, &session).unwrap();
        w.write_file("a", b"torn").unwrap();
        drop(w);
        assert_eq!(prune_generations(&session, 2), 0);
        assert_eq!(generation_numbers(&session), vec![1]);
        std::fs::remove_dir_all(&session).ok();
    }
}
