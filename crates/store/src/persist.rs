//! Snapshot persistence for the crawl database.
//!
//! The crawl result "may be a database with several million documents"
//! that outlives the crawl process (the user inspects it the next
//! morning, Section 1.2). Snapshots are newline-delimited JSON: one
//! header line, then one line per document row, then one line per link
//! row, then one per host row — streamable in both directions, no
//! whole-database buffer.

use crate::tables::{DocumentRow, HostRow, LinkRow};
use crate::{DocumentStore, StoreError};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Snapshot header with section counts, enabling validation on load.
#[derive(Debug, Serialize, Deserialize, PartialEq, Eq)]
struct SnapshotHeader {
    magic: String,
    version: u32,
    documents: usize,
    links: usize,
    hosts: usize,
}

const MAGIC: &str = "bingo-snapshot";
const VERSION: u32 = 1;

/// Write a snapshot of the store to `w`.
///
/// Byte-identical for an in-memory store and a segmented store holding
/// the same rows: both emit documents sorted by id, links in insertion
/// order, hosts sorted by id — so checkpoints and equivalence tests
/// can compare the two backends literally.
pub fn write_snapshot<W: Write>(store: &DocumentStore, w: W) -> Result<(), StoreError> {
    if let Some(spine) = &store.spine {
        return write_snapshot_segmented(&spine.read(), w);
    }
    let mut w = BufWriter::new(w);
    let inner = store.inner.read();
    let header = SnapshotHeader {
        magic: MAGIC.to_string(),
        version: VERSION,
        documents: inner.documents.len(),
        links: inner.links.len(),
        hosts: inner.hosts.len(),
    };
    let io_err = |e: std::io::Error| StoreError::Persist(e.to_string());
    let ser_err = |e: serde_json::Error| StoreError::Persist(e.to_string());

    serde_json::to_writer(&mut w, &header).map_err(ser_err)?;
    w.write_all(b"\n").map_err(io_err)?;
    // Deterministic order: sort by id so snapshots are comparable.
    let mut ids: Vec<_> = inner.documents.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        serde_json::to_writer(&mut w, &inner.documents[&id]).map_err(ser_err)?;
        w.write_all(b"\n").map_err(io_err)?;
    }
    for link in &inner.links {
        serde_json::to_writer(&mut w, link).map_err(ser_err)?;
        w.write_all(b"\n").map_err(io_err)?;
    }
    let mut host_ids: Vec<_> = inner.hosts.keys().copied().collect();
    host_ids.sort_unstable();
    for id in host_ids {
        serde_json::to_writer(&mut w, &inner.hosts[&id]).map_err(ser_err)?;
        w.write_all(b"\n").map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Segmented branch of [`write_snapshot`]: materialize the merged
/// (workspace + sealed, overrides applied) tables and emit the same
/// byte stream the in-memory path would.
fn write_snapshot_segmented<W: Write>(
    spine: &crate::segment::Spine,
    w: W,
) -> Result<(), StoreError> {
    let mut w = BufWriter::new(w);
    let io_err = |e: std::io::Error| StoreError::Persist(e.to_string());
    let ser_err = |e: serde_json::Error| StoreError::Persist(e.to_string());
    let header = SnapshotHeader {
        magic: MAGIC.to_string(),
        version: VERSION,
        documents: spine.document_count(),
        links: spine.link_count(),
        hosts: spine.host_count(),
    };
    serde_json::to_writer(&mut w, &header).map_err(ser_err)?;
    w.write_all(b"\n").map_err(io_err)?;
    let mut docs = spine.all_documents();
    docs.sort_unstable_by_key(|d| d.id);
    for row in &docs {
        serde_json::to_writer(&mut w, row).map_err(ser_err)?;
        w.write_all(b"\n").map_err(io_err)?;
    }
    let mut link_err = None;
    spine.for_each_link(|link| {
        if link_err.is_none() {
            link_err = serde_json::to_writer(&mut w, link)
                .map_err(ser_err)
                .and_then(|()| w.write_all(b"\n").map_err(io_err))
                .err();
        }
    })?;
    if let Some(e) = link_err {
        return Err(e);
    }
    for host in spine.hosts_sorted() {
        serde_json::to_writer(&mut w, &host).map_err(ser_err)?;
        w.write_all(b"\n").map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Read a snapshot into a fresh store.
pub fn read_snapshot<R: Read>(r: R) -> Result<DocumentStore, StoreError> {
    let mut lines = BufReader::new(r).lines();
    let perr = |m: String| StoreError::Persist(m);
    let header_line = lines
        .next()
        .ok_or_else(|| perr("empty snapshot".into()))?
        .map_err(|e| perr(e.to_string()))?;
    let header: SnapshotHeader =
        serde_json::from_str(&header_line).map_err(|e| perr(e.to_string()))?;
    if header.magic != MAGIC {
        return Err(perr(format!("bad magic {:?}", header.magic)));
    }
    if header.version != VERSION {
        return Err(perr(format!("unsupported version {}", header.version)));
    }

    let store = DocumentStore::new();
    let mut next = || -> Result<String, StoreError> {
        lines
            .next()
            .ok_or_else(|| perr("truncated snapshot".into()))?
            .map_err(|e| perr(e.to_string()))
    };
    for _ in 0..header.documents {
        let row: DocumentRow = serde_json::from_str(&next()?).map_err(|e| perr(e.to_string()))?;
        store
            .insert_document(row)
            .map_err(|e| perr(e.to_string()))?;
    }
    let mut links = Vec::with_capacity(header.links);
    for _ in 0..header.links {
        let row: LinkRow = serde_json::from_str(&next()?).map_err(|e| perr(e.to_string()))?;
        links.push(row);
    }
    store.insert_links(links);
    for _ in 0..header.hosts {
        let row: HostRow = serde_json::from_str(&next()?).map_err(|e| perr(e.to_string()))?;
        store.upsert_host(row);
    }
    Ok(store)
}

/// Save a snapshot to a file path. The write is atomic (temp file +
/// fsync + rename): a crash — or a serialization error — mid-save
/// leaves any previous snapshot at `path` untouched instead of
/// truncating it first.
pub fn save<P: AsRef<Path>>(store: &DocumentStore, path: P) -> Result<(), StoreError> {
    let mut buf = Vec::new();
    write_snapshot(store, &mut buf)?;
    crate::durable::atomic_write(path.as_ref(), &buf)
        .map_err(|e| StoreError::Persist(e.to_string()))
}

/// Load a snapshot from a file path.
pub fn load<P: AsRef<Path>>(path: P) -> Result<DocumentStore, StoreError> {
    let f = std::fs::File::open(path).map_err(|e| StoreError::Persist(e.to_string()))?;
    read_snapshot(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::HostState;
    use bingo_textproc::MimeType;

    fn populated() -> DocumentStore {
        let s = DocumentStore::new();
        for i in 0..10u64 {
            s.insert_document(DocumentRow {
                id: i,
                url: format!("http://h{}/p{i}", i % 3),
                host: (i % 3) as u32,
                mime: MimeType::Html,
                depth: i as u32,
                title: format!("t{i}"),
                topic: if i % 2 == 0 { Some(1) } else { None },
                confidence: i as f32 / 10.0,
                term_freqs: vec![(i as u32, 1)],
                size: 10,
                fetched_at: i,
            })
            .unwrap();
        }
        s.insert_link(LinkRow {
            from: 0,
            to: 1,
            to_url: "http://h1/p1".into(),
        });
        s.upsert_host(HostRow {
            id: 0,
            name: "h0".into(),
            state: HostState::Slow,
            failures: 2,
        });
        s
    }

    #[test]
    fn round_trip() {
        let s = populated();
        let mut buf = Vec::new();
        write_snapshot(&s, &mut buf).unwrap();
        let loaded = read_snapshot(&buf[..]).unwrap();
        assert_eq!(loaded.document_count(), 10);
        assert_eq!(loaded.link_count(), 1);
        assert_eq!(loaded.host_count(), 1);
        assert_eq!(loaded.document(3).unwrap().title, "t3");
        assert_eq!(loaded.topic_documents(1).len(), 5);
        assert_eq!(loaded.host(0).unwrap().state, HostState::Slow);
        use bingo_graph::LinkSource;
        assert_eq!(loaded.successors(0), vec![1]);
    }

    #[test]
    fn deterministic_output() {
        let s = populated();
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_snapshot(&s, &mut a).unwrap();
        write_snapshot(&s, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_snapshot(&b"not json\n"[..]).is_err());
        assert!(read_snapshot(&b""[..]).is_err());
        let bad_magic = r#"{"magic":"nope","version":1,"documents":0,"links":0,"hosts":0}"#;
        assert!(read_snapshot(format!("{bad_magic}\n").as_bytes()).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let s = populated();
        let mut buf = Vec::new();
        write_snapshot(&s, &mut buf).unwrap();
        let cut = buf.len() / 2;
        let err = read_snapshot(&buf[..cut]).unwrap_err();
        assert!(matches!(err, StoreError::Persist(_)));
    }

    #[test]
    fn file_round_trip() {
        let s = populated();
        let dir = std::env::temp_dir().join("bingo-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.jsonl");
        save(&s, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.document_count(), s.document_count());
        std::fs::remove_file(path).ok();
    }
}
