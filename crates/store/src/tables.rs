//! The flat relations of the crawl database (Section 4.1: "a schema with
//! 24 flat relations" — here the three that carry the experiments'
//! workload: documents, links, hosts).

use bingo_graph::{HostId, PageId};
use bingo_textproc::MimeType;
use serde::{Deserialize, Serialize};

/// One crawled, analyzed, classified document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DocumentRow {
    /// Stable page id (shared with the web graph).
    pub id: PageId,
    /// Canonical URL the document was fetched from.
    pub url: String,
    /// Host the document lives on.
    pub host: HostId,
    /// MIME type as served.
    pub mime: MimeType,
    /// Crawl depth at which the page was reached.
    pub depth: u32,
    /// Document title.
    pub title: String,
    /// Topic node the classifier assigned (None = unclassified/OTHERS).
    pub topic: Option<u32>,
    /// Classification confidence (signed hyperplane distance).
    pub confidence: f32,
    /// Bag-of-words: `(feature index, frequency)`, sorted by index.
    pub term_freqs: Vec<(u32, u32)>,
    /// Size in bytes of the fetched payload.
    pub size: usize,
    /// Virtual timestamp (ms) of the fetch.
    pub fetched_at: u64,
}

/// One hyperlink row (log-style: duplicates allowed; the store maintains
/// a deduplicated edge index on top).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkRow {
    /// Source page.
    pub from: PageId,
    /// Target page id (deterministically derived from the URL).
    pub to: PageId,
    /// Raw target URL, kept for redirect bookkeeping and debugging.
    pub to_url: String,
}

/// Crawler-visible host health (Section 4.2: hosts are tagged "slow"
/// after failures and "bad" — excluded — after repeated failures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum HostState {
    /// Responding normally.
    #[default]
    Good,
    /// Timed out or errored at least once; retries restricted.
    Slow,
    /// Exceeded the retry budget; excluded for the rest of the crawl.
    Bad,
}

/// Host metadata row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostRow {
    /// Host id.
    pub id: HostId,
    /// Hostname.
    pub name: String,
    /// Crawler health tag.
    pub state: HostState,
    /// Failures observed so far.
    pub failures: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_row_roundtrips_through_serde() {
        let row = DocumentRow {
            id: 7,
            url: "http://db.example/aries".into(),
            host: 3,
            mime: MimeType::Pdf,
            depth: 2,
            title: "ARIES".into(),
            topic: Some(1),
            confidence: 0.75,
            term_freqs: vec![(0, 3), (5, 1)],
            size: 1234,
            fetched_at: 99,
        };
        let json = serde_json::to_string(&row).unwrap();
        let back: DocumentRow = serde_json::from_str(&json).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn host_state_default_is_good() {
        assert_eq!(HostState::default(), HostState::Good);
    }
}
