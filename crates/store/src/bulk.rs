//! Batched bulk loading (Section 4.1).
//!
//! "Each thread batches the storing of new documents and avoids SQL
//! insert commands by first collecting a certain number of documents in
//! workspaces and then invoking the database system's bulk loader for
//! moving the documents into the database. This way the crawler can
//! sustain a throughput of up to ten thousand documents per minute."
//!
//! A [`BulkLoader`] is a per-thread workspace: documents and links
//! accumulate locally (no lock taken) and are flushed to the shared
//! [`DocumentStore`] in one batch once the workspace fills up. The
//! `store_throughput` bench compares this against row-at-a-time inserts.

use crate::tables::{DocumentRow, LinkRow};
use crate::{DocumentStore, StoreError};
use bingo_obs::{Counter, Event, EventLog, Registry};
use std::sync::Arc;

/// Default workspace capacity before an automatic flush.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// Observability handles for bulk-load workspaces: flush errors must
/// never vanish silently, in particular not from the final flush a
/// [`Drop`] performs at crawl shutdown.
#[derive(Clone)]
pub struct BulkLoaderObs {
    /// Errors returned by batch flushes (duplicate keys etc.).
    pub flush_errors: Counter,
    /// Errors still unclaimed (never drained via
    /// [`BulkLoader::take_errors`]) when a workspace was dropped.
    pub dropped_errors: Counter,
    /// Event sink for the drop-time error report.
    pub events: Arc<EventLog>,
}

impl BulkLoaderObs {
    /// Register the bulk-load metrics in `registry`, reporting drop-time
    /// errors to `events`.
    pub fn new(registry: &Registry, events: Arc<EventLog>) -> Self {
        BulkLoaderObs {
            flush_errors: registry.counter("store.bulk.flush_errors"),
            dropped_errors: registry.counter("store.bulk.dropped_errors"),
            events,
        }
    }
}

/// A per-thread write workspace for the document store.
///
/// Not `Sync` by design: each crawler thread owns one, mirroring the
/// paper's "separate database connections associated with dedicated
/// database server processes".
pub struct BulkLoader {
    store: DocumentStore,
    batch_size: usize,
    documents: Vec<DocumentRow>,
    links: Vec<LinkRow>,
    errors: Vec<StoreError>,
    flushed_documents: u64,
    obs: Option<BulkLoaderObs>,
}

impl BulkLoader {
    /// Workspace over `store` with the default batch size.
    pub fn new(store: DocumentStore) -> Self {
        Self::with_batch_size(store, DEFAULT_BATCH_SIZE)
    }

    /// Workspace with an explicit batch size (≥ 1).
    pub fn with_batch_size(store: DocumentStore, batch_size: usize) -> Self {
        BulkLoader {
            store,
            batch_size: batch_size.max(1),
            documents: Vec::with_capacity(batch_size.max(1)),
            links: Vec::new(),
            errors: Vec::new(),
            flushed_documents: 0,
            obs: None,
        }
    }

    /// Wire observability handles into this workspace (flush-error
    /// counters and the drop-time event).
    pub fn with_observer(mut self, obs: BulkLoaderObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Queue one document; flushes automatically when the workspace is
    /// full.
    pub fn add_document(&mut self, row: DocumentRow) {
        self.documents.push(row);
        if self.documents.len() >= self.batch_size {
            self.flush();
        }
    }

    /// Queue one link row (flushed together with documents).
    pub fn add_link(&mut self, link: LinkRow) {
        self.links.push(link);
    }

    /// Documents currently buffered (not yet visible in the store).
    pub fn pending(&self) -> usize {
        self.documents.len()
    }

    /// Total documents flushed through this workspace.
    pub fn flushed_documents(&self) -> u64 {
        self.flushed_documents
    }

    /// Push all buffered rows to the store in (at most) two lock
    /// acquisitions. On a segmented store this is also the seal point:
    /// once the store's write workspace outgrows its threshold, the
    /// flush seals it into an immutable on-disk segment (the bulk
    /// loader is the paper's unit of "acked" work, so durability
    /// advances batch-aligned). A seal failure surfaces like any other
    /// flush error — rows stay readable in the workspace and the seal
    /// retries at the next flush.
    pub fn flush(&mut self) {
        if !self.documents.is_empty() {
            let batch = std::mem::take(&mut self.documents);
            self.flushed_documents += batch.len() as u64;
            let errs = self.store.insert_documents(batch);
            self.flushed_documents -= errs.len() as u64;
            if let Some(obs) = &self.obs {
                obs.flush_errors.add(errs.len() as u64);
            }
            self.errors.extend(errs);
        }
        if !self.links.is_empty() {
            self.store.insert_links(std::mem::take(&mut self.links));
        }
        if let Err(e) = self.store.commit_sealed() {
            if let Some(obs) = &self.obs {
                obs.flush_errors.add(1);
            }
            self.errors.push(e);
        }
    }

    /// Drain errors collected from flushed batches (duplicate keys etc.).
    pub fn take_errors(&mut self) -> Vec<StoreError> {
        std::mem::take(&mut self.errors)
    }

    /// Drop all buffered rows without flushing them. Used after a
    /// worker panic: rows staged by the failed batch must not leak into
    /// the store when the batch is re-driven from scratch. Returns the
    /// number of discarded document rows.
    pub fn discard_pending(&mut self) -> usize {
        let dropped = self.documents.len();
        self.documents.clear();
        self.links.clear();
        dropped
    }
}

impl Drop for BulkLoader {
    /// A dropped workspace flushes its remainder so no documents are lost
    /// at crawl shutdown. Errors nobody drained — including errors from
    /// this final flush — are reported through the observer (counter +
    /// event) or, unobserved, to stderr; they never vanish silently.
    fn drop(&mut self) {
        self.flush();
        if self.errors.is_empty() {
            return;
        }
        let count = self.errors.len();
        let first = self.errors[0].to_string();
        match &self.obs {
            Some(obs) => {
                obs.dropped_errors.add(count as u64);
                obs.events.emit(
                    Event::at(0, "store.bulk.dropped_errors")
                        .with("count", count)
                        .with("first", &first),
                );
            }
            None => eprintln!(
                "bulk loader dropped with {count} unclaimed flush errors (first: {first})"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_textproc::MimeType;

    fn doc(id: u64) -> DocumentRow {
        DocumentRow {
            id,
            url: format!("http://h{}/p{id}", id % 10),
            host: (id % 10) as u32,
            mime: MimeType::Html,
            depth: 0,
            title: String::new(),
            topic: None,
            confidence: 0.0,
            term_freqs: vec![],
            size: 10,
            fetched_at: 0,
        }
    }

    #[test]
    fn auto_flush_at_batch_size() {
        let store = DocumentStore::new();
        let mut loader = BulkLoader::with_batch_size(store.clone(), 4);
        for i in 0..3 {
            loader.add_document(doc(i));
        }
        assert_eq!(store.document_count(), 0, "below batch size: buffered");
        assert_eq!(loader.pending(), 3);
        loader.add_document(doc(3));
        assert_eq!(store.document_count(), 4, "batch size reached: flushed");
        assert_eq!(loader.pending(), 0);
        assert_eq!(loader.flushed_documents(), 4);
    }

    #[test]
    fn drop_flushes_remainder() {
        let store = DocumentStore::new();
        {
            let mut loader = BulkLoader::with_batch_size(store.clone(), 100);
            loader.add_document(doc(1));
            loader.add_link(LinkRow {
                from: 1,
                to: 2,
                to_url: "x".into(),
            });
        }
        assert_eq!(store.document_count(), 1);
        assert_eq!(store.link_count(), 1);
    }

    #[test]
    fn duplicate_errors_surface_and_do_not_count() {
        let store = DocumentStore::new();
        let mut loader = BulkLoader::with_batch_size(store.clone(), 2);
        loader.add_document(doc(1));
        loader.add_document(doc(1));
        assert_eq!(store.document_count(), 1);
        assert_eq!(loader.flushed_documents(), 1);
        let errs = loader.take_errors();
        assert_eq!(errs, vec![StoreError::DuplicateKey(1)]);
        assert!(loader.take_errors().is_empty());
    }

    #[test]
    fn drop_time_errors_hit_the_observer() {
        let registry = bingo_obs::Registry::new();
        let events = Arc::new(bingo_obs::EventLog::default());
        let obs = BulkLoaderObs::new(&registry, events.clone());
        let store = DocumentStore::new();
        store.insert_document(doc(7)).unwrap();
        {
            let mut loader =
                BulkLoader::with_batch_size(store.clone(), 100).with_observer(obs.clone());
            // Flushed at drop time, colliding with the pre-inserted row.
            loader.add_document(doc(7));
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counters["store.bulk.flush_errors"], 1);
        assert_eq!(snap.counters["store.bulk.dropped_errors"], 1);
        let evs = events.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, "store.bulk.dropped_errors");
    }

    #[test]
    fn drained_errors_are_not_reported_as_dropped() {
        let registry = bingo_obs::Registry::new();
        let events = Arc::new(bingo_obs::EventLog::default());
        let obs = BulkLoaderObs::new(&registry, events.clone());
        let store = DocumentStore::new();
        let mut loader = BulkLoader::with_batch_size(store, 1).with_observer(obs);
        loader.add_document(doc(3));
        loader.add_document(doc(3));
        assert_eq!(loader.take_errors().len(), 1);
        drop(loader);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["store.bulk.flush_errors"], 1);
        assert_eq!(snap.counters["store.bulk.dropped_errors"], 0);
        assert!(events.events().is_empty());
    }

    #[test]
    fn discard_pending_drops_buffered_rows_only() {
        let store = DocumentStore::new();
        let mut loader = BulkLoader::with_batch_size(store.clone(), 100);
        loader.add_document(doc(1));
        loader.flush();
        loader.add_document(doc(2));
        loader.add_link(LinkRow {
            from: 2,
            to: 3,
            to_url: "x".into(),
        });
        assert_eq!(loader.discard_pending(), 1);
        drop(loader); // drop-time flush has nothing left to push
        assert_eq!(store.document_count(), 1, "only the flushed row stored");
        assert_eq!(store.link_count(), 0, "staged link discarded");
    }

    #[test]
    fn multi_threaded_loaders() {
        let store = DocumentStore::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let store = store.clone();
                scope.spawn(move || {
                    let mut loader = BulkLoader::with_batch_size(store, 32);
                    for i in 0..500u64 {
                        loader.add_document(doc(t * 10_000 + i));
                    }
                });
            }
        });
        assert_eq!(store.document_count(), 2000);
    }
}
