//! Append-only on-disk segments behind an in-memory write workspace.
//!
//! The paper's crawl result "may be a database with several million
//! documents" (Section 1.2) — far more than the flat in-memory tables
//! of [`crate::DocumentStore`] can hold. This module gives the store a
//! BUbiNG-style memory-bounded shape: hot writes land in a small
//! in-memory **workspace**, and [`BulkLoader::flush`](crate::BulkLoader)
//! periodically **seals** the workspace into an immutable on-disk
//! **segment** file. Reads merge the workspace with lazy segment reads,
//! so resident memory holds only per-row *locators* (segment + byte
//! offset), never the million document bodies.
//!
//! On-disk layout of a segmented store directory:
//!
//! ```text
//! store-dir/
//!   SEGMENTS.json      <- manifest: the commit record (written last)
//!   seg-000000.jsonl   <- header line, then doc rows, then link rows
//!   seg-000001.jsonl
//!   ...
//! ```
//!
//! Crash consistency reuses the [`crate::durable`] discipline:
//!
//! * Segment files and the manifest are installed with
//!   [`DurableFs::atomic_write`] — a torn write leaves at most a
//!   sibling `.tmp` prefix, never a half-written segment.
//! * The manifest is rewritten *after* the segment file: a crash
//!   between the two leaves an **orphan** segment file that the
//!   manifest never references. Recovery ignores it and
//!   [`reap_orphan_segments`] (also run by
//!   [`crate::durable::prune_generations`]) deletes it; the workspace
//!   rows it contained were never acked as sealed, so nothing is lost.
//! * On open, every referenced segment is verified against its
//!   recorded length and checksum before any locator is trusted.
//!
//! Segment readers are lazy ("mmap-or-read" resolved to the portable
//! read path): a point lookup seeks to the row's recorded offset and
//! reads exactly one line; scans stream one segment at a time.
//!
//! Semantics deliberately mirror the in-memory store so the two are
//! interchangeable (property-tested in `tests/proptests.rs`), with two
//! documented deviations: the URL index is a 64-bit-hash index verified
//! on read (a hash collision can hide an older row — vanishingly rare
//! and fail-safe), and after a *reopen* the per-topic id lists reflect
//! insertion order with topic overrides applied in place, not the
//! original reassignment order (set-equal, order may differ).

use crate::durable::{checksum, DurableFs};
use crate::spill::Bloom;
use crate::tables::{DocumentRow, HostRow, LinkRow};
use crate::StoreError;
use bingo_graph::{HostId, PageId};
use bingo_obs::{Counter, Registry};
use bingo_textproc::fxhash::{self, FxHashMap};
use serde::{Deserialize, Serialize};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// File name of the segment manifest (the commit record).
pub const SEGMENTS_FILE: &str = "SEGMENTS.json";
/// Format marker of the segment manifest.
pub const SEGMENTS_MAGIC: &str = "bingo-segments";
/// Format marker of individual segment files.
pub const SEGMENT_MAGIC: &str = "bingo-segment";
/// Current segment format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Default workspace size (documents) that triggers a seal of the
/// workspace into a new on-disk segment.
pub const DEFAULT_SEAL_EVERY: usize = 4096;
/// Sparse-index sampling interval: one resident `(id, offset)` pair per
/// this many sealed rows; a point lookup reads at most one such block.
pub const SPARSE_SAMPLE_EVERY: usize = 64;

/// Behavior of a segmented store beyond the seal threshold.
#[derive(Debug, Clone)]
pub struct SegmentStoreConfig {
    /// Workspace size (documents) that triggers a seal
    /// ([`DEFAULT_SEAL_EVERY`]).
    pub seal_every: usize,
    /// Sparse resident index. The dense default keeps one locator per
    /// sealed row (exact, byte-identical to the historical layout);
    /// sparse mode keeps only per-segment fence keys plus every
    /// [`SPARSE_SAMPLE_EVERY`]th `(id, offset)` sample, sorts each
    /// segment's rows by id, and answers point reads with one block
    /// read. Sparse stores drop the resident URL-hash and topic
    /// indexes too: [`crate::DocumentStore::document_by_url`] and
    /// [`crate::DocumentStore::topic_documents`] become cold scans
    /// (set-equal, order may differ — same caveat as a dense reopen).
    pub sparse: bool,
    /// Merge adjacent runs of small sealed segments after a seal;
    /// `None` never compacts.
    pub compaction: Option<CompactionConfig>,
}

impl Default for SegmentStoreConfig {
    fn default() -> Self {
        SegmentStoreConfig {
            seal_every: DEFAULT_SEAL_EVERY,
            sparse: false,
            compaction: None,
        }
    }
}

/// When and how sealed segments are merged. Compaction bounds the
/// segment count (and with it open-time verification cost and
/// per-segment resident index overhead) on long crawls whose seals are
/// small, and *materializes* topic overrides into the rewritten rows so
/// the resident override map shrinks back.
#[derive(Debug, Clone, Copy)]
pub struct CompactionConfig {
    /// Segments with fewer document rows than this are merge
    /// candidates.
    pub small_docs: usize,
    /// Minimum adjacent run of candidates that triggers a merge (at
    /// most one run is merged per seal).
    pub min_run: usize,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig {
            small_docs: DEFAULT_SEAL_EVERY,
            min_run: 4,
        }
    }
}

/// Deterministic compaction counters (all zero when compaction is off).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Merge runs performed.
    pub runs: u64,
    /// Source segments consumed by merges.
    pub segments_merged: u64,
    /// Document rows rewritten.
    pub rows_rewritten: u64,
    /// Topic overrides materialized into rewritten rows (and dropped
    /// from the resident override map).
    pub overrides_materialized: u64,
    /// Bytes written into merged segments.
    pub bytes_written: u64,
    /// Replaced segment files reaped after commit.
    pub orphans_reaped: u64,
}

/// Metric handles for segment compaction. The spine itself is obs-free;
/// callers poll [`CompactionStats`] (via
/// [`crate::DocumentStore::compaction_stats`]) and fold deltas in here,
/// so counters stay monotonic across polls.
#[derive(Clone)]
pub struct CompactionTelemetry {
    /// Merge runs performed.
    pub runs: Counter,
    /// Source segments consumed by merges.
    pub segments_merged: Counter,
    /// Document rows rewritten.
    pub rows_rewritten: Counter,
    /// Topic overrides materialized into rewritten rows.
    pub overrides_materialized: Counter,
    /// Bytes written into merged segments.
    pub bytes_written: Counter,
    /// Replaced segment files reaped after commit.
    pub orphans_reaped: Counter,
}

impl CompactionTelemetry {
    /// Register the `store.compaction.*` handles in `registry`.
    pub fn new(registry: &Registry) -> Self {
        CompactionTelemetry {
            runs: registry.counter("store.compaction.runs"),
            segments_merged: registry.counter("store.compaction.segments_merged"),
            rows_rewritten: registry.counter("store.compaction.rows_rewritten"),
            overrides_materialized: registry.counter("store.compaction.overrides_materialized"),
            bytes_written: registry.counter("store.compaction.bytes_written"),
            orphans_reaped: registry.counter("store.compaction.orphans_reaped"),
        }
    }

    /// Fold the store's current counters in, advancing by the delta
    /// since `last` (which is updated to `now`).
    pub fn record(&self, now: &CompactionStats, last: &mut CompactionStats) {
        self.runs.add(now.runs.saturating_sub(last.runs));
        self.segments_merged
            .add(now.segments_merged.saturating_sub(last.segments_merged));
        self.rows_rewritten
            .add(now.rows_rewritten.saturating_sub(last.rows_rewritten));
        self.overrides_materialized.add(
            now.overrides_materialized
                .saturating_sub(last.overrides_materialized),
        );
        self.bytes_written
            .add(now.bytes_written.saturating_sub(last.bytes_written));
        self.orphans_reaped
            .add(now.orphans_reaped.saturating_sub(last.orphans_reaped));
        *last = *now;
    }
}

fn url_hash(url: &str) -> u64 {
    fxhash::hash_one(url)
}

fn pe<E: std::fmt::Display>(e: E) -> StoreError {
    StoreError::Persist(e.to_string())
}

/// Parse one JSONL line (the vendored serde_json has no `from_slice`).
fn from_line<T: serde::Deserialize>(line: &[u8]) -> Result<T, StoreError> {
    serde_json::from_str(std::str::from_utf8(line).map_err(pe)?).map_err(pe)
}

/// One sealed segment recorded in the manifest.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Segment file name relative to the store directory.
    pub name: String,
    /// Document rows in the segment.
    pub docs: u64,
    /// Link rows in the segment.
    pub links: u64,
    /// Exact byte length of the file.
    pub len: u64,
    /// [`checksum`] of the file bytes.
    pub checksum: u64,
}

/// The store-level commit record: which segments exist, plus the small
/// mutable state (topic overrides, host table) that rides along.
///
/// Rewritten atomically at every seal. Topic overrides and host upserts
/// that happen *after* the last seal live only in memory until the next
/// seal — durable via [`crate::persist`] snapshots in the meantime.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentManifest {
    /// Format marker ([`SEGMENTS_MAGIC`]).
    pub magic: String,
    /// Format version ([`SEGMENT_VERSION`]).
    pub version: u32,
    /// Number the next sealed segment will take.
    pub next_seg: u64,
    /// Sealed segments in seal order.
    pub segments: Vec<SegmentEntry>,
    /// Re-classification overrides applied to sealed rows:
    /// `(id, topic, confidence)`, sorted by id.
    pub overrides: Vec<(PageId, Option<u32>, f32)>,
    /// Host table, sorted by id.
    pub hosts: Vec<HostRow>,
}

impl SegmentManifest {
    fn empty() -> Self {
        SegmentManifest {
            magic: SEGMENTS_MAGIC.to_string(),
            version: SEGMENT_VERSION,
            next_seg: 0,
            segments: Vec::new(),
            overrides: Vec::new(),
            hosts: Vec::new(),
        }
    }
}

/// First line of every segment file.
#[derive(Debug, Serialize, Deserialize)]
struct SegmentHeader {
    magic: String,
    version: u32,
    seg: u64,
    docs: u64,
    links: u64,
}

/// Locator of one sealed document row: which segment, and where in it.
/// This — not the row — is what stays resident per document (dense
/// index mode only).
#[derive(Debug, Clone, Copy)]
struct SegLoc {
    seg: u32,
    offset: u64,
    len: u32,
}

/// Sparse resident index of one sealed segment (rows sorted by id):
/// fence keys plus every [`SPARSE_SAMPLE_EVERY`]th row's `(id, byte
/// offset)`. A point lookup binary-searches the samples and reads one
/// block — O(rows / SAMPLE) resident entries instead of O(rows).
#[derive(Debug, Clone)]
struct SparseSegIndex {
    min_id: PageId,
    max_id: PageId,
    /// `(id, byte offset)` of every Nth row; the first row is always
    /// sampled, so `partition_point` never lands before a block start.
    samples: Vec<(PageId, u64)>,
    /// End offset of the document-row region (scan upper bound of the
    /// last block).
    docs_end: u64,
}

impl SparseSegIndex {
    /// Build from each sealed row's `(id, offset, len)`, in file order
    /// (= ascending id). A docless segment (links only) gets an
    /// always-miss fence.
    fn from_rows(rows: &[(PageId, u64, u32)]) -> Self {
        let Some(&(last_id, last_off, last_len)) = rows.last() else {
            return SparseSegIndex {
                min_id: 1,
                max_id: 0,
                samples: Vec::new(),
                docs_end: 0,
            };
        };
        SparseSegIndex {
            min_id: rows[0].0,
            max_id: last_id,
            samples: rows
                .iter()
                .step_by(SPARSE_SAMPLE_EVERY)
                .map(|&(id, off, _)| (id, off))
                .collect(),
            docs_end: last_off + last_len as u64 + 1,
        }
    }
}

/// A segment file split into lines with their byte offsets.
struct ParsedSegment<'a> {
    header: SegmentHeader,
    /// `(absolute byte offset, line bytes)` for each document row.
    doc_lines: Vec<(u64, &'a [u8])>,
    /// Line bytes for each link row.
    link_lines: Vec<&'a [u8]>,
}

fn parse_segment(bytes: &[u8]) -> Result<ParsedSegment<'_>, StoreError> {
    let mut lines: Vec<(u64, &[u8])> = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let end = bytes[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| pos + i)
            .unwrap_or(bytes.len());
        lines.push((pos as u64, &bytes[pos..end]));
        pos = end + 1;
    }
    let Some(&(_, header_line)) = lines.first() else {
        return Err(pe("empty segment file"));
    };
    let header: SegmentHeader = from_line(header_line)?;
    if header.magic != SEGMENT_MAGIC || header.version != SEGMENT_VERSION {
        return Err(pe(format!("bad segment header magic/version: {header:?}")));
    }
    let expect = 1 + header.docs as usize + header.links as usize;
    if lines.len() != expect {
        return Err(pe(format!(
            "segment line count {} != header {}",
            lines.len(),
            expect
        )));
    }
    let doc_lines = lines[1..1 + header.docs as usize].to_vec();
    let link_lines = lines[1 + header.docs as usize..]
        .iter()
        .map(|&(_, l)| l)
        .collect();
    Ok(ParsedSegment {
        header,
        doc_lines,
        link_lines,
    })
}

/// The disk-backed store state: workspace + sealed segments + resident
/// locator/host indexes. Wrapped in a lock by
/// [`crate::DocumentStore::segmented`].
pub(crate) struct Spine {
    dir: PathBuf,
    manifest: SegmentManifest,
    cfg: SegmentStoreConfig,
    // --- in-memory write workspace (insertion order defines segment bytes) ---
    ws_docs: Vec<DocumentRow>,
    ws_index: FxHashMap<PageId, usize>,
    ws_links: Vec<LinkRow>,
    // --- resident indexes over sealed rows (dense mode) ---
    locs: FxHashMap<PageId, SegLoc>,
    /// `fxhash(url) -> id`, verified against the row's URL on read.
    by_url_hash: FxHashMap<u64, PageId>,
    /// Effective topic -> ids, workspace and sealed rows combined,
    /// maintained exactly like the in-memory index.
    by_topic: FxHashMap<u32, Vec<PageId>>,
    // --- resident indexes over sealed rows (sparse mode) ---
    /// Per-segment sparse indexes, parallel to `manifest.segments`.
    sparse: Vec<SparseSegIndex>,
    /// Front filter over sealed ids: duplicate-id checks hit disk only
    /// on a probable duplicate.
    sealed_ids: Bloom,
    /// Sealed row count (sparse mode has no `locs` to count).
    sealed_docs_ct: usize,
    // --- shared mutable metadata ---
    /// Re-classification of sealed (immutable) rows, applied on read.
    overrides: FxHashMap<PageId, (Option<u32>, f32)>,
    hosts: FxHashMap<HostId, HostRow>,
    sealed_links: u64,
    /// Overrides/hosts changed since the last manifest commit; a seal
    /// with an empty workspace still recommits the manifest then.
    meta_dirty: bool,
    compaction_stats: CompactionStats,
}

impl std::fmt::Debug for Spine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Spine")
            .field("dir", &self.dir)
            .field("segments", &self.manifest.segments.len())
            .field("sealed_docs", &self.locs.len())
            .field("workspace_docs", &self.ws_docs.len())
            .finish()
    }
}

/// Front-filter size of the sparse-mode sealed-id Bloom (2^28 bits =
/// 32 MiB): ~0.5% false-positive rate at ten million sealed rows, so
/// duplicate-id checks rarely touch disk.
const SEALED_BLOOM_BITS_LOG2: u32 = 28;

impl Spine {
    fn empty(dir: PathBuf, cfg: SegmentStoreConfig) -> Self {
        let bloom_bits = if cfg.sparse {
            SEALED_BLOOM_BITS_LOG2
        } else {
            6
        };
        Spine {
            dir,
            manifest: SegmentManifest::empty(),
            cfg: SegmentStoreConfig {
                seal_every: cfg.seal_every.max(1),
                ..cfg
            },
            ws_docs: Vec::new(),
            ws_index: FxHashMap::default(),
            ws_links: Vec::new(),
            locs: FxHashMap::default(),
            by_url_hash: FxHashMap::default(),
            by_topic: FxHashMap::default(),
            sparse: Vec::new(),
            sealed_ids: Bloom::new(bloom_bits),
            sealed_docs_ct: 0,
            overrides: FxHashMap::default(),
            hosts: FxHashMap::default(),
            sealed_links: 0,
            meta_dirty: false,
            compaction_stats: CompactionStats::default(),
        }
    }

    /// Open (or create) a segmented store directory: reap orphans from
    /// a crashed seal, verify every referenced segment against the
    /// manifest, and rebuild the resident indexes by streaming each
    /// segment once.
    ///
    /// Index mode belongs to the *handle*, not the files: the same
    /// directory opens dense or sparse (sparse segments are sorted by
    /// id, which a dense open indexes like any other order; a sparse
    /// open of dense segments rejects unsorted segments).
    pub(crate) fn open(dir: PathBuf, cfg: SegmentStoreConfig) -> Result<Self, StoreError> {
        reap_orphan_segments(&dir);
        let mut spine = Spine::empty(dir, cfg);
        let manifest_path = spine.dir.join(SEGMENTS_FILE);
        let text = match std::fs::read_to_string(&manifest_path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(spine),
            Err(e) => return Err(pe(e)),
        };
        let manifest: SegmentManifest = serde_json::from_str(&text).map_err(pe)?;
        if manifest.magic != SEGMENTS_MAGIC || manifest.version != SEGMENT_VERSION {
            return Err(pe("bad segment manifest magic/version"));
        }
        spine.overrides = manifest
            .overrides
            .iter()
            .map(|&(id, topic, confidence)| (id, (topic, confidence)))
            .collect();
        spine.hosts = manifest.hosts.iter().map(|h| (h.id, h.clone())).collect();
        for (seg, entry) in manifest.segments.iter().enumerate() {
            let bytes = std::fs::read(spine.dir.join(&entry.name)).map_err(pe)?;
            if bytes.len() as u64 != entry.len || checksum(&bytes) != entry.checksum {
                return Err(pe(format!("segment {} failed verification", entry.name)));
            }
            let parsed = parse_segment(&bytes)?;
            if parsed.header.docs != entry.docs || parsed.header.links != entry.links {
                return Err(pe(format!(
                    "segment {} header/manifest mismatch",
                    entry.name
                )));
            }
            let mut sparse_rows: Vec<(PageId, u64, u32)> =
                Vec::with_capacity(if spine.cfg.sparse {
                    parsed.doc_lines.len()
                } else {
                    0
                });
            for &(offset, line) in &parsed.doc_lines {
                let row: DocumentRow = from_line(line)?;
                if spine.cfg.sparse {
                    if let Some(&(prev, _, _)) = sparse_rows.last() {
                        if prev >= row.id {
                            return Err(pe(format!(
                                "segment {} is not id-sorted; reopen it dense",
                                entry.name
                            )));
                        }
                    }
                    sparse_rows.push((row.id, offset, line.len() as u32));
                    spine.sealed_ids.add(row.id as u128);
                } else {
                    spine.by_url_hash.insert(url_hash(&row.url), row.id);
                    let topic = match spine.overrides.get(&row.id) {
                        Some(&(t, _)) => t,
                        None => row.topic,
                    };
                    if let Some(t) = topic {
                        spine.by_topic.entry(t).or_default().push(row.id);
                    }
                    spine.locs.insert(
                        row.id,
                        SegLoc {
                            seg: seg as u32,
                            offset,
                            len: line.len() as u32,
                        },
                    );
                }
            }
            if spine.cfg.sparse {
                spine.sealed_docs_ct += sparse_rows.len();
                spine.sparse.push(SparseSegIndex::from_rows(&sparse_rows));
            }
            for line in &parsed.link_lines {
                // Parse to validate; the adjacency is streamed on demand.
                let _: LinkRow = from_line(line)?;
            }
            spine.sealed_links += parsed.header.links;
        }
        spine.manifest = manifest;
        Ok(spine)
    }

    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    pub(crate) fn segment_count(&self) -> usize {
        self.manifest.segments.len()
    }

    pub(crate) fn sealed_documents(&self) -> usize {
        if self.cfg.sparse {
            self.sealed_docs_ct
        } else {
            self.locs.len()
        }
    }

    pub(crate) fn workspace_documents(&self) -> usize {
        self.ws_docs.len()
    }

    pub(crate) fn document_count(&self) -> usize {
        self.sealed_documents() + self.ws_docs.len()
    }

    pub(crate) fn compaction_stats(&self) -> CompactionStats {
        self.compaction_stats
    }

    pub(crate) fn link_count(&self) -> usize {
        self.sealed_links as usize + self.ws_links.len()
    }

    pub(crate) fn host_count(&self) -> usize {
        self.hosts.len()
    }

    pub(crate) fn insert_document(&mut self, row: DocumentRow) -> Result<(), StoreError> {
        if self.ws_index.contains_key(&row.id) || self.sealed_contains(row.id)? {
            return Err(StoreError::DuplicateKey(row.id));
        }
        if !self.cfg.sparse {
            self.by_url_hash.insert(url_hash(&row.url), row.id);
            if let Some(topic) = row.topic {
                self.by_topic.entry(topic).or_default().push(row.id);
            }
        }
        self.ws_index.insert(row.id, self.ws_docs.len());
        self.ws_docs.push(row);
        Ok(())
    }

    /// Exact sealed-row membership. Dense: one resident-map probe.
    /// Sparse: the Bloom filter answers "definitely not" for almost
    /// every fresh id; a probable duplicate is confirmed with a sparse
    /// point read.
    fn sealed_contains(&self, id: PageId) -> Result<bool, StoreError> {
        if !self.cfg.sparse {
            return Ok(self.locs.contains_key(&id));
        }
        if !self.sealed_ids.maybe(id as u128) {
            return Ok(false);
        }
        Ok(self.sparse_find(id)?.is_some())
    }

    /// Sparse point lookup: fence-filter the segments, binary-search
    /// each candidate's samples, read one block, scan to the id. Rows
    /// in a block are id-sorted, so the scan early-exits.
    fn sparse_find(&self, id: PageId) -> Result<Option<DocumentRow>, StoreError> {
        for (seg, idx) in self.sparse.iter().enumerate() {
            if idx.samples.is_empty() || id < idx.min_id || id > idx.max_id {
                continue;
            }
            let i = idx.samples.partition_point(|&(s, _)| s <= id) - 1;
            let start = idx.samples[i].1;
            let end = idx
                .samples
                .get(i + 1)
                .map(|&(_, off)| off)
                .unwrap_or(idx.docs_end);
            let entry = &self.manifest.segments[seg];
            let mut f = std::fs::File::open(self.dir.join(&entry.name)).map_err(pe)?;
            f.seek(SeekFrom::Start(start)).map_err(pe)?;
            let mut buf = vec![0u8; (end - start) as usize];
            f.read_exact(&mut buf).map_err(pe)?;
            for line in buf.split(|&b| b == b'\n') {
                if line.is_empty() {
                    continue;
                }
                let row: DocumentRow = from_line(line)?;
                match row.id.cmp(&id) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => return Ok(Some(row)),
                    std::cmp::Ordering::Greater => break,
                }
            }
        }
        Ok(None)
    }

    pub(crate) fn insert_link(&mut self, link: LinkRow) {
        self.ws_links.push(link);
    }

    pub(crate) fn upsert_host(&mut self, row: HostRow) {
        self.hosts.insert(row.id, row);
        self.meta_dirty = true;
    }

    pub(crate) fn set_topic(
        &mut self,
        id: PageId,
        topic: Option<u32>,
        confidence: f32,
    ) -> Result<(), StoreError> {
        if self.cfg.sparse {
            // No resident topic index to maintain — record the
            // override (reads apply it; compaction materializes it).
            if let Some(&i) = self.ws_index.get(&id) {
                self.ws_docs[i].topic = topic;
                self.ws_docs[i].confidence = confidence;
            } else if self.sealed_contains(id)? {
                self.overrides.insert(id, (topic, confidence));
                self.meta_dirty = true;
            } else {
                return Err(StoreError::MissingDocument(id));
            }
            return Ok(());
        }
        let old = if let Some(&i) = self.ws_index.get(&id) {
            let old = self.ws_docs[i].topic;
            self.ws_docs[i].topic = topic;
            self.ws_docs[i].confidence = confidence;
            old
        } else if let Some(&loc) = self.locs.get(&id) {
            let old = match self.overrides.get(&id) {
                Some(&(t, _)) => t,
                None => self.read_sealed(loc)?.topic,
            };
            self.overrides.insert(id, (topic, confidence));
            self.meta_dirty = true;
            old
        } else {
            return Err(StoreError::MissingDocument(id));
        };
        if let Some(old) = old {
            if let Some(list) = self.by_topic.get_mut(&old) {
                list.retain(|&d| d != id);
            }
        }
        if let Some(t) = topic {
            self.by_topic.entry(t).or_default().push(id);
        }
        Ok(())
    }

    /// Read one sealed row from disk and apply any topic override.
    fn read_sealed(&self, loc: SegLoc) -> Result<DocumentRow, StoreError> {
        let entry = &self.manifest.segments[loc.seg as usize];
        let mut f = std::fs::File::open(self.dir.join(&entry.name)).map_err(pe)?;
        f.seek(SeekFrom::Start(loc.offset)).map_err(pe)?;
        let mut buf = vec![0u8; loc.len as usize];
        f.read_exact(&mut buf).map_err(pe)?;
        let mut row: DocumentRow = from_line(&buf)?;
        if let Some(&(topic, confidence)) = self.overrides.get(&row.id) {
            row.topic = topic;
            row.confidence = confidence;
        }
        Ok(row)
    }

    pub(crate) fn document(&self, id: PageId) -> Option<DocumentRow> {
        if let Some(&i) = self.ws_index.get(&id) {
            return Some(self.ws_docs[i].clone());
        }
        if self.cfg.sparse {
            let mut row = self.sparse_find(id).ok()??;
            if let Some(&(topic, confidence)) = self.overrides.get(&row.id) {
                row.topic = topic;
                row.confidence = confidence;
            }
            return Some(row);
        }
        let loc = *self.locs.get(&id)?;
        self.read_sealed(loc).ok()
    }

    pub(crate) fn document_by_url(&self, url: &str) -> Option<DocumentRow> {
        if self.cfg.sparse {
            // Cold path by design: no resident URL index in sparse
            // mode. Workspace first (newest rows), then a segment scan.
            if let Some(row) = self.ws_docs.iter().find(|row| row.url == url) {
                return Some(row.clone());
            }
            let mut found = None;
            let _ = self.for_each_sealed_document(|row| {
                if found.is_none() && row.url == url {
                    found = Some(row.clone());
                }
            });
            return found;
        }
        let id = *self.by_url_hash.get(&url_hash(url))?;
        // Verify: the hash index may alias distinct URLs (fail-safe miss).
        self.document(id).filter(|row| row.url == url)
    }

    pub(crate) fn contains_url(&self, url: &str) -> bool {
        self.document_by_url(url).is_some()
    }

    pub(crate) fn topic_documents(&self, topic: u32) -> Vec<PageId> {
        if self.cfg.sparse {
            // Cold path by design: stream every row (overrides
            // applied), segment order then workspace — set-equal to
            // the dense index, order may differ.
            let mut ids = Vec::new();
            let _ = self.for_each_document(|row| {
                if row.topic == Some(topic) {
                    ids.push(row.id);
                }
            });
            return ids;
        }
        self.by_topic.get(&topic).cloned().unwrap_or_default()
    }

    pub(crate) fn host(&self, id: HostId) -> Option<HostRow> {
        self.hosts.get(&id).cloned()
    }

    pub(crate) fn hosts_sorted(&self) -> Vec<HostRow> {
        let mut hosts: Vec<HostRow> = self.hosts.values().cloned().collect();
        hosts.sort_unstable_by_key(|h| h.id);
        hosts
    }

    /// Stream every *sealed* document row in segment order, overrides
    /// applied.
    fn for_each_sealed_document<F: FnMut(&DocumentRow)>(&self, mut f: F) -> Result<(), StoreError> {
        for entry in &self.manifest.segments {
            let bytes = std::fs::read(self.dir.join(&entry.name)).map_err(pe)?;
            let parsed = parse_segment(&bytes)?;
            for &(_, line) in &parsed.doc_lines {
                let mut row: DocumentRow = from_line(line)?;
                if let Some(&(topic, confidence)) = self.overrides.get(&row.id) {
                    row.topic = topic;
                    row.confidence = confidence;
                }
                f(&row);
            }
        }
        Ok(())
    }

    /// Stream every document row (sealed segments in seal order, then
    /// the workspace), overrides applied.
    pub(crate) fn for_each_document<F: FnMut(&DocumentRow)>(
        &self,
        mut f: F,
    ) -> Result<(), StoreError> {
        self.for_each_sealed_document(&mut f)?;
        for row in &self.ws_docs {
            f(row);
        }
        Ok(())
    }

    /// Stream every link row in global insertion order (seal order is
    /// insertion order; workspace links come last).
    pub(crate) fn for_each_link<F: FnMut(&LinkRow)>(&self, mut f: F) -> Result<(), StoreError> {
        for entry in &self.manifest.segments {
            let bytes = std::fs::read(self.dir.join(&entry.name)).map_err(pe)?;
            let parsed = parse_segment(&bytes)?;
            for line in &parsed.link_lines {
                let row: LinkRow = from_line(line)?;
                f(&row);
            }
        }
        for link in &self.ws_links {
            f(link);
        }
        Ok(())
    }

    pub(crate) fn all_documents(&self) -> Vec<DocumentRow> {
        let mut rows = Vec::with_capacity(self.document_count());
        let _ = self.for_each_document(|row| rows.push(row.clone()));
        rows
    }

    pub(crate) fn all_links(&self) -> Vec<LinkRow> {
        let mut links = Vec::with_capacity(self.link_count());
        let _ = self.for_each_link(|l| links.push(l.clone()));
        links
    }

    /// First-occurrence-deduplicated out-edges of `page`, matching the
    /// in-memory edge index (cold path: streams the link log).
    pub(crate) fn successors(&self, page: PageId) -> Vec<PageId> {
        let mut out = Vec::new();
        let _ = self.for_each_link(|l| {
            if l.from == page && !out.contains(&l.to) {
                out.push(l.to);
            }
        });
        out
    }

    /// Distinct predecessors of `page` in first-occurrence order,
    /// matching the in-memory edge index (cold path).
    pub(crate) fn predecessors(&self, page: PageId) -> Vec<PageId> {
        let mut from = Vec::new();
        let _ = self.for_each_link(|l| {
            if l.to == page && !from.contains(&l.from) {
                from.push(l.from);
            }
        });
        from
    }

    pub(crate) fn host_of(&self, page: PageId) -> HostId {
        self.document(page).map(|d| d.host).unwrap_or(0)
    }

    /// Seal the workspace when it has grown past the threshold.
    pub(crate) fn maybe_seal(&mut self, fs: &dyn DurableFs) -> Result<bool, StoreError> {
        let seal_every = self.cfg.seal_every;
        if self.ws_docs.len() >= seal_every || self.ws_links.len() >= seal_every * 16 {
            self.seal(fs)
        } else {
            Ok(false)
        }
    }

    /// Seal the workspace into a new immutable segment file: write the
    /// segment atomically, then rewrite the manifest atomically (the
    /// commit). On any error the workspace is left intact — rows stay
    /// readable, durability is retried at the next seal. A crash
    /// between the two writes leaves an orphan segment file that
    /// recovery ignores and [`reap_orphan_segments`] deletes.
    pub(crate) fn seal(&mut self, fs: &dyn DurableFs) -> Result<bool, StoreError> {
        if self.ws_docs.is_empty() && self.ws_links.is_empty() {
            if !self.meta_dirty {
                return Ok(false);
            }
            // Metadata-only commit: overrides/hosts changed since the
            // last seal but there is no workspace to seal.
            let mut manifest = self.manifest.clone();
            manifest.overrides = self.overrides_sorted();
            manifest.hosts = self.hosts_sorted();
            let mut mjson = Vec::new();
            serde_json::to_writer(&mut mjson, &manifest).map_err(pe)?;
            fs.create_dir_all(&self.dir).map_err(pe)?;
            fs.atomic_write(&self.dir.join(SEGMENTS_FILE), &mjson)
                .map_err(pe)?;
            self.manifest = manifest;
            self.meta_dirty = false;
            return Ok(true);
        }
        let seg_index = self.manifest.segments.len() as u32;
        let seg_no = self.manifest.next_seg;
        let name = format!("seg-{seg_no:06}.jsonl");
        let header = SegmentHeader {
            magic: SEGMENT_MAGIC.to_string(),
            version: SEGMENT_VERSION,
            seg: seg_no,
            docs: self.ws_docs.len() as u64,
            links: self.ws_links.len() as u64,
        };
        // Row order in the file: insertion order, except sparse mode
        // sorts by id so block reads can binary-search. The order is
        // computed without disturbing the workspace — on a write error
        // `ws_index` must stay valid.
        let mut order: Vec<usize> = (0..self.ws_docs.len()).collect();
        if self.cfg.sparse {
            order.sort_unstable_by_key(|&i| self.ws_docs[i].id);
        }
        let mut bytes = Vec::new();
        serde_json::to_writer(&mut bytes, &header).map_err(pe)?;
        bytes.push(b'\n');
        let mut offsets = Vec::with_capacity(self.ws_docs.len());
        for &i in &order {
            let start = bytes.len() as u64;
            serde_json::to_writer(&mut bytes, &self.ws_docs[i]).map_err(pe)?;
            offsets.push((start, (bytes.len() as u64 - start) as u32));
            bytes.push(b'\n');
        }
        for link in &self.ws_links {
            serde_json::to_writer(&mut bytes, link).map_err(pe)?;
            bytes.push(b'\n');
        }
        fs.create_dir_all(&self.dir).map_err(pe)?;
        fs.atomic_write(&self.dir.join(&name), &bytes).map_err(pe)?;
        let mut manifest = self.manifest.clone();
        manifest.segments.push(SegmentEntry {
            name,
            docs: self.ws_docs.len() as u64,
            links: self.ws_links.len() as u64,
            len: bytes.len() as u64,
            checksum: checksum(&bytes),
        });
        manifest.next_seg = seg_no + 1;
        manifest.overrides = self.overrides_sorted();
        manifest.hosts = self.hosts_sorted();
        let mut mjson = Vec::new();
        serde_json::to_writer(&mut mjson, &manifest).map_err(pe)?;
        fs.atomic_write(&self.dir.join(SEGMENTS_FILE), &mjson)
            .map_err(pe)?;
        // Committed: move the workspace into the sealed state.
        self.manifest = manifest;
        if self.cfg.sparse {
            let rows: Vec<(PageId, u64, u32)> = order
                .iter()
                .zip(&offsets)
                .map(|(&i, &(offset, len))| (self.ws_docs[i].id, offset, len))
                .collect();
            for &(id, _, _) in &rows {
                self.sealed_ids.add(id as u128);
            }
            self.sealed_docs_ct += rows.len();
            self.sparse.push(SparseSegIndex::from_rows(&rows));
            self.ws_docs.clear();
        } else {
            for (&i, &(offset, len)) in order.iter().zip(&offsets) {
                self.locs.insert(
                    self.ws_docs[i].id,
                    SegLoc {
                        seg: seg_index,
                        offset,
                        len,
                    },
                );
            }
            self.ws_docs.clear();
        }
        self.ws_index.clear();
        self.sealed_links += self.ws_links.len() as u64;
        self.ws_links.clear();
        self.meta_dirty = false;
        self.maybe_compact(fs)?;
        Ok(true)
    }

    /// Merge the first adjacent run of small sealed segments, if any.
    /// Called after every successful data seal; also reachable via
    /// [`crate::DocumentStore::compact_now_with`]. Returns whether a
    /// run was compacted.
    pub(crate) fn maybe_compact(&mut self, fs: &dyn DurableFs) -> Result<bool, StoreError> {
        let Some(cfg) = self.cfg.compaction else {
            return Ok(false);
        };
        let small_docs = cfg.small_docs.max(1) as u64;
        let min_run = cfg.min_run.max(2);
        let mut start = 0usize;
        while start < self.manifest.segments.len() {
            if self.manifest.segments[start].docs >= small_docs {
                start += 1;
                continue;
            }
            let mut end = start + 1;
            while end < self.manifest.segments.len()
                && self.manifest.segments[end].docs < small_docs
            {
                end += 1;
            }
            if end - start >= min_run {
                self.compact_run(fs, start, end - start)?;
                return Ok(true);
            }
            start = end;
        }
        Ok(false)
    }

    /// Rewrite the `len` sealed segments starting at index `start` as
    /// one merged segment under a fresh segment number. Overrides on
    /// merged rows are materialized into the rewritten rows and dropped
    /// from the override map. Crash-safe: the merged segment and the
    /// new manifest are written atomically (manifest last, as the
    /// commit record), and resident state mutates only after both
    /// writes succeed — a crash in between leaves an orphan segment
    /// that the next open reaps.
    fn compact_run(
        &mut self,
        fs: &dyn DurableFs,
        start: usize,
        len: usize,
    ) -> Result<(), StoreError> {
        let mut rows: Vec<DocumentRow> = Vec::new();
        let mut link_bytes: Vec<u8> = Vec::new();
        let mut links = 0u64;
        for entry in &self.manifest.segments[start..start + len] {
            let bytes = std::fs::read(self.dir.join(&entry.name)).map_err(pe)?;
            let parsed = parse_segment(&bytes)?;
            for &(_, line) in &parsed.doc_lines {
                rows.push(from_line(line)?);
            }
            for line in &parsed.link_lines {
                link_bytes.extend_from_slice(line);
                link_bytes.push(b'\n');
            }
            links += parsed.header.links;
        }
        let mut materialized = 0u64;
        for row in &mut rows {
            if let Some(&(topic, confidence)) = self.overrides.get(&row.id) {
                row.topic = topic;
                row.confidence = confidence;
                materialized += 1;
            }
        }
        if self.cfg.sparse {
            rows.sort_unstable_by_key(|row| row.id);
        }
        let seg_no = self.manifest.next_seg;
        let name = format!("seg-{seg_no:06}.jsonl");
        let header = SegmentHeader {
            magic: SEGMENT_MAGIC.to_string(),
            version: SEGMENT_VERSION,
            seg: seg_no,
            docs: rows.len() as u64,
            links,
        };
        let mut bytes = Vec::new();
        serde_json::to_writer(&mut bytes, &header).map_err(pe)?;
        bytes.push(b'\n');
        let mut offsets = Vec::with_capacity(rows.len());
        for row in &rows {
            let off = bytes.len() as u64;
            serde_json::to_writer(&mut bytes, row).map_err(pe)?;
            offsets.push((off, (bytes.len() as u64 - off) as u32));
            bytes.push(b'\n');
        }
        bytes.extend_from_slice(&link_bytes);
        fs.atomic_write(&self.dir.join(&name), &bytes).map_err(pe)?;
        let mut manifest = self.manifest.clone();
        let merged_ids: Vec<PageId> = rows.iter().map(|r| r.id).collect();
        let entry = SegmentEntry {
            name,
            docs: rows.len() as u64,
            links,
            len: bytes.len() as u64,
            checksum: checksum(&bytes),
        };
        manifest.segments.splice(start..start + len, [entry]);
        manifest.next_seg = seg_no + 1;
        for id in &merged_ids {
            self.overrides.remove(id);
        }
        manifest.overrides = self.overrides_sorted();
        manifest.hosts = self.hosts_sorted();
        let mut mjson = Vec::new();
        serde_json::to_writer(&mut mjson, &manifest).map_err(pe)?;
        fs.atomic_write(&self.dir.join(SEGMENTS_FILE), &mjson)
            .map_err(pe)?;
        // Committed: fold the merge into resident state.
        self.manifest = manifest;
        if self.cfg.sparse {
            let idx_rows: Vec<(PageId, u64, u32)> = rows
                .iter()
                .zip(&offsets)
                .map(|(row, &(off, rlen))| (row.id, off, rlen))
                .collect();
            self.sparse
                .splice(start..start + len, [SparseSegIndex::from_rows(&idx_rows)]);
        } else {
            let removed = (len - 1) as u32;
            let cutoff = (start + len) as u32;
            for loc in self.locs.values_mut() {
                if loc.seg >= cutoff {
                    loc.seg -= removed;
                }
            }
            for (row, &(off, rlen)) in rows.iter().zip(&offsets) {
                self.locs.insert(
                    row.id,
                    SegLoc {
                        seg: start as u32,
                        offset: off,
                        len: rlen,
                    },
                );
            }
        }
        self.meta_dirty = false;
        self.compaction_stats.runs += 1;
        self.compaction_stats.segments_merged += len as u64;
        self.compaction_stats.rows_rewritten += rows.len() as u64;
        self.compaction_stats.overrides_materialized += materialized;
        self.compaction_stats.bytes_written += bytes.len() as u64;
        self.compaction_stats.orphans_reaped += reap_orphan_segments(&self.dir) as u64;
        Ok(())
    }

    fn overrides_sorted(&self) -> Vec<(PageId, Option<u32>, f32)> {
        let mut overrides: Vec<(PageId, Option<u32>, f32)> = self
            .overrides
            .iter()
            .map(|(&id, &(topic, confidence))| (id, topic, confidence))
            .collect();
        overrides.sort_unstable_by_key(|&(id, _, _)| id);
        overrides
    }

    /// Rewrite every row's term ids through `map` (see
    /// [`crate::DocumentStore::remap_terms`]): workspace rows in place,
    /// sealed segments by rewriting each file and recommitting the
    /// manifest. Not crash-atomic across segments — canonicalization
    /// runs before a crawl's results are persisted, so a crash here
    /// means re-running the crawl, not data loss of an acked seal.
    pub(crate) fn remap_terms(&mut self, map: &[u32]) -> Result<(), StoreError> {
        let remap = |row: &mut DocumentRow| {
            for entry in &mut row.term_freqs {
                entry.0 = map[entry.0 as usize];
            }
            row.term_freqs.sort_unstable_by_key(|&(t, _)| t);
        };
        for row in &mut self.ws_docs {
            remap(row);
        }
        let fs = crate::durable::StdFs;
        for (seg, entry) in self.manifest.segments.iter_mut().enumerate() {
            let bytes = std::fs::read(self.dir.join(&entry.name)).map_err(pe)?;
            let parsed = parse_segment(&bytes)?;
            let mut out = Vec::with_capacity(bytes.len());
            let header_end = bytes.iter().position(|&b| b == b'\n').unwrap_or(0);
            out.extend_from_slice(&bytes[..=header_end]);
            let mut idx_rows: Vec<(PageId, u64, u32)> = Vec::with_capacity(if self.cfg.sparse {
                parsed.doc_lines.len()
            } else {
                0
            });
            for &(_, line) in &parsed.doc_lines {
                let mut row: DocumentRow = from_line(line)?;
                remap(&mut row);
                let start = out.len() as u64;
                serde_json::to_writer(&mut out, &row).map_err(pe)?;
                let row_len = (out.len() as u64 - start) as u32;
                if self.cfg.sparse {
                    idx_rows.push((row.id, start, row_len));
                } else {
                    self.locs.insert(
                        row.id,
                        SegLoc {
                            seg: seg as u32,
                            offset: start,
                            len: row_len,
                        },
                    );
                }
                out.push(b'\n');
            }
            if self.cfg.sparse {
                self.sparse[seg] = SparseSegIndex::from_rows(&idx_rows);
            }
            for line in &parsed.link_lines {
                out.extend_from_slice(line);
                out.push(b'\n');
            }
            fs.atomic_write(&self.dir.join(&entry.name), &out)
                .map_err(pe)?;
            entry.len = out.len() as u64;
            entry.checksum = checksum(&out);
        }
        if !self.manifest.segments.is_empty() {
            let mut mjson = Vec::new();
            serde_json::to_writer(&mut mjson, &self.manifest).map_err(pe)?;
            fs.atomic_write(&self.dir.join(SEGMENTS_FILE), &mjson)
                .map_err(pe)?;
        }
        Ok(())
    }
}

/// Delete segment files (and stale `.tmp` siblings) in `dir` that the
/// manifest does not reference — the debris a crash between segment
/// write and manifest commit leaves behind. A missing or unreadable
/// manifest means no segment is referenced. Returns the number of
/// files removed. Single-writer: callers must not reap a directory
/// whose spine is mid-seal in another handle.
pub fn reap_orphan_segments(dir: &Path) -> usize {
    let referenced: std::collections::HashSet<String> =
        std::fs::read_to_string(dir.join(SEGMENTS_FILE))
            .ok()
            .and_then(|text| serde_json::from_str::<SegmentManifest>(&text).ok())
            .map(|m| m.segments.into_iter().map(|s| s.name).collect())
            .unwrap_or_default();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut reaped = 0;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_tmp = name.ends_with(".tmp");
        let base = name.strip_suffix(".tmp").unwrap_or(&name);
        let is_seg = base.starts_with("seg-") && base.ends_with(".jsonl");
        let is_manifest_tmp = is_tmp && base == SEGMENTS_FILE;
        if !(is_seg || is_manifest_tmp) {
            continue;
        }
        if is_seg && !is_tmp && referenced.contains(base) {
            continue;
        }
        if std::fs::remove_file(entry.path()).is_ok() {
            reaped += 1;
        }
    }
    reaped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::StdFs;
    use bingo_textproc::MimeType;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bingo-segment-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn cfg4() -> SegmentStoreConfig {
        SegmentStoreConfig {
            seal_every: 4,
            ..Default::default()
        }
    }

    fn doc(id: u64, topic: Option<u32>) -> DocumentRow {
        DocumentRow {
            id,
            url: format!("http://h{}/p{id}", id % 3),
            host: (id % 3) as u32,
            mime: MimeType::Html,
            depth: 1,
            title: format!("doc {id}"),
            topic,
            confidence: 0.25,
            term_freqs: vec![(1, 2), (7, 1)],
            size: 100,
            fetched_at: id,
        }
    }

    #[test]
    fn seal_reopen_and_point_read() {
        let dir = temp_dir("seal");
        let mut spine = Spine::open(dir.clone(), cfg4()).unwrap();
        for i in 0..6 {
            spine.insert_document(doc(i, Some((i % 2) as u32))).unwrap();
        }
        spine.insert_link(LinkRow {
            from: 0,
            to: 1,
            to_url: "u".into(),
        });
        assert!(spine.seal(&StdFs).unwrap());
        spine.insert_document(doc(6, None)).unwrap();
        assert_eq!(spine.document_count(), 7);
        assert_eq!(spine.sealed_documents(), 6);
        assert_eq!(spine.document(3).unwrap().title, "doc 3");
        assert_eq!(spine.document(6).unwrap().title, "doc 6");
        assert_eq!(spine.document_by_url("http://h1/p4").unwrap().id, 4);
        assert!(spine.document_by_url("http://h1/p99").is_none());
        // Workspace rows survive only via another seal; reopen sees sealed.
        assert!(spine.seal(&StdFs).unwrap());
        drop(spine);
        let spine = Spine::open(dir.clone(), cfg4()).unwrap();
        assert_eq!(spine.segment_count(), 2);
        assert_eq!(spine.document_count(), 7);
        assert_eq!(spine.link_count(), 1);
        assert_eq!(spine.document(5).unwrap().url, "http://h2/p5");
        assert_eq!(spine.successors(0), vec![1]);
        assert_eq!(spine.predecessors(1), vec![0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overrides_apply_to_sealed_rows_and_persist_via_next_seal() {
        let dir = temp_dir("override");
        let mut spine = Spine::open(dir.clone(), cfg4()).unwrap();
        for i in 0..3 {
            spine.insert_document(doc(i, Some(0))).unwrap();
        }
        spine.seal(&StdFs).unwrap();
        spine.set_topic(1, Some(9), 0.75).unwrap();
        assert_eq!(spine.document(1).unwrap().topic, Some(9));
        assert_eq!(spine.topic_documents(0), vec![0, 2]);
        assert_eq!(spine.topic_documents(9), vec![1]);
        // The override is carried into the next manifest commit.
        spine.insert_document(doc(3, None)).unwrap();
        spine.seal(&StdFs).unwrap();
        drop(spine);
        let spine = Spine::open(dir.clone(), cfg4()).unwrap();
        assert_eq!(spine.document(1).unwrap().topic, Some(9));
        assert_eq!(spine.document(1).unwrap().confidence, 0.75);
        assert_eq!(spine.topic_documents(9), vec![1]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphan_segments_are_reaped_and_ignored() {
        let dir = temp_dir("orphan");
        let mut spine = Spine::open(dir.clone(), cfg4()).unwrap();
        spine.insert_document(doc(0, None)).unwrap();
        spine.seal(&StdFs).unwrap();
        // Simulate a crash between seal and manifest commit: an extra
        // segment file the manifest never saw.
        std::fs::write(dir.join("seg-000001.jsonl"), b"orphan bytes").unwrap();
        std::fs::write(dir.join("seg-000002.jsonl.tmp"), b"torn tmp").unwrap();
        assert_eq!(reap_orphan_segments(&dir), 2);
        assert_eq!(reap_orphan_segments(&dir), 0, "idempotent");
        let spine = Spine::open(dir.clone(), cfg4()).unwrap();
        assert_eq!(spine.segment_count(), 1);
        assert_eq!(spine.document_count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_segment_fails_verification_on_open() {
        let dir = temp_dir("corrupt");
        let mut spine = Spine::open(dir.clone(), cfg4()).unwrap();
        for i in 0..2 {
            spine.insert_document(doc(i, None)).unwrap();
        }
        spine.seal(&StdFs).unwrap();
        drop(spine);
        // Flip bytes in place (same length): checksum catches it.
        let seg = dir.join("seg-000000.jsonl");
        let mut bytes = std::fs::read(&seg).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0xff;
        std::fs::write(&seg, &bytes).unwrap();
        assert!(matches!(
            Spine::open(dir.clone(), cfg4()),
            Err(StoreError::Persist(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remap_rewrites_sealed_segments() {
        let dir = temp_dir("remap");
        let mut spine = Spine::open(dir.clone(), cfg4()).unwrap();
        spine.insert_document(doc(0, None)).unwrap();
        spine.seal(&StdFs).unwrap();
        spine.insert_document(doc(1, None)).unwrap();
        let mut map = vec![0u32; 8];
        map[1] = 6;
        map[7] = 2;
        spine.remap_terms(&map).unwrap();
        assert_eq!(spine.document(0).unwrap().term_freqs, vec![(2, 1), (6, 2)]);
        assert_eq!(spine.document(1).unwrap().term_freqs, vec![(2, 1), (6, 2)]);
        drop(spine);
        // The rewritten segment re-verifies and reopens.
        let spine = Spine::open(dir.clone(), cfg4()).unwrap();
        assert_eq!(spine.document(0).unwrap().term_freqs, vec![(2, 1), (6, 2)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn sparse4() -> SegmentStoreConfig {
        SegmentStoreConfig {
            seal_every: 4,
            sparse: true,
            ..Default::default()
        }
    }

    #[test]
    fn sparse_mode_answers_match_dense() {
        let dir = temp_dir("sparse-eq");
        let mut spine = Spine::open(dir.clone(), sparse4()).unwrap();
        // Insert out of id order so the sparse seal has to sort.
        for i in [3u64, 0, 2, 1, 7, 4, 6, 5] {
            spine.insert_document(doc(i, Some((i % 2) as u32))).unwrap();
            if spine.workspace_documents() >= 4 {
                assert!(spine.seal(&StdFs).unwrap());
            }
        }
        spine.insert_document(doc(8, None)).unwrap();
        assert_eq!(spine.document_count(), 9);
        assert_eq!(spine.sealed_documents(), 8);
        for i in 0..9 {
            assert_eq!(spine.document(i).unwrap().title, format!("doc {i}"));
        }
        assert!(spine.document(99).is_none());
        assert_eq!(spine.document_by_url("http://h1/p4").unwrap().id, 4);
        assert!(spine.document_by_url("http://h1/p99").is_none());
        let mut evens = spine.topic_documents(0);
        evens.sort_unstable();
        assert_eq!(evens, vec![0, 2, 4, 6]);
        // Sealed duplicate ids are rejected through the bloom + block read.
        assert!(matches!(
            spine.insert_document(doc(3, None)),
            Err(StoreError::DuplicateKey(3))
        ));
        // Overrides on sealed rows work without a resident locator.
        spine.set_topic(5, Some(9), 0.9).unwrap();
        assert_eq!(spine.document(5).unwrap().topic, Some(9));
        assert!(matches!(
            spine.set_topic(42, Some(1), 0.1),
            Err(StoreError::MissingDocument(42))
        ));
        assert!(spine.seal(&StdFs).unwrap());
        drop(spine);
        // The same directory reopens in either mode with the same answers.
        for cfg in [cfg4(), sparse4()] {
            let spine = Spine::open(dir.clone(), cfg).unwrap();
            assert_eq!(spine.document_count(), 9);
            assert_eq!(spine.document(5).unwrap().topic, Some(9));
            assert_eq!(spine.document(8).unwrap().title, "doc 8");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sparse_open_rejects_unsorted_segments() {
        let dir = temp_dir("sparse-unsorted");
        let mut spine = Spine::open(dir.clone(), cfg4()).unwrap();
        // Dense seals keep insertion order: 1 before 0 is unsorted.
        spine.insert_document(doc(1, None)).unwrap();
        spine.insert_document(doc(0, None)).unwrap();
        spine.seal(&StdFs).unwrap();
        drop(spine);
        assert!(matches!(
            Spine::open(dir.clone(), sparse4()),
            Err(StoreError::Persist(_))
        ));
        // Dense reopen is unaffected.
        assert!(Spine::open(dir.clone(), cfg4()).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn compacting(sparse: bool, min_run: usize) -> SegmentStoreConfig {
        SegmentStoreConfig {
            seal_every: 2,
            sparse,
            compaction: Some(CompactionConfig {
                small_docs: 5,
                min_run,
            }),
        }
    }

    #[test]
    fn compaction_merges_adjacent_small_segments() {
        for sparse in [false, true] {
            let dir = temp_dir(&format!("compact-{sparse}"));
            let mut spine = Spine::open(dir.clone(), compacting(sparse, 2)).unwrap();
            for i in 0..8u64 {
                spine.insert_document(doc(i, Some((i % 2) as u32))).unwrap();
                spine.insert_link(LinkRow {
                    from: i,
                    to: i + 1,
                    to_url: "u".into(),
                });
                spine.maybe_seal(&StdFs).unwrap();
            }
            // Seals of 2 rows each; every second seal completes a run of
            // two small segments and merges it. The merged 4-row segment
            // is still < small_docs, so the next merge folds into it too.
            assert_eq!(spine.document_count(), 8);
            assert!(
                spine.segment_count() < 4,
                "small segments were not merged: {}",
                spine.segment_count()
            );
            let stats = spine.compaction_stats();
            assert!(stats.runs >= 1);
            assert!(stats.segments_merged >= 2);
            assert!(stats.rows_rewritten >= 4);
            assert!(stats.bytes_written > 0);
            for i in 0..8 {
                assert_eq!(spine.document(i).unwrap().title, format!("doc {i}"));
            }
            assert_eq!(spine.link_count(), 8);
            drop(spine);
            // Merged directory reopens in both modes.
            for cfg in [cfg4(), sparse4()] {
                let spine = Spine::open(dir.clone(), cfg).unwrap();
                assert_eq!(spine.document_count(), 8);
                assert_eq!(spine.link_count(), 8);
                assert_eq!(spine.document(6).unwrap().title, "doc 6");
                assert_eq!(spine.successors(3), vec![4]);
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn compaction_materializes_overrides_and_shifts_later_segments() {
        for sparse in [false, true] {
            let dir = temp_dir(&format!("compact-ovr-{sparse}"));
            // min_run 3 keeps the first two small seals unmerged so an
            // override can land on a sealed row before compaction runs.
            let mut spine = Spine::open(dir.clone(), compacting(sparse, 3)).unwrap();
            for i in 0..4u64 {
                spine.insert_document(doc(i, Some(0))).unwrap();
                spine.maybe_seal(&StdFs).unwrap();
            }
            assert_eq!(spine.segment_count(), 2);
            spine.set_topic(1, Some(9), 0.75).unwrap();
            // Third small seal completes the run; compaction merges all
            // three segments and bakes the override into the rows.
            for i in 4..6u64 {
                spine.insert_document(doc(i, Some(0))).unwrap();
            }
            spine.seal(&StdFs).unwrap();
            assert_eq!(spine.segment_count(), 1);
            let stats = spine.compaction_stats();
            assert_eq!(stats.overrides_materialized, 1);
            assert_eq!(spine.document(1).unwrap().topic, Some(9));
            assert_eq!(spine.document(1).unwrap().confidence, 0.75);
            // The override left the resident map: the next manifest
            // commit writes it empty, and a reopen still sees the topic.
            for i in 6..10u64 {
                spine.insert_document(doc(i, Some(1))).unwrap();
            }
            spine.seal(&StdFs).unwrap();
            // Rows in segments after the merged run stay addressable
            // (dense locs shifted; sparse indexes respliced).
            assert_eq!(spine.document(7).unwrap().title, "doc 7");
            drop(spine);
            let spine = Spine::open(dir.clone(), if sparse { sparse4() } else { cfg4() }).unwrap();
            assert_eq!(spine.manifest.overrides.len(), 0);
            assert_eq!(spine.document(1).unwrap().topic, Some(9));
            assert_eq!(spine.document_count(), 10);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
