//! Append-only on-disk segments behind an in-memory write workspace.
//!
//! The paper's crawl result "may be a database with several million
//! documents" (Section 1.2) — far more than the flat in-memory tables
//! of [`crate::DocumentStore`] can hold. This module gives the store a
//! BUbiNG-style memory-bounded shape: hot writes land in a small
//! in-memory **workspace**, and [`BulkLoader::flush`](crate::BulkLoader)
//! periodically **seals** the workspace into an immutable on-disk
//! **segment** file. Reads merge the workspace with lazy segment reads,
//! so resident memory holds only per-row *locators* (segment + byte
//! offset), never the million document bodies.
//!
//! On-disk layout of a segmented store directory:
//!
//! ```text
//! store-dir/
//!   SEGMENTS.json      <- manifest: the commit record (written last)
//!   seg-000000.jsonl   <- header line, then doc rows, then link rows
//!   seg-000001.jsonl
//!   ...
//! ```
//!
//! Crash consistency reuses the [`crate::durable`] discipline:
//!
//! * Segment files and the manifest are installed with
//!   [`DurableFs::atomic_write`] — a torn write leaves at most a
//!   sibling `.tmp` prefix, never a half-written segment.
//! * The manifest is rewritten *after* the segment file: a crash
//!   between the two leaves an **orphan** segment file that the
//!   manifest never references. Recovery ignores it and
//!   [`reap_orphan_segments`] (also run by
//!   [`crate::durable::prune_generations`]) deletes it; the workspace
//!   rows it contained were never acked as sealed, so nothing is lost.
//! * On open, every referenced segment is verified against its
//!   recorded length and checksum before any locator is trusted.
//!
//! Segment readers are lazy ("mmap-or-read" resolved to the portable
//! read path): a point lookup seeks to the row's recorded offset and
//! reads exactly one line; scans stream one segment at a time.
//!
//! Semantics deliberately mirror the in-memory store so the two are
//! interchangeable (property-tested in `tests/proptests.rs`), with two
//! documented deviations: the URL index is a 64-bit-hash index verified
//! on read (a hash collision can hide an older row — vanishingly rare
//! and fail-safe), and after a *reopen* the per-topic id lists reflect
//! insertion order with topic overrides applied in place, not the
//! original reassignment order (set-equal, order may differ).

use crate::durable::{checksum, DurableFs};
use crate::tables::{DocumentRow, HostRow, LinkRow};
use crate::StoreError;
use bingo_graph::{HostId, PageId};
use bingo_textproc::fxhash::{self, FxHashMap};
use serde::{Deserialize, Serialize};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// File name of the segment manifest (the commit record).
pub const SEGMENTS_FILE: &str = "SEGMENTS.json";
/// Format marker of the segment manifest.
pub const SEGMENTS_MAGIC: &str = "bingo-segments";
/// Format marker of individual segment files.
pub const SEGMENT_MAGIC: &str = "bingo-segment";
/// Current segment format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Default workspace size (documents) that triggers a seal of the
/// workspace into a new on-disk segment.
pub const DEFAULT_SEAL_EVERY: usize = 4096;

fn url_hash(url: &str) -> u64 {
    fxhash::hash_one(url)
}

fn pe<E: std::fmt::Display>(e: E) -> StoreError {
    StoreError::Persist(e.to_string())
}

/// Parse one JSONL line (the vendored serde_json has no `from_slice`).
fn from_line<T: serde::Deserialize>(line: &[u8]) -> Result<T, StoreError> {
    serde_json::from_str(std::str::from_utf8(line).map_err(pe)?).map_err(pe)
}

/// One sealed segment recorded in the manifest.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Segment file name relative to the store directory.
    pub name: String,
    /// Document rows in the segment.
    pub docs: u64,
    /// Link rows in the segment.
    pub links: u64,
    /// Exact byte length of the file.
    pub len: u64,
    /// [`checksum`] of the file bytes.
    pub checksum: u64,
}

/// The store-level commit record: which segments exist, plus the small
/// mutable state (topic overrides, host table) that rides along.
///
/// Rewritten atomically at every seal. Topic overrides and host upserts
/// that happen *after* the last seal live only in memory until the next
/// seal — durable via [`crate::persist`] snapshots in the meantime.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentManifest {
    /// Format marker ([`SEGMENTS_MAGIC`]).
    pub magic: String,
    /// Format version ([`SEGMENT_VERSION`]).
    pub version: u32,
    /// Number the next sealed segment will take.
    pub next_seg: u64,
    /// Sealed segments in seal order.
    pub segments: Vec<SegmentEntry>,
    /// Re-classification overrides applied to sealed rows:
    /// `(id, topic, confidence)`, sorted by id.
    pub overrides: Vec<(PageId, Option<u32>, f32)>,
    /// Host table, sorted by id.
    pub hosts: Vec<HostRow>,
}

impl SegmentManifest {
    fn empty() -> Self {
        SegmentManifest {
            magic: SEGMENTS_MAGIC.to_string(),
            version: SEGMENT_VERSION,
            next_seg: 0,
            segments: Vec::new(),
            overrides: Vec::new(),
            hosts: Vec::new(),
        }
    }
}

/// First line of every segment file.
#[derive(Debug, Serialize, Deserialize)]
struct SegmentHeader {
    magic: String,
    version: u32,
    seg: u64,
    docs: u64,
    links: u64,
}

/// Locator of one sealed document row: which segment, and where in it.
/// This — not the row — is what stays resident per document.
#[derive(Debug, Clone, Copy)]
struct SegLoc {
    seg: u32,
    offset: u64,
    len: u32,
}

/// A segment file split into lines with their byte offsets.
struct ParsedSegment<'a> {
    header: SegmentHeader,
    /// `(absolute byte offset, line bytes)` for each document row.
    doc_lines: Vec<(u64, &'a [u8])>,
    /// Line bytes for each link row.
    link_lines: Vec<&'a [u8]>,
}

fn parse_segment(bytes: &[u8]) -> Result<ParsedSegment<'_>, StoreError> {
    let mut lines: Vec<(u64, &[u8])> = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let end = bytes[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| pos + i)
            .unwrap_or(bytes.len());
        lines.push((pos as u64, &bytes[pos..end]));
        pos = end + 1;
    }
    let Some(&(_, header_line)) = lines.first() else {
        return Err(pe("empty segment file"));
    };
    let header: SegmentHeader = from_line(header_line)?;
    if header.magic != SEGMENT_MAGIC || header.version != SEGMENT_VERSION {
        return Err(pe(format!("bad segment header magic/version: {header:?}")));
    }
    let expect = 1 + header.docs as usize + header.links as usize;
    if lines.len() != expect {
        return Err(pe(format!(
            "segment line count {} != header {}",
            lines.len(),
            expect
        )));
    }
    let doc_lines = lines[1..1 + header.docs as usize].to_vec();
    let link_lines = lines[1 + header.docs as usize..]
        .iter()
        .map(|&(_, l)| l)
        .collect();
    Ok(ParsedSegment {
        header,
        doc_lines,
        link_lines,
    })
}

/// The disk-backed store state: workspace + sealed segments + resident
/// locator/host indexes. Wrapped in a lock by
/// [`crate::DocumentStore::segmented`].
pub(crate) struct Spine {
    dir: PathBuf,
    manifest: SegmentManifest,
    seal_every: usize,
    // --- in-memory write workspace (insertion order defines segment bytes) ---
    ws_docs: Vec<DocumentRow>,
    ws_index: FxHashMap<PageId, usize>,
    ws_links: Vec<LinkRow>,
    // --- resident indexes over sealed rows ---
    locs: FxHashMap<PageId, SegLoc>,
    /// `fxhash(url) -> id`, verified against the row's URL on read.
    by_url_hash: FxHashMap<u64, PageId>,
    /// Effective topic -> ids, workspace and sealed rows combined,
    /// maintained exactly like the in-memory index.
    by_topic: FxHashMap<u32, Vec<PageId>>,
    /// Re-classification of sealed (immutable) rows, applied on read.
    overrides: FxHashMap<PageId, (Option<u32>, f32)>,
    hosts: FxHashMap<HostId, HostRow>,
    sealed_links: u64,
    /// Overrides/hosts changed since the last manifest commit; a seal
    /// with an empty workspace still recommits the manifest then.
    meta_dirty: bool,
}

impl std::fmt::Debug for Spine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Spine")
            .field("dir", &self.dir)
            .field("segments", &self.manifest.segments.len())
            .field("sealed_docs", &self.locs.len())
            .field("workspace_docs", &self.ws_docs.len())
            .finish()
    }
}

impl Spine {
    fn empty(dir: PathBuf, seal_every: usize) -> Self {
        Spine {
            dir,
            manifest: SegmentManifest::empty(),
            seal_every: seal_every.max(1),
            ws_docs: Vec::new(),
            ws_index: FxHashMap::default(),
            ws_links: Vec::new(),
            locs: FxHashMap::default(),
            by_url_hash: FxHashMap::default(),
            by_topic: FxHashMap::default(),
            overrides: FxHashMap::default(),
            hosts: FxHashMap::default(),
            sealed_links: 0,
            meta_dirty: false,
        }
    }

    /// Open (or create) a segmented store directory: reap orphans from
    /// a crashed seal, verify every referenced segment against the
    /// manifest, and rebuild the resident locator indexes by streaming
    /// each segment once.
    pub(crate) fn open(dir: PathBuf, seal_every: usize) -> Result<Self, StoreError> {
        reap_orphan_segments(&dir);
        let mut spine = Spine::empty(dir, seal_every);
        let manifest_path = spine.dir.join(SEGMENTS_FILE);
        let text = match std::fs::read_to_string(&manifest_path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(spine),
            Err(e) => return Err(pe(e)),
        };
        let manifest: SegmentManifest = serde_json::from_str(&text).map_err(pe)?;
        if manifest.magic != SEGMENTS_MAGIC || manifest.version != SEGMENT_VERSION {
            return Err(pe("bad segment manifest magic/version"));
        }
        spine.overrides = manifest
            .overrides
            .iter()
            .map(|&(id, topic, confidence)| (id, (topic, confidence)))
            .collect();
        spine.hosts = manifest.hosts.iter().map(|h| (h.id, h.clone())).collect();
        for (seg, entry) in manifest.segments.iter().enumerate() {
            let bytes = std::fs::read(spine.dir.join(&entry.name)).map_err(pe)?;
            if bytes.len() as u64 != entry.len || checksum(&bytes) != entry.checksum {
                return Err(pe(format!("segment {} failed verification", entry.name)));
            }
            let parsed = parse_segment(&bytes)?;
            if parsed.header.docs != entry.docs || parsed.header.links != entry.links {
                return Err(pe(format!(
                    "segment {} header/manifest mismatch",
                    entry.name
                )));
            }
            for &(offset, line) in &parsed.doc_lines {
                let row: DocumentRow = from_line(line)?;
                spine.by_url_hash.insert(url_hash(&row.url), row.id);
                let topic = match spine.overrides.get(&row.id) {
                    Some(&(t, _)) => t,
                    None => row.topic,
                };
                if let Some(t) = topic {
                    spine.by_topic.entry(t).or_default().push(row.id);
                }
                spine.locs.insert(
                    row.id,
                    SegLoc {
                        seg: seg as u32,
                        offset,
                        len: line.len() as u32,
                    },
                );
            }
            for line in &parsed.link_lines {
                // Parse to validate; the adjacency is streamed on demand.
                let _: LinkRow = from_line(line)?;
            }
            spine.sealed_links += parsed.header.links;
        }
        spine.manifest = manifest;
        Ok(spine)
    }

    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    pub(crate) fn segment_count(&self) -> usize {
        self.manifest.segments.len()
    }

    pub(crate) fn sealed_documents(&self) -> usize {
        self.locs.len()
    }

    pub(crate) fn workspace_documents(&self) -> usize {
        self.ws_docs.len()
    }

    pub(crate) fn document_count(&self) -> usize {
        self.locs.len() + self.ws_docs.len()
    }

    pub(crate) fn link_count(&self) -> usize {
        self.sealed_links as usize + self.ws_links.len()
    }

    pub(crate) fn host_count(&self) -> usize {
        self.hosts.len()
    }

    pub(crate) fn insert_document(&mut self, row: DocumentRow) -> Result<(), StoreError> {
        if self.ws_index.contains_key(&row.id) || self.locs.contains_key(&row.id) {
            return Err(StoreError::DuplicateKey(row.id));
        }
        self.by_url_hash.insert(url_hash(&row.url), row.id);
        if let Some(topic) = row.topic {
            self.by_topic.entry(topic).or_default().push(row.id);
        }
        self.ws_index.insert(row.id, self.ws_docs.len());
        self.ws_docs.push(row);
        Ok(())
    }

    pub(crate) fn insert_link(&mut self, link: LinkRow) {
        self.ws_links.push(link);
    }

    pub(crate) fn upsert_host(&mut self, row: HostRow) {
        self.hosts.insert(row.id, row);
        self.meta_dirty = true;
    }

    pub(crate) fn set_topic(
        &mut self,
        id: PageId,
        topic: Option<u32>,
        confidence: f32,
    ) -> Result<(), StoreError> {
        let old = if let Some(&i) = self.ws_index.get(&id) {
            let old = self.ws_docs[i].topic;
            self.ws_docs[i].topic = topic;
            self.ws_docs[i].confidence = confidence;
            old
        } else if let Some(&loc) = self.locs.get(&id) {
            let old = match self.overrides.get(&id) {
                Some(&(t, _)) => t,
                None => self.read_sealed(loc)?.topic,
            };
            self.overrides.insert(id, (topic, confidence));
            self.meta_dirty = true;
            old
        } else {
            return Err(StoreError::MissingDocument(id));
        };
        if let Some(old) = old {
            if let Some(list) = self.by_topic.get_mut(&old) {
                list.retain(|&d| d != id);
            }
        }
        if let Some(t) = topic {
            self.by_topic.entry(t).or_default().push(id);
        }
        Ok(())
    }

    /// Read one sealed row from disk and apply any topic override.
    fn read_sealed(&self, loc: SegLoc) -> Result<DocumentRow, StoreError> {
        let entry = &self.manifest.segments[loc.seg as usize];
        let mut f = std::fs::File::open(self.dir.join(&entry.name)).map_err(pe)?;
        f.seek(SeekFrom::Start(loc.offset)).map_err(pe)?;
        let mut buf = vec![0u8; loc.len as usize];
        f.read_exact(&mut buf).map_err(pe)?;
        let mut row: DocumentRow = from_line(&buf)?;
        if let Some(&(topic, confidence)) = self.overrides.get(&row.id) {
            row.topic = topic;
            row.confidence = confidence;
        }
        Ok(row)
    }

    pub(crate) fn document(&self, id: PageId) -> Option<DocumentRow> {
        if let Some(&i) = self.ws_index.get(&id) {
            return Some(self.ws_docs[i].clone());
        }
        let loc = *self.locs.get(&id)?;
        self.read_sealed(loc).ok()
    }

    pub(crate) fn document_by_url(&self, url: &str) -> Option<DocumentRow> {
        let id = *self.by_url_hash.get(&url_hash(url))?;
        // Verify: the hash index may alias distinct URLs (fail-safe miss).
        self.document(id).filter(|row| row.url == url)
    }

    pub(crate) fn contains_url(&self, url: &str) -> bool {
        self.document_by_url(url).is_some()
    }

    pub(crate) fn topic_documents(&self, topic: u32) -> Vec<PageId> {
        self.by_topic.get(&topic).cloned().unwrap_or_default()
    }

    pub(crate) fn host(&self, id: HostId) -> Option<HostRow> {
        self.hosts.get(&id).cloned()
    }

    pub(crate) fn hosts_sorted(&self) -> Vec<HostRow> {
        let mut hosts: Vec<HostRow> = self.hosts.values().cloned().collect();
        hosts.sort_unstable_by_key(|h| h.id);
        hosts
    }

    /// Stream every document row (sealed segments in seal order, then
    /// the workspace), overrides applied.
    pub(crate) fn for_each_document<F: FnMut(&DocumentRow)>(
        &self,
        mut f: F,
    ) -> Result<(), StoreError> {
        for entry in &self.manifest.segments {
            let bytes = std::fs::read(self.dir.join(&entry.name)).map_err(pe)?;
            let parsed = parse_segment(&bytes)?;
            for &(_, line) in &parsed.doc_lines {
                let mut row: DocumentRow = from_line(line)?;
                if let Some(&(topic, confidence)) = self.overrides.get(&row.id) {
                    row.topic = topic;
                    row.confidence = confidence;
                }
                f(&row);
            }
        }
        for row in &self.ws_docs {
            f(row);
        }
        Ok(())
    }

    /// Stream every link row in global insertion order (seal order is
    /// insertion order; workspace links come last).
    pub(crate) fn for_each_link<F: FnMut(&LinkRow)>(&self, mut f: F) -> Result<(), StoreError> {
        for entry in &self.manifest.segments {
            let bytes = std::fs::read(self.dir.join(&entry.name)).map_err(pe)?;
            let parsed = parse_segment(&bytes)?;
            for line in &parsed.link_lines {
                let row: LinkRow = from_line(line)?;
                f(&row);
            }
        }
        for link in &self.ws_links {
            f(link);
        }
        Ok(())
    }

    pub(crate) fn all_documents(&self) -> Vec<DocumentRow> {
        let mut rows = Vec::with_capacity(self.document_count());
        let _ = self.for_each_document(|row| rows.push(row.clone()));
        rows
    }

    pub(crate) fn all_links(&self) -> Vec<LinkRow> {
        let mut links = Vec::with_capacity(self.link_count());
        let _ = self.for_each_link(|l| links.push(l.clone()));
        links
    }

    /// First-occurrence-deduplicated out-edges of `page`, matching the
    /// in-memory edge index (cold path: streams the link log).
    pub(crate) fn successors(&self, page: PageId) -> Vec<PageId> {
        let mut out = Vec::new();
        let _ = self.for_each_link(|l| {
            if l.from == page && !out.contains(&l.to) {
                out.push(l.to);
            }
        });
        out
    }

    /// Distinct predecessors of `page` in first-occurrence order,
    /// matching the in-memory edge index (cold path).
    pub(crate) fn predecessors(&self, page: PageId) -> Vec<PageId> {
        let mut from = Vec::new();
        let _ = self.for_each_link(|l| {
            if l.to == page && !from.contains(&l.from) {
                from.push(l.from);
            }
        });
        from
    }

    pub(crate) fn host_of(&self, page: PageId) -> HostId {
        self.document(page).map(|d| d.host).unwrap_or(0)
    }

    /// Seal the workspace when it has grown past the threshold.
    pub(crate) fn maybe_seal(&mut self, fs: &dyn DurableFs) -> Result<bool, StoreError> {
        if self.ws_docs.len() >= self.seal_every || self.ws_links.len() >= self.seal_every * 16 {
            self.seal(fs)
        } else {
            Ok(false)
        }
    }

    /// Seal the workspace into a new immutable segment file: write the
    /// segment atomically, then rewrite the manifest atomically (the
    /// commit). On any error the workspace is left intact — rows stay
    /// readable, durability is retried at the next seal. A crash
    /// between the two writes leaves an orphan segment file that
    /// recovery ignores and [`reap_orphan_segments`] deletes.
    pub(crate) fn seal(&mut self, fs: &dyn DurableFs) -> Result<bool, StoreError> {
        if self.ws_docs.is_empty() && self.ws_links.is_empty() {
            if !self.meta_dirty {
                return Ok(false);
            }
            // Metadata-only commit: overrides/hosts changed since the
            // last seal but there is no workspace to seal.
            let mut manifest = self.manifest.clone();
            manifest.overrides = self.overrides_sorted();
            manifest.hosts = self.hosts_sorted();
            let mut mjson = Vec::new();
            serde_json::to_writer(&mut mjson, &manifest).map_err(pe)?;
            fs.create_dir_all(&self.dir).map_err(pe)?;
            fs.atomic_write(&self.dir.join(SEGMENTS_FILE), &mjson)
                .map_err(pe)?;
            self.manifest = manifest;
            self.meta_dirty = false;
            return Ok(true);
        }
        let seg_index = self.manifest.segments.len() as u32;
        let seg_no = self.manifest.next_seg;
        let name = format!("seg-{seg_no:06}.jsonl");
        let header = SegmentHeader {
            magic: SEGMENT_MAGIC.to_string(),
            version: SEGMENT_VERSION,
            seg: seg_no,
            docs: self.ws_docs.len() as u64,
            links: self.ws_links.len() as u64,
        };
        let mut bytes = Vec::new();
        serde_json::to_writer(&mut bytes, &header).map_err(pe)?;
        bytes.push(b'\n');
        let mut offsets = Vec::with_capacity(self.ws_docs.len());
        for row in &self.ws_docs {
            let start = bytes.len() as u64;
            serde_json::to_writer(&mut bytes, row).map_err(pe)?;
            offsets.push((start, (bytes.len() as u64 - start) as u32));
            bytes.push(b'\n');
        }
        for link in &self.ws_links {
            serde_json::to_writer(&mut bytes, link).map_err(pe)?;
            bytes.push(b'\n');
        }
        fs.create_dir_all(&self.dir).map_err(pe)?;
        fs.atomic_write(&self.dir.join(&name), &bytes).map_err(pe)?;
        let mut manifest = self.manifest.clone();
        manifest.segments.push(SegmentEntry {
            name,
            docs: self.ws_docs.len() as u64,
            links: self.ws_links.len() as u64,
            len: bytes.len() as u64,
            checksum: checksum(&bytes),
        });
        manifest.next_seg = seg_no + 1;
        manifest.overrides = self.overrides_sorted();
        manifest.hosts = self.hosts_sorted();
        let mut mjson = Vec::new();
        serde_json::to_writer(&mut mjson, &manifest).map_err(pe)?;
        fs.atomic_write(&self.dir.join(SEGMENTS_FILE), &mjson)
            .map_err(pe)?;
        // Committed: move the workspace into the sealed state.
        self.manifest = manifest;
        for (row, (offset, len)) in self.ws_docs.drain(..).zip(offsets) {
            self.locs.insert(
                row.id,
                SegLoc {
                    seg: seg_index,
                    offset,
                    len,
                },
            );
        }
        self.ws_index.clear();
        self.sealed_links += self.ws_links.len() as u64;
        self.ws_links.clear();
        self.meta_dirty = false;
        Ok(true)
    }

    fn overrides_sorted(&self) -> Vec<(PageId, Option<u32>, f32)> {
        let mut overrides: Vec<(PageId, Option<u32>, f32)> = self
            .overrides
            .iter()
            .map(|(&id, &(topic, confidence))| (id, topic, confidence))
            .collect();
        overrides.sort_unstable_by_key(|&(id, _, _)| id);
        overrides
    }

    /// Rewrite every row's term ids through `map` (see
    /// [`crate::DocumentStore::remap_terms`]): workspace rows in place,
    /// sealed segments by rewriting each file and recommitting the
    /// manifest. Not crash-atomic across segments — canonicalization
    /// runs before a crawl's results are persisted, so a crash here
    /// means re-running the crawl, not data loss of an acked seal.
    pub(crate) fn remap_terms(&mut self, map: &[u32]) -> Result<(), StoreError> {
        let remap = |row: &mut DocumentRow| {
            for entry in &mut row.term_freqs {
                entry.0 = map[entry.0 as usize];
            }
            row.term_freqs.sort_unstable_by_key(|&(t, _)| t);
        };
        for row in &mut self.ws_docs {
            remap(row);
        }
        let fs = crate::durable::StdFs;
        for (seg, entry) in self.manifest.segments.iter_mut().enumerate() {
            let bytes = std::fs::read(self.dir.join(&entry.name)).map_err(pe)?;
            let parsed = parse_segment(&bytes)?;
            let mut out = Vec::with_capacity(bytes.len());
            let header_end = bytes.iter().position(|&b| b == b'\n').unwrap_or(0);
            out.extend_from_slice(&bytes[..=header_end]);
            for &(_, line) in &parsed.doc_lines {
                let mut row: DocumentRow = from_line(line)?;
                remap(&mut row);
                let start = out.len() as u64;
                serde_json::to_writer(&mut out, &row).map_err(pe)?;
                self.locs.insert(
                    row.id,
                    SegLoc {
                        seg: seg as u32,
                        offset: start,
                        len: (out.len() as u64 - start) as u32,
                    },
                );
                out.push(b'\n');
            }
            for line in &parsed.link_lines {
                out.extend_from_slice(line);
                out.push(b'\n');
            }
            fs.atomic_write(&self.dir.join(&entry.name), &out)
                .map_err(pe)?;
            entry.len = out.len() as u64;
            entry.checksum = checksum(&out);
        }
        if !self.manifest.segments.is_empty() {
            let mut mjson = Vec::new();
            serde_json::to_writer(&mut mjson, &self.manifest).map_err(pe)?;
            fs.atomic_write(&self.dir.join(SEGMENTS_FILE), &mjson)
                .map_err(pe)?;
        }
        Ok(())
    }
}

/// Delete segment files (and stale `.tmp` siblings) in `dir` that the
/// manifest does not reference — the debris a crash between segment
/// write and manifest commit leaves behind. A missing or unreadable
/// manifest means no segment is referenced. Returns the number of
/// files removed. Single-writer: callers must not reap a directory
/// whose spine is mid-seal in another handle.
pub fn reap_orphan_segments(dir: &Path) -> usize {
    let referenced: std::collections::HashSet<String> =
        std::fs::read_to_string(dir.join(SEGMENTS_FILE))
            .ok()
            .and_then(|text| serde_json::from_str::<SegmentManifest>(&text).ok())
            .map(|m| m.segments.into_iter().map(|s| s.name).collect())
            .unwrap_or_default();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut reaped = 0;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_tmp = name.ends_with(".tmp");
        let base = name.strip_suffix(".tmp").unwrap_or(&name);
        let is_seg = base.starts_with("seg-") && base.ends_with(".jsonl");
        let is_manifest_tmp = is_tmp && base == SEGMENTS_FILE;
        if !(is_seg || is_manifest_tmp) {
            continue;
        }
        if is_seg && !is_tmp && referenced.contains(base) {
            continue;
        }
        if std::fs::remove_file(entry.path()).is_ok() {
            reaped += 1;
        }
    }
    reaped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::StdFs;
    use bingo_textproc::MimeType;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bingo-segment-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn doc(id: u64, topic: Option<u32>) -> DocumentRow {
        DocumentRow {
            id,
            url: format!("http://h{}/p{id}", id % 3),
            host: (id % 3) as u32,
            mime: MimeType::Html,
            depth: 1,
            title: format!("doc {id}"),
            topic,
            confidence: 0.25,
            term_freqs: vec![(1, 2), (7, 1)],
            size: 100,
            fetched_at: id,
        }
    }

    #[test]
    fn seal_reopen_and_point_read() {
        let dir = temp_dir("seal");
        let mut spine = Spine::open(dir.clone(), 4).unwrap();
        for i in 0..6 {
            spine.insert_document(doc(i, Some((i % 2) as u32))).unwrap();
        }
        spine.insert_link(LinkRow {
            from: 0,
            to: 1,
            to_url: "u".into(),
        });
        assert!(spine.seal(&StdFs).unwrap());
        spine.insert_document(doc(6, None)).unwrap();
        assert_eq!(spine.document_count(), 7);
        assert_eq!(spine.sealed_documents(), 6);
        assert_eq!(spine.document(3).unwrap().title, "doc 3");
        assert_eq!(spine.document(6).unwrap().title, "doc 6");
        assert_eq!(spine.document_by_url("http://h1/p4").unwrap().id, 4);
        assert!(spine.document_by_url("http://h1/p99").is_none());
        // Workspace rows survive only via another seal; reopen sees sealed.
        assert!(spine.seal(&StdFs).unwrap());
        drop(spine);
        let spine = Spine::open(dir.clone(), 4).unwrap();
        assert_eq!(spine.segment_count(), 2);
        assert_eq!(spine.document_count(), 7);
        assert_eq!(spine.link_count(), 1);
        assert_eq!(spine.document(5).unwrap().url, "http://h2/p5");
        assert_eq!(spine.successors(0), vec![1]);
        assert_eq!(spine.predecessors(1), vec![0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overrides_apply_to_sealed_rows_and_persist_via_next_seal() {
        let dir = temp_dir("override");
        let mut spine = Spine::open(dir.clone(), 4).unwrap();
        for i in 0..3 {
            spine.insert_document(doc(i, Some(0))).unwrap();
        }
        spine.seal(&StdFs).unwrap();
        spine.set_topic(1, Some(9), 0.75).unwrap();
        assert_eq!(spine.document(1).unwrap().topic, Some(9));
        assert_eq!(spine.topic_documents(0), vec![0, 2]);
        assert_eq!(spine.topic_documents(9), vec![1]);
        // The override is carried into the next manifest commit.
        spine.insert_document(doc(3, None)).unwrap();
        spine.seal(&StdFs).unwrap();
        drop(spine);
        let spine = Spine::open(dir.clone(), 4).unwrap();
        assert_eq!(spine.document(1).unwrap().topic, Some(9));
        assert_eq!(spine.document(1).unwrap().confidence, 0.75);
        assert_eq!(spine.topic_documents(9), vec![1]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphan_segments_are_reaped_and_ignored() {
        let dir = temp_dir("orphan");
        let mut spine = Spine::open(dir.clone(), 4).unwrap();
        spine.insert_document(doc(0, None)).unwrap();
        spine.seal(&StdFs).unwrap();
        // Simulate a crash between seal and manifest commit: an extra
        // segment file the manifest never saw.
        std::fs::write(dir.join("seg-000001.jsonl"), b"orphan bytes").unwrap();
        std::fs::write(dir.join("seg-000002.jsonl.tmp"), b"torn tmp").unwrap();
        assert_eq!(reap_orphan_segments(&dir), 2);
        assert_eq!(reap_orphan_segments(&dir), 0, "idempotent");
        let spine = Spine::open(dir.clone(), 4).unwrap();
        assert_eq!(spine.segment_count(), 1);
        assert_eq!(spine.document_count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_segment_fails_verification_on_open() {
        let dir = temp_dir("corrupt");
        let mut spine = Spine::open(dir.clone(), 4).unwrap();
        for i in 0..2 {
            spine.insert_document(doc(i, None)).unwrap();
        }
        spine.seal(&StdFs).unwrap();
        drop(spine);
        // Flip bytes in place (same length): checksum catches it.
        let seg = dir.join("seg-000000.jsonl");
        let mut bytes = std::fs::read(&seg).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0xff;
        std::fs::write(&seg, &bytes).unwrap();
        assert!(matches!(
            Spine::open(dir.clone(), 4),
            Err(StoreError::Persist(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remap_rewrites_sealed_segments() {
        let dir = temp_dir("remap");
        let mut spine = Spine::open(dir.clone(), 4).unwrap();
        spine.insert_document(doc(0, None)).unwrap();
        spine.seal(&StdFs).unwrap();
        spine.insert_document(doc(1, None)).unwrap();
        let mut map = vec![0u32; 8];
        map[1] = 6;
        map[7] = 2;
        spine.remap_terms(&map).unwrap();
        assert_eq!(spine.document(0).unwrap().term_freqs, vec![(2, 1), (6, 2)]);
        assert_eq!(spine.document(1).unwrap().term_freqs, vec![(2, 1), (6, 2)]);
        drop(spine);
        // The rewritten segment re-verifies and reopens.
        let spine = Spine::open(dir.clone(), 4).unwrap();
        assert_eq!(spine.document(0).unwrap().term_freqs, vec![(2, 1), (6, 2)]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
