//! Capacity-bounded, disk-spilling fingerprint sets.
//!
//! BINGO!'s duplicate filter and the store's auxiliary indexes are pure
//! membership structures over fixed-width fingerprints, and they are the
//! last crawl state that grows linearly with the number of pages (the
//! BUbiNG lesson: URL-seen sets must go off-heap for massive crawls). A
//! [`SpillSet`] keeps a bounded *hot* tier in memory and, once the hot
//! tier reaches its cap, merges it into 16 hash-sharded, sorted,
//! fixed-width record files on disk:
//!
//! * **Exactness.** Membership answers are exact, never probabilistic.
//!   A Bloom-style front filter over the spilled keys only decides
//!   whether a disk probe is needed at all; a positive filter answer is
//!   always confirmed by binary search over the shard file.
//! * **Bounded residency.** Resident state is the hot tier (≤ cap
//!   keys), the front filter bits, one sparse sample key per
//!   `SAMPLE_EVERY` disk records, and tombstones for keys removed
//!   while spilled. Everything else lives in the shard files.
//! * **Crash discipline.** Shard files are rewritten only through
//!   [`DurableFs::atomic_write`], so a kill at any byte leaves the
//!   previous sorted run intact — never a torn file. Spill files are
//!   run-scratch like the frontier's: checkpoints materialize the full
//!   key set ([`SpillSet::to_sorted_vec`]) and recovery never reads
//!   them, so stale files from an aborted run are swept, not replayed.
//! * **Determinism.** Spill points are a pure function of the insertion
//!   sequence and the cap, and all hashing is fxhash, so two same-seed
//!   crawls spill identically and their spill telemetry matches byte
//!   for byte.

use crate::durable::{DurableFs, StdFs};
use bingo_textproc::fxhash::{self, FxHashSet};
use std::cell::Cell;
use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Number of shard files a spilled set is split over; a power of two so
/// the shard of a key is a cheap mask of its hash.
pub const SPILL_SHARDS: usize = 16;

/// Bytes per on-disk record (one little-endian `u128` fingerprint).
const RECORD_BYTES: usize = 16;

/// One resident sample key per this many disk records: a membership
/// probe binary-searches the samples, then reads and scans a single
/// block of at most this many records.
const SAMPLE_EVERY: usize = 64;

/// File-name prefixes of every spill-file family the system writes.
/// The stale-file sweep on recovery reaps all of them — frontier slots,
/// dedup shards, vocabulary string logs, threaded work-queue overflow,
/// distributed lease journals, and per-node scratch directories alike
/// (see [`reap_stale_spill_files`]).
pub const SPILL_FILE_PREFIXES: &[&str] = &["slot-", "dedup-", "vocab-", "work-", "lease-", "node-"];

/// Suffix shared by all spill scratch files.
pub const SPILL_FILE_SUFFIX: &str = ".spill";

/// Suffix of per-node scratch *directories* a distributed crawl's
/// worker nodes write under (`node-3.scratch/`). A killed node leaves
/// its directory behind; recovery never reads it — node state is
/// restored from committed snapshot generations — so stale ones are
/// swept whole.
pub const SCRATCH_DIR_SUFFIX: &str = ".scratch";

/// Where and how aggressively a [`SpillSet`] spills.
#[derive(Debug, Clone)]
pub struct SpillSetConfig {
    /// Directory the shard files live in (created if missing).
    pub dir: PathBuf,
    /// File-name prefix, e.g. `dedup-url-` → `dedup-url-3.spill`.
    pub prefix: String,
    /// Hot-tier capacity in keys; reaching it triggers a merge of the
    /// whole hot tier into the shard files.
    pub hot_cap: usize,
    /// log2 of the front-filter size in bits. 26 (8 MiB) keeps the
    /// false-positive rate in the low percent for tens of millions of
    /// keys; tests use much smaller filters to exercise the disk path.
    pub bloom_bits_log2: u32,
}

impl SpillSetConfig {
    /// Conventional defaults: 1M hot keys, an 8 MiB front filter.
    pub fn new(dir: impl Into<PathBuf>, prefix: impl Into<String>) -> Self {
        SpillSetConfig {
            dir: dir.into(),
            prefix: prefix.into(),
            hot_cap: 1 << 20,
            bloom_bits_log2: 26,
        }
    }
}

/// Deterministic counters describing a [`SpillSet`]'s behavior.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpillSetStats {
    /// Keys currently resident in the hot tier.
    pub hot: usize,
    /// Keys currently in shard files (tombstoned ones included).
    pub spilled: usize,
    /// Spilled keys logically removed but not yet compacted away.
    pub tombstones: usize,
    /// Hot-tier merges into the shard files so far.
    pub merges: u64,
    /// Disk probes issued (front filter said "maybe").
    pub disk_probes: u64,
    /// Disk probes that found the key (the filter told the truth).
    pub disk_hits: u64,
    /// Shard-file writes that failed; the affected keys stayed hot, so
    /// answers remain exact at the cost of the memory bound.
    pub io_errors: u64,
}

/// Two-probe Bloom front filter over the spilled keys. A negative
/// answer is authoritative (no disk probe); a positive answer is merely
/// a license to go look.
pub(crate) struct Bloom {
    words: Vec<u64>,
    mask: u64,
}

impl Bloom {
    pub(crate) fn new(bits_log2: u32) -> Self {
        let bits = 1u64 << bits_log2.clamp(6, 36);
        Bloom {
            words: vec![0u64; (bits / 64) as usize],
            mask: bits - 1,
        }
    }

    fn probes(key: u128) -> (u64, u64) {
        let h1 = fxhash::hash_one(&key);
        let h2 = fxhash::hash_one(&h1) | 1;
        (h1, h1.wrapping_add(h2))
    }

    pub(crate) fn add(&mut self, key: u128) {
        let (a, b) = Self::probes(key);
        for bit in [a & self.mask, b & self.mask] {
            self.words[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    pub(crate) fn maybe(&self, key: u128) -> bool {
        let (a, b) = Self::probes(key);
        [a & self.mask, b & self.mask]
            .iter()
            .all(|bit| self.words[(bit / 64) as usize] & (1 << (bit % 64)) != 0)
    }
}

/// One sorted shard file plus its resident sparse sample index.
struct ColdShard {
    path: PathBuf,
    /// Read handle, reopened after every merge rewrite.
    file: Option<File>,
    /// Records in the file.
    count: usize,
    /// Key of record `i * SAMPLE_EVERY` for each `i` — the binary-search
    /// skeleton that turns a probe into one block read.
    samples: Vec<u128>,
}

impl ColdShard {
    fn read_block(&self, start: usize, len: usize) -> io::Result<Vec<u128>> {
        let file = self
            .file
            .as_ref()
            .ok_or_else(|| io::Error::other("spill shard not open"))?;
        let mut buf = vec![0u8; len * RECORD_BYTES];
        file.read_exact_at(&mut buf, (start * RECORD_BYTES) as u64)?;
        Ok(buf
            .chunks_exact(RECORD_BYTES)
            .map(|c| u128::from_le_bytes(c.try_into().expect("16-byte chunk")))
            .collect())
    }

    /// Exact membership: binary-search the samples, read one block,
    /// binary-search the block.
    fn contains(&self, key: u128) -> io::Result<bool> {
        if self.count == 0 || self.samples.is_empty() || key < self.samples[0] {
            return Ok(false);
        }
        let idx = self.samples.partition_point(|&s| s <= key) - 1;
        let start = idx * SAMPLE_EVERY;
        let len = SAMPLE_EVERY.min(self.count - start);
        let block = self.read_block(start, len)?;
        Ok(block.binary_search(&key).is_ok())
    }

    /// All records in the file, in sorted order.
    fn read_all(&self) -> io::Result<Vec<u128>> {
        if self.count == 0 {
            return Ok(Vec::new());
        }
        self.read_block(0, self.count)
    }
}

/// The spilling backend; absent entirely for resident sets.
struct Cold {
    fs: Arc<dyn DurableFs>,
    hot_cap: usize,
    shards: Vec<ColdShard>,
    bloom: Bloom,
    /// Keys logically removed while living in a shard file; physically
    /// dropped at the next merge touching their shard.
    tombstones: FxHashSet<u128>,
    spilled: usize,
    merges: u64,
    // Probe counters are `Cell`s so read-only membership checks keep
    // the historical `&self` signatures of the dedup filter.
    disk_probes: Cell<u64>,
    disk_hits: Cell<u64>,
    io_errors: Cell<u64>,
}

impl Cold {
    fn shard_of(key: u128) -> usize {
        fxhash::hash_one(&key) as usize & (SPILL_SHARDS - 1)
    }

    fn contains(&self, key: u128) -> bool {
        if self.spilled == 0 || !self.bloom.maybe(key) {
            return false;
        }
        self.disk_probes.set(self.disk_probes.get() + 1);
        match self.shards[Self::shard_of(key)].contains(key) {
            Ok(found) => {
                if found {
                    self.disk_hits.set(self.disk_hits.get() + 1);
                }
                found
            }
            Err(_) => {
                // A failed probe cannot invent a duplicate: treat as
                // absent (the caller may re-insert; exactness of
                // *positive* answers is what dedup correctness needs).
                self.io_errors.set(self.io_errors.get() + 1);
                false
            }
        }
    }
}

/// An exact membership set over `u128` fingerprints with a bounded
/// resident hot tier and sorted shard files for the cold mass. Without
/// a [`SpillSetConfig`] it degenerates to a plain hash set, bit-for-bit
/// equivalent to the pre-spill implementation.
pub struct SpillSet {
    hot: FxHashSet<u128>,
    cold: Option<Cold>,
}

impl std::fmt::Debug for SpillSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillSet")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for SpillSet {
    fn default() -> Self {
        Self::resident()
    }
}

impl SpillSet {
    /// A purely in-memory set (no cap, no disk).
    pub fn resident() -> Self {
        SpillSet {
            hot: FxHashSet::default(),
            cold: None,
        }
    }

    /// A spilling set writing shard files through `fs`. The directory
    /// is created; pre-existing shard files of the same prefix are
    /// scratch from an aborted run and must be swept by the caller
    /// first (see [`reap_stale_spill_files`]).
    pub fn spilling(cfg: &SpillSetConfig, fs: Arc<dyn DurableFs>) -> Self {
        fs.create_dir_all(&cfg.dir).expect("spill dir");
        let shards = (0..SPILL_SHARDS)
            .map(|s| ColdShard {
                path: cfg
                    .dir
                    .join(format!("{}{s}{SPILL_FILE_SUFFIX}", cfg.prefix)),
                file: None,
                count: 0,
                samples: Vec::new(),
            })
            .collect();
        SpillSet {
            hot: FxHashSet::default(),
            cold: Some(Cold {
                fs,
                hot_cap: cfg.hot_cap.max(1),
                shards,
                bloom: Bloom::new(cfg.bloom_bits_log2),
                tombstones: FxHashSet::default(),
                spilled: 0,
                merges: 0,
                disk_probes: Cell::new(0),
                disk_hits: Cell::new(0),
                io_errors: Cell::new(0),
            }),
        }
    }

    /// A spilling set on the real filesystem.
    pub fn spilling_std(cfg: &SpillSetConfig) -> Self {
        Self::spilling(cfg, Arc::new(StdFs))
    }

    /// Insert `key`; `true` when it was absent.
    pub fn insert(&mut self, key: u128) -> bool {
        if self.hot.contains(&key) {
            return false;
        }
        if let Some(cold) = &mut self.cold {
            if cold.tombstones.contains(&key) {
                // The key is physically on disk but logically removed:
                // resurrect it in place instead of duplicating it hot.
                cold.tombstones.remove(&key);
                return true;
            }
            if cold.contains(key) {
                return false;
            }
        }
        self.hot.insert(key);
        let over_cap = self
            .cold
            .as_ref()
            .is_some_and(|c| self.hot.len() >= c.hot_cap);
        if over_cap {
            self.spill();
        }
        true
    }

    /// Exact membership without mutation of the set contents (probe
    /// counters still advance).
    pub fn contains(&self, key: u128) -> bool {
        if self.hot.contains(&key) {
            return true;
        }
        match &self.cold {
            Some(cold) => !cold.tombstones.contains(&key) && cold.contains(key),
            None => false,
        }
    }

    /// Remove `key`; `true` when it was present. Spilled keys are
    /// tombstoned and physically dropped at the next merge.
    pub fn remove(&mut self, key: u128) -> bool {
        if self.hot.remove(&key) {
            return true;
        }
        match &mut self.cold {
            Some(cold) if !cold.tombstones.contains(&key) && cold.contains(key) => {
                cold.tombstones.insert(key);
                true
            }
            _ => false,
        }
    }

    /// Number of keys logically present.
    pub fn len(&self) -> usize {
        let cold = self
            .cold
            .as_ref()
            .map(|c| c.spilled - c.tombstones.len())
            .unwrap_or(0);
        self.hot.len() + cold
    }

    /// True when no keys are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deterministic behavior counters.
    pub fn stats(&self) -> SpillSetStats {
        match &self.cold {
            Some(c) => SpillSetStats {
                hot: self.hot.len(),
                spilled: c.spilled,
                tombstones: c.tombstones.len(),
                merges: c.merges,
                disk_probes: c.disk_probes.get(),
                disk_hits: c.disk_hits.get(),
                io_errors: c.io_errors.get(),
            },
            None => SpillSetStats {
                hot: self.hot.len(),
                ..SpillSetStats::default()
            },
        }
    }

    /// Merge the entire hot tier into the shard files. Public so
    /// callers can force a spill at a quiescent point (tests, memory
    /// pressure); normally triggered by the hot cap.
    pub fn spill(&mut self) {
        let Some(cold) = &mut self.cold else {
            return;
        };
        if self.hot.is_empty() && cold.tombstones.is_empty() {
            return;
        }
        // Route every hot key and tombstone to its shard, sorted.
        let mut incoming: Vec<Vec<u128>> = vec![Vec::new(); SPILL_SHARDS];
        for &key in &self.hot {
            incoming[Cold::shard_of(key)].push(key);
        }
        let mut dead: Vec<Vec<u128>> = vec![Vec::new(); SPILL_SHARDS];
        for &key in &cold.tombstones {
            dead[Cold::shard_of(key)].push(key);
        }
        cold.merges += 1;
        for s in 0..SPILL_SHARDS {
            if incoming[s].is_empty() && dead[s].is_empty() {
                continue;
            }
            incoming[s].sort_unstable();
            let shard = &mut cold.shards[s];
            let old = match shard.read_all() {
                Ok(old) => old,
                Err(_) => {
                    // Unreadable shard: keep its keys' replacements hot
                    // (exactness over the memory bound).
                    cold.io_errors.set(cold.io_errors.get() + 1);
                    continue;
                }
            };
            let dead_set: FxHashSet<u128> = dead[s].iter().copied().collect();
            let mut merged: Vec<u128> = Vec::with_capacity(old.len() + incoming[s].len());
            let (mut i, mut j) = (0, 0);
            while i < old.len() || j < incoming[s].len() {
                let take_old =
                    j >= incoming[s].len() || (i < old.len() && old[i] <= incoming[s][j]);
                let key = if take_old {
                    i += 1;
                    old[i - 1]
                } else {
                    j += 1;
                    incoming[s][j - 1]
                };
                if !dead_set.contains(&key) {
                    merged.push(key);
                }
            }
            let mut bytes = Vec::with_capacity(merged.len() * RECORD_BYTES);
            for key in &merged {
                bytes.extend_from_slice(&key.to_le_bytes());
            }
            if cold.fs.atomic_write(&shard.path, &bytes).is_err() {
                // The old sorted run is still intact (atomic_write never
                // tears); the incoming keys simply stay hot.
                cold.io_errors.set(cold.io_errors.get() + 1);
                continue;
            }
            match File::open(&shard.path) {
                Ok(f) => shard.file = Some(f),
                Err(_) => {
                    cold.io_errors.set(cold.io_errors.get() + 1);
                    continue;
                }
            }
            // This shard went old.len() → merged.len() records.
            cold.spilled = cold.spilled + merged.len() - old.len();
            shard.count = merged.len();
            shard.samples = merged.iter().step_by(SAMPLE_EVERY).copied().collect();
            // Hot keys and tombstones are disjoint by construction
            // (re-inserting a tombstoned key resurrects it on disk
            // instead of going hot), so every incoming key enters the
            // front filter.
            for &key in &incoming[s] {
                cold.bloom.add(key);
                self.hot.remove(&key);
            }
            for key in &dead[s] {
                cold.tombstones.remove(key);
            }
        }
    }

    /// Materialize every logically present key, sorted — the
    /// self-contained checkpoint form (recovery never reads spill
    /// files). Panics on an unreadable shard file, like the frontier's
    /// spill materialization: a checkpoint over unreadable scratch
    /// would silently lose fingerprints.
    pub fn to_sorted_vec(&self) -> Vec<u128> {
        let mut keys: Vec<u128> = self.hot.iter().copied().collect();
        if let Some(cold) = &self.cold {
            for shard in &cold.shards {
                for key in shard.read_all().expect("spill shard read") {
                    if !cold.tombstones.contains(&key) {
                        keys.push(key);
                    }
                }
            }
        }
        keys.sort_unstable();
        keys
    }
}

/// Delete leftover run-scratch in `dir` whose name starts with one of
/// `prefixes`:
///
/// * spill files (`.spill`, or `.spill.tmp` — the torn sibling a crash
///   mid-[`DurableFs::atomic_write`] leaves behind),
/// * any other torn `.tmp` sibling of an atomic write, e.g. the
///   `lease-journal.json.tmp` a killed coordinator abandons,
/// * per-node scratch *directories* (`node-3.scratch/`) left by killed
///   worker nodes, removed whole.
///
/// None of these are ever part of recovery — checkpoints and snapshot
/// generations are self-contained — so stale ones from an aborted run
/// are pure garbage. Returns how many files and directories were
/// removed.
pub fn reap_stale_spill_files(dir: &Path, prefixes: &[&str]) -> usize {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut reaped = 0;
    for entry in rd.filter_map(|e| e.ok()) {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let base = name.strip_suffix(".tmp").unwrap_or(&name);
        if !prefixes.iter().any(|p| base.starts_with(p)) {
            continue;
        }
        let is_dir = entry.file_type().map(|t| t.is_dir()).unwrap_or(false);
        let removed = if is_dir {
            base.ends_with(SCRATCH_DIR_SUFFIX) && std::fs::remove_dir_all(entry.path()).is_ok()
        } else {
            (base.ends_with(SPILL_FILE_SUFFIX) || name.ends_with(".tmp"))
                && std::fs::remove_file(entry.path()).is_ok()
        };
        if removed {
            reaped += 1;
        }
    }
    reaped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::CrashFs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bingo-spillset-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn tiny_cfg(dir: &Path) -> SpillSetConfig {
        SpillSetConfig {
            dir: dir.to_path_buf(),
            prefix: "dedup-t-".to_string(),
            hot_cap: 8,
            bloom_bits_log2: 10,
        }
    }

    /// Deterministic pseudo-random key stream with repeats.
    fn key_stream(n: usize) -> Vec<u128> {
        (0..n)
            .map(|i| fxhash::hash_one(&(i % (n / 2 + 1))) as u128)
            .collect()
    }

    #[test]
    fn spilled_set_answers_like_a_hash_set() {
        let dir = temp_dir("equiv");
        let mut spilled = SpillSet::spilling_std(&tiny_cfg(&dir));
        let mut model: FxHashSet<u128> = FxHashSet::default();
        for key in key_stream(400) {
            assert_eq!(spilled.insert(key), model.insert(key), "insert {key}");
            assert_eq!(spilled.len(), model.len());
        }
        for key in key_stream(400) {
            assert!(spilled.contains(key));
        }
        assert!(!spilled.contains(0xdead_beef));
        assert!(spilled.stats().merges > 0, "hot cap 8 must have spilled");
        assert_eq!(
            spilled.to_sorted_vec(),
            {
                let mut v: Vec<u128> = model.iter().copied().collect();
                v.sort_unstable();
                v
            },
            "materialized snapshot matches the model"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_tombstones_spilled_keys_and_reinsert_resurrects() {
        let dir = temp_dir("tombstone");
        let mut s = SpillSet::spilling_std(&tiny_cfg(&dir));
        let keys = key_stream(100);
        for &k in &keys {
            s.insert(k);
        }
        let victim = keys[0];
        assert!(s.remove(victim));
        assert!(!s.contains(victim));
        assert!(!s.remove(victim), "double remove is a no-op");
        assert!(s.insert(victim), "reinsert after remove is new");
        assert!(s.contains(victim));
        // Force a merge: tombstones drain, contents stay logically equal.
        let before = s.to_sorted_vec();
        s.spill();
        assert_eq!(s.to_sorted_vec(), before);
        assert_eq!(s.stats().tombstones, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resident_set_never_touches_disk() {
        let mut s = SpillSet::resident();
        for key in key_stream(100) {
            s.insert(key);
        }
        let st = s.stats();
        assert_eq!((st.spilled, st.merges, st.disk_probes), (0, 0, 0));
    }

    #[test]
    fn crash_during_merge_keeps_answers_exact_and_files_untorn() {
        // Sweep the crash point through the byte stream of the shard
        // rewrites: whatever the budget, membership answers stay exact
        // (keys that failed to spill remain hot) and every shard file
        // on disk is a whole, sorted run.
        let keys = key_stream(120);
        for budget in (0..4000u64).step_by(61) {
            let dir = temp_dir(&format!("crash-{budget}"));
            let fs = Arc::new(CrashFs::with_budget(budget));
            let mut s = SpillSet::spilling(&tiny_cfg(&dir), fs.clone());
            let mut model: FxHashSet<u128> = FxHashSet::default();
            for &k in &keys {
                assert_eq!(s.insert(k), model.insert(k), "budget {budget} key {k}");
            }
            for &k in &keys {
                assert!(s.contains(k), "budget {budget}: lost key {k}");
            }
            assert_eq!(s.len(), model.len(), "budget {budget}");
            // Every shard file parses as sorted fixed-width records.
            if let Ok(rd) = std::fs::read_dir(&dir) {
                for entry in rd.filter_map(|e| e.ok()) {
                    let name = entry.file_name().to_string_lossy().to_string();
                    if !name.ends_with(SPILL_FILE_SUFFIX) {
                        continue; // .tmp debris of the crashed write
                    }
                    let bytes = std::fs::read(entry.path()).unwrap();
                    assert_eq!(bytes.len() % RECORD_BYTES, 0, "torn {name}");
                    let recs: Vec<u128> = bytes
                        .chunks_exact(RECORD_BYTES)
                        .map(|c| u128::from_le_bytes(c.try_into().unwrap()))
                        .collect();
                    assert!(recs.windows(2).all(|w| w[0] < w[1]), "unsorted {name}");
                }
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn stale_files_are_reaped_by_prefix() {
        let dir = temp_dir("reap");
        std::fs::create_dir_all(&dir).unwrap();
        for name in [
            "slot-0.spill",
            "dedup-url-3.spill",
            "vocab-7.spill",
            "work-0.spill",
            "keep.jsonl",
            "other-1.spill",
        ] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        let reaped = reap_stale_spill_files(&dir, SPILL_FILE_PREFIXES);
        assert_eq!(reaped, 4);
        assert!(dir.join("keep.jsonl").exists());
        assert!(dir.join("other-1.spill").exists(), "unknown prefix spared");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_journal_temps_and_scratch_dirs_are_reaped() {
        let dir = temp_dir("reap-dist");
        std::fs::create_dir_all(&dir).unwrap();
        // Torn atomic-write sibling of a lease journal, and a spill temp.
        std::fs::write(dir.join("lease-journal.json.tmp"), b"torn").unwrap();
        std::fs::write(dir.join("slot-2.spill.tmp"), b"torn").unwrap();
        // Committed journal: never touched.
        std::fs::write(dir.join("lease-journal.json"), b"{}").unwrap();
        // Scratch directory of a killed node, with contents.
        let scratch = dir.join("node-3.scratch");
        std::fs::create_dir_all(&scratch).unwrap();
        std::fs::write(scratch.join("seg-000001.jsonl"), b"x").unwrap();
        // Directories that merely share a prefix are spared.
        std::fs::create_dir_all(dir.join("node-0")).unwrap();
        // Unknown-prefix temp file is spared.
        std::fs::write(dir.join("other.json.tmp"), b"torn").unwrap();

        let reaped = reap_stale_spill_files(&dir, SPILL_FILE_PREFIXES);
        assert_eq!(reaped, 3, "journal temp + spill temp + scratch dir");
        assert!(dir.join("lease-journal.json").exists(), "committed spared");
        assert!(dir.join("node-0").exists(), "non-scratch dir spared");
        assert!(dir.join("other.json.tmp").exists(), "unknown prefix spared");
        assert!(!scratch.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
