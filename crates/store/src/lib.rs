//! Embedded storage engine — the role Oracle9i plays for BINGO!
//! (Section 4.1).
//!
//! The paper's hard-won lessons are baked in:
//!
//! * **Flat relations.** The first BINGO! prototype used object-relational
//!   nested tables and suffered Cartesian-product plans; the production
//!   version switched to "a schema with 24 flat relations". This engine
//!   stores typed flat rows (documents, links, hosts) with hash indexes —
//!   no nesting.
//! * **Batched bulk loading.** "Each thread batches the storing of new
//!   documents ... first collecting a certain number of documents in
//!   workspaces and then invoking the bulk loader", sustaining roughly ten
//!   thousand documents per minute. [`bulk::BulkLoader`] reproduces this:
//!   per-thread workspaces flush whole batches under a single lock
//!   acquisition.
//! * The store doubles as the idf corpus and the base for the local
//!   search engine's postprocessing.
//!
//! Persistence is snapshot-based ([`persist`]): the crawl result database
//! can be saved and reloaded between the crawl and postprocessing
//! sessions.

pub mod bulk;
pub mod durable;
pub mod persist;
pub mod segment;
pub mod spill;
pub mod tables;

pub use bulk::{BulkLoader, BulkLoaderObs};
pub use durable::{CrashFs, DurableFs, GenerationWriter, StdFs};
pub use segment::{
    reap_orphan_segments, CompactionConfig, CompactionStats, CompactionTelemetry,
    SegmentStoreConfig, DEFAULT_SEAL_EVERY, SEGMENTS_FILE, SPARSE_SAMPLE_EVERY,
};
pub use spill::{
    reap_stale_spill_files, SpillSet, SpillSetConfig, SpillSetStats, SPILL_FILE_PREFIXES,
};
pub use tables::{DocumentRow, HostRow, HostState, LinkRow};

use bingo_graph::{HostId, LinkSource, PageId};
use bingo_textproc::fxhash::FxHashMap;
use parking_lot::RwLock;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Errors surfaced by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A row with the same primary key already exists.
    DuplicateKey(PageId),
    /// Referenced document does not exist.
    MissingDocument(PageId),
    /// Snapshot (de)serialization failure.
    Persist(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::DuplicateKey(id) => write!(f, "duplicate document id {id}"),
            StoreError::MissingDocument(id) => write!(f, "missing document id {id}"),
            StoreError::Persist(msg) => write!(f, "persistence error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// The in-memory relational state: flat tables plus derived indexes.
#[derive(Debug, Default)]
pub(crate) struct Inner {
    pub(crate) documents: FxHashMap<PageId, DocumentRow>,
    pub(crate) links: Vec<LinkRow>,
    pub(crate) hosts: FxHashMap<HostId, HostRow>,
    // Derived indexes.
    pub(crate) by_url: FxHashMap<String, PageId>,
    pub(crate) by_topic: FxHashMap<u32, Vec<PageId>>,
    pub(crate) out_links: FxHashMap<PageId, Vec<PageId>>,
    pub(crate) in_links: FxHashMap<PageId, Vec<PageId>>,
}

impl Inner {
    fn insert_document(&mut self, row: DocumentRow) -> Result<(), StoreError> {
        if self.documents.contains_key(&row.id) {
            return Err(StoreError::DuplicateKey(row.id));
        }
        self.by_url.insert(row.url.clone(), row.id);
        if let Some(topic) = row.topic {
            self.by_topic.entry(topic).or_default().push(row.id);
        }
        self.documents.insert(row.id, row);
        Ok(())
    }

    fn insert_link(&mut self, link: LinkRow) {
        let out = self.out_links.entry(link.from).or_default();
        if !out.contains(&link.to) {
            out.push(link.to);
            self.in_links.entry(link.to).or_default().push(link.from);
        }
        self.links.push(link);
    }

    fn set_topic(
        &mut self,
        id: PageId,
        topic: Option<u32>,
        confidence: f32,
    ) -> Result<(), StoreError> {
        let row = self
            .documents
            .get_mut(&id)
            .ok_or(StoreError::MissingDocument(id))?;
        if let Some(old) = row.topic {
            if let Some(list) = self.by_topic.get_mut(&old) {
                list.retain(|&d| d != id);
            }
        }
        row.topic = topic;
        row.confidence = confidence;
        if let Some(t) = topic {
            self.by_topic.entry(t).or_default().push(id);
        }
        Ok(())
    }
}

/// A consumer of accepted document inserts, invoked *after* the store's
/// write lock is released — e.g. a live inverted index ingesting rows as
/// the crawler's bulk loader commits them. Rows rejected as duplicates
/// are never forwarded, so a tee only ever sees rows that are actually
/// in the store (index contents stay a subset of store contents).
pub trait IndexTee: Send + Sync {
    /// Observe a batch of rows that were just accepted by the store.
    fn on_insert(&self, rows: &[DocumentRow]);

    /// Observe a batch of link rows just recorded (same after-lock-drop
    /// discipline as [`IndexTee::on_insert`]). Default: ignore — only
    /// consumers that maintain link-derived state (e.g. the crawler's
    /// host-level webgraph) override this.
    fn on_links(&self, _links: &[LinkRow]) {}
}

/// Fan-out combinator: forwards every observation to both tees, in
/// order. Built by [`DocumentStore::with_added_tee`] so independent
/// consumers (live index, host graph) can observe the same store.
struct TeePair(Arc<dyn IndexTee>, Arc<dyn IndexTee>);

impl IndexTee for TeePair {
    fn on_insert(&self, rows: &[DocumentRow]) {
        self.0.on_insert(rows);
        self.1.on_insert(rows);
    }

    fn on_links(&self, links: &[LinkRow]) {
        self.0.on_links(links);
        self.1.on_links(links);
    }
}

/// The document store: cheaply cloneable handle over the shared state.
///
/// All methods take `&self`; interior locking follows the paper's setup of
/// many crawler threads writing through dedicated connections.
///
/// ```
/// use bingo_store::{DocumentStore, DocumentRow};
/// use bingo_textproc::MimeType;
///
/// let store = DocumentStore::new();
/// store.insert_document(DocumentRow {
///     id: 1, url: "http://h/a".into(), host: 0, mime: MimeType::Html,
///     depth: 0, title: "a".into(), topic: Some(2), confidence: 0.5,
///     term_freqs: vec![], size: 10, fetched_at: 0,
/// }).unwrap();
/// assert_eq!(store.topic_documents(2), vec![1]);
/// assert!(store.contains_url("http://h/a"));
/// ```
#[derive(Clone, Default)]
pub struct DocumentStore {
    inner: Arc<RwLock<Inner>>,
    /// Disk-backed segmented state; `None` for the classic all-in-memory
    /// store. When set, `inner` is unused — every method dispatches to
    /// the spine. See [`DocumentStore::segmented`].
    pub(crate) spine: Option<Arc<RwLock<segment::Spine>>>,
    /// Post-insert observer (shared across clones). `None` on the
    /// common batch path; see [`DocumentStore::with_tee`].
    tee: Option<Arc<dyn IndexTee>>,
}

impl std::fmt::Debug for DocumentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocumentStore")
            .field("inner", &self.inner)
            .field("spine", &self.spine)
            .field("tee", &self.tee.as_ref().map(|_| "IndexTee"))
            .finish()
    }
}

impl DocumentStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open (or create) a disk-backed segmented store in `dir` with the
    /// default seal threshold ([`segment::DEFAULT_SEAL_EVERY`]). The
    /// same API as the in-memory store, but document/link rows live in
    /// append-only on-disk segments behind a bounded in-memory write
    /// workspace — see [`segment`] for the layout and crash story.
    pub fn segmented<P: AsRef<Path>>(dir: P) -> Result<Self, StoreError> {
        Self::segmented_with(dir, segment::DEFAULT_SEAL_EVERY)
    }

    /// [`DocumentStore::segmented`] with an explicit seal threshold
    /// (documents buffered in the workspace before
    /// [`DocumentStore::commit_sealed`] seals a segment).
    pub fn segmented_with<P: AsRef<Path>>(dir: P, seal_every: usize) -> Result<Self, StoreError> {
        Self::segmented_cfg(
            dir,
            segment::SegmentStoreConfig {
                seal_every,
                ..Default::default()
            },
        )
    }

    /// [`DocumentStore::segmented`] with full control over the index
    /// mode and compaction policy ([`segment::SegmentStoreConfig`]).
    /// `sparse: true` keeps only a sparse block index resident (every
    /// [`segment::SPARSE_SAMPLE_EVERY`]th row per segment plus fence
    /// keys) instead of one locator per sealed row; `compaction`
    /// merges runs of small sealed segments after each seal.
    pub fn segmented_cfg<P: AsRef<Path>>(
        dir: P,
        cfg: segment::SegmentStoreConfig,
    ) -> Result<Self, StoreError> {
        let spine = segment::Spine::open(dir.as_ref().to_path_buf(), cfg)?;
        Ok(DocumentStore {
            inner: Arc::default(),
            spine: Some(Arc::new(RwLock::new(spine))),
            tee: None,
        })
    }

    /// True when this store is disk-backed ([`DocumentStore::segmented`]).
    pub fn is_segmented(&self) -> bool {
        self.spine.is_some()
    }

    /// Directory of the segmented store (`None` for in-memory).
    pub fn segment_dir(&self) -> Option<PathBuf> {
        self.spine.as_ref().map(|s| s.read().dir().to_path_buf())
    }

    /// Number of sealed on-disk segments (0 for in-memory stores).
    pub fn segment_count(&self) -> usize {
        self.spine.as_ref().map_or(0, |s| s.read().segment_count())
    }

    /// Documents living in sealed on-disk segments (0 for in-memory
    /// stores).
    pub fn sealed_documents(&self) -> usize {
        self.spine
            .as_ref()
            .map_or(0, |s| s.read().sealed_documents())
    }

    /// Documents currently buffered in the in-memory write workspace of
    /// a segmented store (0 for in-memory stores, where every row is
    /// "workspace").
    pub fn workspace_documents(&self) -> usize {
        self.spine
            .as_ref()
            .map_or(0, |s| s.read().workspace_documents())
    }

    /// Seal the workspace into a new on-disk segment if it has grown
    /// past the seal threshold; no-op on in-memory stores. Called by
    /// [`BulkLoader::flush`] after every batch. Returns whether a
    /// segment was sealed.
    pub fn commit_sealed(&self) -> Result<bool, StoreError> {
        match &self.spine {
            Some(spine) => spine.write().maybe_seal(&StdFs),
            None => Ok(false),
        }
    }

    /// Force-seal the workspace regardless of size (e.g. at crawl end);
    /// no-op on in-memory stores.
    pub fn seal_now(&self) -> Result<bool, StoreError> {
        self.seal_now_with(&StdFs)
    }

    /// [`DocumentStore::seal_now`] through an explicit [`DurableFs`],
    /// so crash tests can kill the seal at an exact byte offset.
    pub fn seal_now_with(&self, fs: &dyn DurableFs) -> Result<bool, StoreError> {
        match &self.spine {
            Some(spine) => spine.write().seal(fs),
            None => Ok(false),
        }
    }

    /// Run one compaction pass now (merge the first eligible run of
    /// small sealed segments) regardless of the seal cycle; no-op on
    /// in-memory stores or when no compaction policy is configured.
    /// Returns whether a run was compacted. The explicit [`DurableFs`]
    /// lets crash tests kill the rewrite at an exact byte offset.
    pub fn compact_now_with(&self, fs: &dyn DurableFs) -> Result<bool, StoreError> {
        match &self.spine {
            Some(spine) => spine.write().maybe_compact(fs),
            None => Ok(false),
        }
    }

    /// Cumulative compaction counters (zeros for in-memory stores).
    pub fn compaction_stats(&self) -> segment::CompactionStats {
        self.spine
            .as_ref()
            .map_or_else(Default::default, |s| s.read().compaction_stats())
    }

    /// Handle over the same shared state that forwards every accepted
    /// document insert to `tee` (after the write lock is released). All
    /// clones of the returned handle share the tee; pre-existing clones
    /// of `self` keep writing without it, so attach the tee before
    /// handing the store to crawler threads.
    pub fn with_tee(&self, tee: Arc<dyn IndexTee>) -> Self {
        DocumentStore {
            inner: Arc::clone(&self.inner),
            spine: self.spine.clone(),
            tee: Some(tee),
        }
    }

    /// Like [`DocumentStore::with_tee`], but *composes* with any tee
    /// already attached to this handle instead of replacing it: both
    /// tees observe every accepted row, existing tee first.
    pub fn with_added_tee(&self, tee: Arc<dyn IndexTee>) -> Self {
        let combined: Arc<dyn IndexTee> = match &self.tee {
            Some(existing) => Arc::new(TeePair(Arc::clone(existing), tee)),
            None => tee,
        };
        self.with_tee(combined)
    }

    /// Insert one document row. Fails on duplicate ids.
    pub fn insert_document(&self, row: DocumentRow) -> Result<(), StoreError> {
        match &self.tee {
            None => match &self.spine {
                Some(spine) => spine.write().insert_document(row),
                None => self.inner.write().insert_document(row),
            },
            Some(tee) => {
                let keep = row.clone();
                match &self.spine {
                    Some(spine) => spine.write().insert_document(row)?,
                    None => self.inner.write().insert_document(row)?,
                }
                tee.on_insert(std::slice::from_ref(&keep));
                Ok(())
            }
        }
    }

    /// Insert a batch of documents under one lock acquisition; rows with
    /// duplicate ids are skipped and reported back.
    pub fn insert_documents(&self, rows: Vec<DocumentRow>) -> Vec<StoreError> {
        match &self.tee {
            None => match &self.spine {
                Some(spine) => {
                    let mut spine = spine.write();
                    rows.into_iter()
                        .filter_map(|r| spine.insert_document(r).err())
                        .collect()
                }
                None => {
                    let mut inner = self.inner.write();
                    rows.into_iter()
                        .filter_map(|r| inner.insert_document(r).err())
                        .collect()
                }
            },
            Some(tee) => {
                let mut errors = Vec::new();
                let mut accepted = Vec::with_capacity(rows.len());
                {
                    let mut spine = self.spine.as_ref().map(|s| s.write());
                    let mut inner = if spine.is_some() {
                        None
                    } else {
                        Some(self.inner.write())
                    };
                    for row in rows {
                        let keep = row.clone();
                        let result = match (&mut spine, &mut inner) {
                            (Some(spine), _) => spine.insert_document(row),
                            (None, Some(inner)) => inner.insert_document(row),
                            (None, None) => unreachable!(),
                        };
                        match result {
                            Ok(()) => accepted.push(keep),
                            Err(e) => errors.push(e),
                        }
                    }
                }
                if !accepted.is_empty() {
                    tee.on_insert(&accepted);
                }
                errors
            }
        }
    }

    /// Record a hyperlink between pages (ids need not be stored yet; the
    /// link table also feeds the HITS predecessor lookup).
    pub fn insert_link(&self, link: LinkRow) {
        let keep = self.tee.as_ref().map(|_| link.clone());
        match &self.spine {
            Some(spine) => spine.write().insert_link(link),
            None => self.inner.write().insert_link(link),
        }
        if let (Some(tee), Some(keep)) = (&self.tee, keep) {
            tee.on_links(std::slice::from_ref(&keep));
        }
    }

    /// Record a batch of links under one lock acquisition.
    pub fn insert_links(&self, links: Vec<LinkRow>) {
        let keep = self.tee.as_ref().map(|_| links.clone());
        match &self.spine {
            Some(spine) => {
                let mut spine = spine.write();
                for l in links {
                    spine.insert_link(l);
                }
            }
            None => {
                let mut inner = self.inner.write();
                for l in links {
                    inner.insert_link(l);
                }
            }
        }
        if let (Some(tee), Some(keep)) = (&self.tee, keep) {
            if !keep.is_empty() {
                tee.on_links(&keep);
            }
        }
    }

    /// Upsert host metadata.
    pub fn upsert_host(&self, row: HostRow) {
        match &self.spine {
            Some(spine) => spine.write().upsert_host(row),
            None => {
                self.inner.write().hosts.insert(row.id, row);
            }
        }
    }

    /// Update the topic assignment and classification confidence of a
    /// stored document (re-classification during retraining).
    pub fn set_topic(
        &self,
        id: PageId,
        topic: Option<u32>,
        confidence: f32,
    ) -> Result<(), StoreError> {
        match &self.spine {
            Some(spine) => spine.write().set_topic(id, topic, confidence),
            None => self.inner.write().set_topic(id, topic, confidence),
        }
    }

    /// Fetch a document row by id.
    pub fn document(&self, id: PageId) -> Option<DocumentRow> {
        match &self.spine {
            Some(spine) => spine.read().document(id),
            None => self.inner.read().documents.get(&id).cloned(),
        }
    }

    /// Fetch a document row by URL.
    pub fn document_by_url(&self, url: &str) -> Option<DocumentRow> {
        match &self.spine {
            Some(spine) => spine.read().document_by_url(url),
            None => {
                let inner = self.inner.read();
                inner
                    .by_url
                    .get(url)
                    .and_then(|id| inner.documents.get(id))
                    .cloned()
            }
        }
    }

    /// True when a document with this URL is stored.
    pub fn contains_url(&self, url: &str) -> bool {
        match &self.spine {
            Some(spine) => spine.read().contains_url(url),
            None => self.inner.read().by_url.contains_key(url),
        }
    }

    /// Ids of all documents assigned to a topic.
    pub fn topic_documents(&self, topic: u32) -> Vec<PageId> {
        match &self.spine {
            Some(spine) => spine.read().topic_documents(topic),
            None => self
                .inner
                .read()
                .by_topic
                .get(&topic)
                .cloned()
                .unwrap_or_default(),
        }
    }

    /// Snapshot of all document rows (postprocessing input). On
    /// segmented stores this streams every sealed segment — a cold,
    /// whole-database materialization.
    pub fn all_documents(&self) -> Vec<DocumentRow> {
        match &self.spine {
            Some(spine) => spine.read().all_documents(),
            None => self.inner.read().documents.values().cloned().collect(),
        }
    }

    /// Snapshot of all link rows, in insertion order (the log-style
    /// link relation, duplicates included).
    pub fn all_links(&self) -> Vec<LinkRow> {
        match &self.spine {
            Some(spine) => spine.read().all_links(),
            None => self.inner.read().links.clone(),
        }
    }

    /// Host metadata.
    pub fn host(&self, id: HostId) -> Option<HostRow> {
        match &self.spine {
            Some(spine) => spine.read().host(id),
            None => self.inner.read().hosts.get(&id).cloned(),
        }
    }

    /// Number of stored documents.
    pub fn document_count(&self) -> usize {
        match &self.spine {
            Some(spine) => spine.read().document_count(),
            None => self.inner.read().documents.len(),
        }
    }

    /// Number of stored link rows (including duplicates of the edge
    /// index, mirroring a log-style link relation).
    pub fn link_count(&self) -> usize {
        match &self.spine {
            Some(spine) => spine.read().link_count(),
            None => self.inner.read().links.len(),
        }
    }

    /// Number of stored hosts.
    pub fn host_count(&self) -> usize {
        match &self.spine {
            Some(spine) => spine.read().host_count(),
            None => self.inner.read().hosts.len(),
        }
    }

    /// Run `f` over every document row without cloning the table
    /// (segmented stores stream rows one segment at a time).
    pub fn for_each_document<F: FnMut(&DocumentRow)>(&self, mut f: F) {
        match &self.spine {
            Some(spine) => {
                let _ = spine.read().for_each_document(f);
            }
            None => {
                let inner = self.inner.read();
                for row in inner.documents.values() {
                    f(row);
                }
            }
        }
    }

    /// Rewrite every stored document's term ids through `map`
    /// (index = old id, value = new id; the map must cover every id in
    /// the store and be injective). Term frequencies are re-sorted by the
    /// new ids. Used to canonicalize rows produced by the concurrent
    /// pipeline's arrival-ordered interner — see
    /// `bingo_textproc::SharedVocabulary::canonicalize`.
    ///
    /// On segmented stores this rewrites every sealed segment on disk;
    /// an I/O failure there is unrecoverable mid-rewrite and panics.
    pub fn remap_terms(&self, map: &[u32]) {
        match &self.spine {
            Some(spine) => spine
                .write()
                .remap_terms(map)
                .expect("segment rewrite during term remap failed"),
            None => {
                let mut inner = self.inner.write();
                for row in inner.documents.values_mut() {
                    for entry in &mut row.term_freqs {
                        entry.0 = map[entry.0 as usize];
                    }
                    row.term_freqs.sort_unstable_by_key(|&(t, _)| t);
                }
            }
        }
    }
}

impl LinkSource for DocumentStore {
    fn successors(&self, page: PageId) -> Vec<PageId> {
        match &self.spine {
            Some(spine) => spine.read().successors(page),
            None => self
                .inner
                .read()
                .out_links
                .get(&page)
                .cloned()
                .unwrap_or_default(),
        }
    }

    fn predecessors(&self, page: PageId) -> Vec<PageId> {
        match &self.spine {
            Some(spine) => spine.read().predecessors(page),
            None => self
                .inner
                .read()
                .in_links
                .get(&page)
                .cloned()
                .unwrap_or_default(),
        }
    }

    fn host_of(&self, page: PageId) -> HostId {
        match &self.spine {
            Some(spine) => spine.read().host_of(page),
            None => self
                .inner
                .read()
                .documents
                .get(&page)
                .map(|d| d.host)
                .unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_textproc::MimeType;

    fn doc(id: u64, url: &str, topic: Option<u32>) -> DocumentRow {
        DocumentRow {
            id,
            url: url.to_string(),
            host: (id % 5) as u32,
            mime: MimeType::Html,
            depth: 1,
            title: format!("doc {id}"),
            topic,
            confidence: 0.5,
            term_freqs: vec![(1, 2), (7, 1)],
            size: 100,
            fetched_at: 0,
        }
    }

    #[test]
    fn insert_and_lookup() {
        let s = DocumentStore::new();
        s.insert_document(doc(1, "http://a/x", Some(3))).unwrap();
        assert_eq!(s.document_count(), 1);
        assert_eq!(s.document(1).unwrap().url, "http://a/x");
        assert_eq!(s.document_by_url("http://a/x").unwrap().id, 1);
        assert!(s.contains_url("http://a/x"));
        assert!(!s.contains_url("http://a/y"));
        assert_eq!(s.topic_documents(3), vec![1]);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let s = DocumentStore::new();
        s.insert_document(doc(1, "http://a/x", None)).unwrap();
        assert_eq!(
            s.insert_document(doc(1, "http://a/y", None)),
            Err(StoreError::DuplicateKey(1))
        );
        let errs = s.insert_documents(vec![doc(1, "z", None), doc(2, "w", None)]);
        assert_eq!(errs, vec![StoreError::DuplicateKey(1)]);
        assert_eq!(s.document_count(), 2);
    }

    #[test]
    fn remap_terms_rewrites_and_resorts() {
        let s = DocumentStore::new();
        s.insert_document(doc(1, "u", None)).unwrap();
        // Old ids 1 and 7 swap order under the map.
        let mut map = vec![0u32; 8];
        map[1] = 6;
        map[7] = 2;
        s.remap_terms(&map);
        assert_eq!(s.document(1).unwrap().term_freqs, vec![(2, 1), (6, 2)]);
    }

    #[test]
    fn topic_reassignment_moves_index() {
        let s = DocumentStore::new();
        s.insert_document(doc(1, "u", Some(3))).unwrap();
        s.set_topic(1, Some(9), 0.8).unwrap();
        assert!(s.topic_documents(3).is_empty());
        assert_eq!(s.topic_documents(9), vec![1]);
        assert_eq!(s.document(1).unwrap().confidence, 0.8);
        assert_eq!(
            s.set_topic(42, Some(1), 0.1),
            Err(StoreError::MissingDocument(42))
        );
    }

    #[test]
    fn links_build_bidirectional_index() {
        let s = DocumentStore::new();
        for i in 1..=3 {
            s.insert_document(doc(i, &format!("u{i}"), None)).unwrap();
        }
        s.insert_link(LinkRow {
            from: 1,
            to: 2,
            to_url: "u2".into(),
        });
        s.insert_links(vec![
            LinkRow {
                from: 1,
                to: 3,
                to_url: "u3".into(),
            },
            LinkRow {
                from: 2,
                to: 3,
                to_url: "u3".into(),
            },
        ]);
        assert_eq!(s.successors(1), vec![2, 3]);
        assert_eq!(s.predecessors(3), vec![1, 2]);
        assert_eq!(s.link_count(), 3);
        assert_eq!(s.host_of(2), 2);
        assert_eq!(s.host_of(99), 0);
    }

    #[test]
    fn duplicate_edges_collapse_in_index() {
        let s = DocumentStore::new();
        s.insert_document(doc(1, "a", None)).unwrap();
        s.insert_document(doc(2, "b", None)).unwrap();
        for _ in 0..3 {
            s.insert_link(LinkRow {
                from: 1,
                to: 2,
                to_url: "b".into(),
            });
        }
        assert_eq!(s.successors(1), vec![2]);
        assert_eq!(s.link_count(), 3, "raw link log keeps every row");
    }

    #[test]
    fn tee_sees_only_accepted_rows() {
        struct Capture(std::sync::Mutex<Vec<u64>>);
        impl IndexTee for Capture {
            fn on_insert(&self, rows: &[DocumentRow]) {
                self.0.lock().unwrap().extend(rows.iter().map(|r| r.id));
            }
        }
        let cap = Arc::new(Capture(std::sync::Mutex::new(Vec::new())));
        let s = DocumentStore::new().with_tee(cap.clone());
        s.insert_document(doc(1, "a", None)).unwrap();
        assert!(s.insert_document(doc(1, "dup", None)).is_err());
        let errs = s.insert_documents(vec![
            doc(1, "x", None),
            doc(2, "b", None),
            doc(3, "c", None),
        ]);
        assert_eq!(errs, vec![StoreError::DuplicateKey(1)]);
        assert_eq!(
            *cap.0.lock().unwrap(),
            vec![1, 2, 3],
            "duplicates never forwarded"
        );
        // Clones share the tee; the pre-tee handle does not write through it.
        let s2 = s.clone();
        s2.insert_document(doc(4, "d", None)).unwrap();
        assert_eq!(cap.0.lock().unwrap().len(), 4);
    }

    #[test]
    fn tee_observes_link_rows() {
        struct Links(std::sync::Mutex<Vec<(u64, u64)>>);
        impl IndexTee for Links {
            fn on_insert(&self, _rows: &[DocumentRow]) {}
            fn on_links(&self, links: &[LinkRow]) {
                self.0
                    .lock()
                    .unwrap()
                    .extend(links.iter().map(|l| (l.from, l.to)));
            }
        }
        let cap = Arc::new(Links(std::sync::Mutex::new(Vec::new())));
        let s = DocumentStore::new().with_tee(cap.clone());
        s.insert_link(LinkRow {
            from: 1,
            to: 2,
            to_url: "u2".into(),
        });
        s.insert_links(vec![
            LinkRow {
                from: 1,
                to: 3,
                to_url: "u3".into(),
            },
            LinkRow {
                from: 2,
                to: 3,
                to_url: "u3".into(),
            },
        ]);
        s.insert_links(Vec::new());
        assert_eq!(*cap.0.lock().unwrap(), vec![(1, 2), (1, 3), (2, 3)]);
        assert_eq!(s.link_count(), 3, "tee does not replace storage");
    }

    #[test]
    fn added_tee_composes_with_existing() {
        struct Count(
            std::sync::atomic::AtomicUsize,
            std::sync::atomic::AtomicUsize,
        );
        impl IndexTee for Count {
            fn on_insert(&self, rows: &[DocumentRow]) {
                self.0
                    .fetch_add(rows.len(), std::sync::atomic::Ordering::SeqCst);
            }
            fn on_links(&self, links: &[LinkRow]) {
                self.1
                    .fetch_add(links.len(), std::sync::atomic::Ordering::SeqCst);
            }
        }
        let a = Arc::new(Count(Default::default(), Default::default()));
        let b = Arc::new(Count(Default::default(), Default::default()));
        // with_added_tee on a tee-less store is just with_tee...
        let s = DocumentStore::new().with_added_tee(a.clone());
        // ...and composes when one is already attached.
        let s = s.with_added_tee(b.clone());
        s.insert_document(doc(1, "a", None)).unwrap();
        s.insert_link(LinkRow {
            from: 1,
            to: 2,
            to_url: "u2".into(),
        });
        for t in [&a, &b] {
            assert_eq!(t.0.load(std::sync::atomic::Ordering::SeqCst), 1);
            assert_eq!(t.1.load(std::sync::atomic::Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn concurrent_writers() {
        let s = DocumentStore::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..100u64 {
                        let id = t * 1000 + i;
                        s.insert_document(doc(id, &format!("u{id}"), Some((id % 7) as u32)))
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(s.document_count(), 400);
        let total: usize = (0..7).map(|t| s.topic_documents(t).len()).sum();
        assert_eq!(total, 400);
    }
}
