//! Scenario overlays: hand-specified named subgraphs embedded into the
//! generated web, used for the expert-search case study of Section 5.3
//! (Figures 4 and 5).

use crate::faults::FaultWindow;
use crate::gen::Generator;
use crate::{PageKind, PageMeta};
use bingo_graph::PageId;
use bingo_textproc::content::make_pdf;
use bingo_textproc::MimeType;
use rand::Rng;

/// One hand-authored page.
#[derive(Debug, Clone)]
pub struct ScenarioPage {
    /// Name the page is registered under (lookup via
    /// [`crate::World::named_page`]).
    pub name: String,
    /// Hostname (host is created when it does not exist).
    pub host: String,
    /// URL path.
    pub path: String,
    /// Served MIME type (Html or Pdf).
    pub mime: MimeType,
    /// Page title.
    pub title: String,
    /// Body text.
    pub body: String,
    /// Links to other scenario pages: `(target name, anchor text)`.
    pub links: Vec<(String, String)>,
    /// Inject `count` inbound links from random pages of `topic`.
    pub inbound_from_topic: Option<(u32, usize)>,
}

/// A named overlay: a set of pages wired into the world.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Overlay name.
    pub name: String,
    /// Pages of the overlay, applied in order.
    pub pages: Vec<ScenarioPage>,
    /// Hand-authored fault windows: `(hostname, window)`. The host must
    /// exist after the overlay's pages are applied (base-world hosts
    /// qualify too). Merged into the world's fault plan.
    pub host_faults: Vec<(String, FaultWindow)>,
}

/// Apply an overlay to a world under construction: create hosts and
/// pages, render content with resolved link URLs, wire inbound links.
pub(crate) fn apply(g: &mut Generator, spec: &ScenarioSpec) {
    // Pass 1: create hosts and page shells, record name → id.
    let mut ids: Vec<PageId> = Vec::with_capacity(spec.pages.len());
    for sp in &spec.pages {
        let host = match g.find_host(&sp.host) {
            Some(h) => h,
            None => g.add_host(sp.host.clone(), true),
        };
        let id = g.add_page(PageMeta {
            host,
            path: sp.path.clone(),
            topic: None,
            secondary_topic: None,
            kind: PageKind::Scenario,
            mime: sp.mime,
            out: Vec::new(),
            redirect_to: None,
            author: None,
            content_override: None,
            extra_out_urls: Vec::new(),
            size_hint: None,
        });
        g.register_name(sp.name.clone(), id);
        ids.push(id);
    }

    // Pass 2: resolve links, render content, wire the graph.
    for (i, sp) in spec.pages.iter().enumerate() {
        let id = ids[i];
        let mut link_html = String::new();
        let mut out = Vec::new();
        for (target_name, anchor) in &sp.links {
            let target = spec
                .pages
                .iter()
                .position(|p| &p.name == target_name)
                .map(|j| ids[j])
                .unwrap_or_else(|| panic!("scenario link to unknown page {target_name}"));
            let url = page_url(g, target);
            link_html.push_str(&format!(" <a href=\"{url}\">{anchor}</a>"));
            out.push(target);
        }
        let html = format!(
            "<html><head><title>{}</title></head><body><p>{}</p>{}</body></html>",
            sp.title, sp.body, link_html
        );
        let payload = match sp.mime {
            MimeType::Pdf => make_pdf(&html),
            _ => html,
        };
        {
            let meta = &mut g.pages_mut()[id as usize];
            meta.content_override = Some(payload.into());
            meta.out = out;
        }
        // Inbound links from random pages of a topic.
        if let Some((topic, count)) = sp.inbound_from_topic {
            let candidates: Vec<PageId> = g
                .topic_pages_ref()
                .get(topic as usize)
                .cloned()
                .unwrap_or_default();
            if !candidates.is_empty() {
                for _ in 0..count {
                    let from = candidates[g.rng().gen_range(0..candidates.len())];
                    let meta = &mut g.pages_mut()[from as usize];
                    if !meta.out.contains(&id) {
                        meta.out.push(id);
                    }
                }
            }
        }
    }

    // Pass 3: hand-authored fault windows on named hosts.
    for (host_name, window) in &spec.host_faults {
        let host = g
            .find_host(host_name)
            .unwrap_or_else(|| panic!("scenario fault on unknown host {host_name}"));
        g.add_scenario_fault(host, *window);
    }
}

fn page_url(g: &Generator, id: PageId) -> String {
    let meta = &g.pages_ref()[id as usize];
    format!(
        "http://{}/{}",
        g.hosts_ref()[meta.host as usize].name,
        meta.path
    )
}

#[allow(clippy::too_many_arguments)]
fn page(
    name: &str,
    host: &str,
    path: &str,
    mime: MimeType,
    title: &str,
    body: &str,
    links: &[(&str, &str)],
    inbound: Option<(u32, usize)>,
) -> ScenarioPage {
    ScenarioPage {
        name: name.to_string(),
        host: host.to_string(),
        path: path.to_string(),
        mime,
        title: title.to_string(),
        body: body.to_string(),
        links: links
            .iter()
            .map(|&(t, a)| (t.to_string(), a.to_string()))
            .collect(),
        inbound_from_topic: inbound,
    }
}

/// The ARIES expert-search scenario of Section 5.3.
///
/// Reproduces the structure of the case study: seven seed documents about
/// the ARIES recovery algorithm (Figure 4), a researcher's ARIES page
/// that references papers and systems without answering the query
/// directly, and — two tunnel hops away — the open-source systems (Shore,
/// MiniBase, Exodus analogs) whose pages contain the "source code
/// release" answer (Figure 5), plus the press/product decoy pages that
/// showed up in the paper's middle ranks.
///
/// Topic-id convention of [`crate::gen::WorldConfig::expert`]:
/// 0 = dbresearch, 1 = recovery, 2 = opensource.
pub fn aries_scenario() -> ScenarioSpec {
    let aries_pdf_body = "The ARIES recovery algorithm performs crash recovery with \
        write ahead logging. The log records carry an LSN and recovery proceeds in an \
        analysis pass, a redo pass repeating history, and an undo pass using compensation \
        log records. Fine granularity locking and fuzzy checkpointing allow transaction \
        rollback and restart after media failure. Buffer manager dirty pages are tracked \
        in the checkpoint record. Transactions use latches and locks for concurrency.";

    ScenarioSpec {
        name: "aries".to_string(),
        pages: vec![
            // --- Figure 4: the seven training seeds -------------------
            page(
                "seed:bell-labs-slides",
                "bell-labs.example",
                "db-book/slides/aries.pdf",
                MimeType::Pdf,
                "ARIES Recovery Slides",
                aries_pdf_body,
                &[("mohan-page", "ARIES impact page")],
                Some((1, 6)),
            ),
            page(
                "seed:cmu-lecture",
                "cs-cmu.example",
                "class/15721/recovery-with-aries.pdf",
                MimeType::Pdf,
                "Lecture: Recovery with ARIES",
                aries_pdf_body,
                &[("mohan-page", "C. Mohan ARIES page")],
                Some((1, 5)),
            ),
            page(
                "seed:harvard-reading",
                "icg-harvard.example",
                "cs265/readings/mohan-1992.pdf",
                MimeType::Pdf,
                "ARIES: A Transaction Recovery Method",
                aries_pdf_body,
                &[("seed:brandeis-abstract", "abstract")],
                Some((1, 4)),
            ),
            page(
                "seed:brandeis-abstract",
                "cs-brandeis.example",
                "~liuba/abstracts/mohan.html",
                MimeType::Html,
                "Abstract: ARIES recovery method",
                "Abstract of the ARIES transaction recovery paper: write ahead logging, \
                 repeating history during redo, compensation log records, fine granularity \
                 locking and partial rollbacks using save points.",
                &[
                    ("mohan-page", "author page"),
                    ("seed:greenlaw-abstract", "related abstract"),
                ],
                Some((1, 4)),
            ),
            page(
                "mohan-page",
                "almaden.example",
                "u/mohan/aries_impact.html",
                MimeType::Html,
                "The Impact of ARIES",
                "This page collects the impact of the ARIES family of recovery and \
                 locking algorithms: papers, systems, products and teaching material. \
                 ARIES is implemented in several database systems and prototypes; follow \
                 the references for research prototypes with publicly available code, \
                 industrial products, press coverage and seminar talks.",
                &[
                    ("seed:bell-labs-slides", "course slides"),
                    ("seed:cmu-lecture", "lecture notes"),
                    ("seed:harvard-reading", "the 1992 TODS paper"),
                    ("shore-home", "the Shore storage manager prototype"),
                    ("minibase-home", "the MiniBase educational DBMS"),
                    ("decoy:jcentral", "jCentral press release"),
                    ("decoy:garlic", "the Garlic project"),
                    ("decoy:clio", "the Clio project"),
                    ("decoy:tivoli", "storage manager product platforms"),
                ],
                Some((1, 8)),
            ),
            page(
                "seed:stanford-seminar",
                "db-stanford.example",
                "dbseminar/archive/mohan-1203.html",
                MimeType::Html,
                "DB Seminar: ARIES recovery",
                "Database seminar talk announcement on the ARIES recovery algorithm: \
                 logging, restart recovery, media recovery, repeating history, undo and \
                 redo passes, checkpointing in commercial systems.",
                &[("mohan-page", "speaker homepage")],
                Some((1, 4)),
            ),
            page(
                "seed:vldb-paper",
                "vldb.example",
                "conf/1989/p337.pdf",
                MimeType::Pdf,
                "VLDB 1989: Recovery and Locking",
                aries_pdf_body,
                &[("mohan-page", "author")],
                Some((0, 4)),
            ),
            // --- Related abstract (appears in Figure 5 mid-ranks) -----
            page(
                "seed:greenlaw-abstract",
                "cs-brandeis.example",
                "~liuba/abstracts/greenlaw.html",
                MimeType::Html,
                "Abstract: recovery performance",
                "Abstract on recovery performance and logging overhead in transaction \
                 systems; discusses a prototype release and source availability.",
                &[],
                None,
            ),
            // --- The needles: Shore ----------------------------------
            page(
                "shore-home",
                "cs-wisc.example",
                "shore/index.html",
                MimeType::Html,
                "The Shore Storage Manager",
                "Shore is a storage manager prototype providing transactions, \
                 B-tree indexes, logging and ARIES style recovery. The complete \
                 source code is available; see the overview documentation for the \
                 public domain source code release. Shore descends from the Exodus \
                 storage manager.",
                &[
                    ("shore-node5", "overview: recovery and source release"),
                    ("shore-footnode", "documentation footnotes"),
                    ("exodus-home", "the Exodus storage manager"),
                ],
                Some((2, 6)),
            ),
            page(
                "shore-node5",
                "cs-wisc.example",
                "shore/doc/overview/node5.html",
                MimeType::Html,
                "Shore Overview: Recovery",
                "The Shore storage manager implements the ARIES recovery algorithm \
                 including media recovery, write ahead logging, and checkpointing. \
                 The full source code release is in the public domain and available \
                 for download; this open source distribution builds on unix platforms.",
                &[("shore-home", "Shore home")],
                None,
            ),
            page(
                "shore-footnode",
                "cs-wisc.example",
                "shore/doc/overview/footnode.html",
                MimeType::Html,
                "Shore Overview: Footnotes",
                "Footnotes to the Shore overview: the source code release, logging \
                 subsystem details, recovery and storage volumes.",
                &[("shore-home", "Shore home")],
                None,
            ),
            page(
                "exodus-home",
                "cs-wisc.example",
                "exodus/index.html",
                MimeType::Html,
                "The Exodus Storage Manager",
                "Exodus is an extensible storage manager with transactions and \
                 recovery; the open source code release is distributed in the \
                 public domain. The source code release builds on unix systems.",
                &[("shore-home", "successor project Shore")],
                None,
            ),
            // --- The needles: MiniBase --------------------------------
            page(
                "minibase-home",
                "cs-wisc.example",
                "coral/minibase/index.html",
                MimeType::Html,
                "MiniBase: an educational DBMS",
                "MiniBase is an educational database management system with a buffer \
                 manager, heap files, B-tree indexes and a log manager implementing \
                 ARIES media recovery. Source code release available for courses.",
                &[("minibase-logmgr", "log manager report")],
                Some((2, 5)),
            ),
            page(
                "minibase-logmgr",
                "cs-wisc.example",
                "coral/minibase/logmgr/report/node22.html",
                MimeType::Html,
                "MiniBase Log Manager: Recovery",
                "The MiniBase log manager report: the ARIES media recovery algorithm, \
                 write ahead logging, and the public source code release of the log \
                 manager and recovery modules.",
                &[
                    ("minibase-home", "MiniBase home"),
                    ("minibase-mirror", "mirror site"),
                ],
                None,
            ),
            page(
                "minibase-mirror",
                "ceid-upatras.example",
                "courses/minibase/minibase-1.0/documentation/html/logmgr/report/node22.html",
                MimeType::Html,
                "MiniBase Log Manager: Recovery (mirror)",
                "Mirror of the MiniBase log manager report: ARIES media recovery, \
                 write ahead logging, source code release of the recovery modules.",
                &[("minibase-home", "MiniBase home")],
                None,
            ),
            // --- Decoys that reached Figure 5 mid-ranks ---------------
            page(
                "decoy:jcentral",
                "almaden.example",
                "cs/jcentral_press.html",
                MimeType::Html,
                "jCentral Press Release",
                "Press release about the jCentral java search technology: product \
                 release, software download, press coverage. No recovery content.",
                &[],
                Some((2, 3)),
            ),
            page(
                "decoy:garlic",
                "almaden.example",
                "cs/garlic.html",
                MimeType::Html,
                "The Garlic Project",
                "Garlic is a middleware research project integrating heterogeneous \
                 data sources; prototype software release notes and publications.",
                &[],
                Some((0, 3)),
            ),
            page(
                "decoy:clio",
                "almaden.example",
                "cs/clio/index.html",
                MimeType::Html,
                "The Clio Project",
                "Clio is a schema mapping research prototype; the release of the \
                 demonstration software accompanies the papers.",
                &[],
                Some((0, 3)),
            ),
            page(
                "decoy:tivoli",
                "tivoli.example",
                "products/index/storage-mgr-platforms.html",
                MimeType::Html,
                "Storage Manager: Supported Platforms",
                "Product page for a storage manager: supported platforms, release \
                 levels, download of client software, documentation.",
                &[],
                Some((2, 3)),
            ),
            // --- Baseline chaff: open-source portal pages -------------
            page(
                "chaff:binaries",
                "sourceforge.example",
                "directory/binaries.html",
                MimeType::Html,
                "Open Source Binaries",
                "Directory of open source software: binaries and libraries, public \
                 domain downloads, release archives, package repositories for every \
                 platform. Browse thousands of projects with source code releases.",
                &[("chaff:libraries", "libraries index")],
                Some((2, 8)),
            ),
            page(
                "chaff:libraries",
                "sourceforge.example",
                "directory/libraries.html",
                MimeType::Html,
                "Open Source Libraries",
                "Open source libraries index: public domain code, source releases, \
                 build instructions, binary packages, installation manuals.",
                &[("chaff:binaries", "binaries index")],
                Some((2, 8)),
            ),
        ],
        host_faults: Vec::new(),
    }
}

#[cfg(test)]
mod tests {

    use crate::gen::WorldConfig;
    use bingo_graph::LinkSource;

    #[test]
    fn aries_scenario_builds_into_expert_world() {
        let world = WorldConfig::expert(11).build();
        // All named pages registered.
        for name in [
            "mohan-page",
            "shore-home",
            "shore-node5",
            "minibase-home",
            "minibase-logmgr",
            "exodus-home",
            "seed:vldb-paper",
        ] {
            assert!(world.named_page(name).is_some(), "{name} missing");
        }
        // The tunnel structure: mohan -> shore-home -> shore-node5.
        let mohan = world.named_page("mohan-page").unwrap();
        let shore = world.named_page("shore-home").unwrap();
        let node5 = world.named_page("shore-node5").unwrap();
        assert!(world.successors(mohan).contains(&shore));
        assert!(world.successors(shore).contains(&node5));
        // Seeds have inbound topical links (findable by keyword search).
        let seed = world.named_page("seed:cmu-lecture").unwrap();
        assert!(!world.predecessors(seed).is_empty());
    }

    #[test]
    fn scenario_pdfs_carry_envelope() {
        let world = WorldConfig::expert(11).build();
        let seed = world.named_page("seed:bell-labs-slides").unwrap();
        let payload = crate::content_gen::payload(&world, seed);
        assert!(payload.starts_with("%SIMPDF\n"));
        assert!(payload.contains("ARIES"));
    }

    #[test]
    fn needle_pages_contain_answer_phrase() {
        let world = WorldConfig::expert(11).build();
        for name in ["shore-node5", "minibase-logmgr", "exodus-home"] {
            let id = world.named_page(name).unwrap();
            let payload = crate::content_gen::payload(&world, id);
            assert!(
                payload.contains("source code release"),
                "{name} lacks the answer phrase"
            );
        }
    }
}
