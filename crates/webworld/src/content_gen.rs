//! Lazy, deterministic page-content generation.
//!
//! The payload served for a page is a pure function of the world seed and
//! the page id, so a large world stores no content — only graph metadata.
//! Text is sampled from the page's topical lexicon (Zipf-weighted), the
//! shared common vocabulary, and the pseudo-word filler tail; hyperlinks
//! are rendered with realistic anchor texts (including the "click here"
//! noise that the extended anchor stopword list must remove).

use crate::lexicon;
use crate::{PageKind, World};
use bingo_graph::PageId;
use bingo_textproc::content::{make_pdf, make_zip};
use bingo_textproc::MimeType;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The full payload served when fetching `id` (including format
/// envelopes for non-HTML types).
pub fn payload(world: &World, id: PageId) -> String {
    let meta = world.page_meta(id);
    if let Some(ov) = &meta.content_override {
        return ov.to_string();
    }
    let mut rng = SmallRng::seed_from_u64(
        world
            .seed()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(id.wrapping_mul(0xB5_29_7A_4D)),
    );

    let (title, body) = match meta.kind {
        PageKind::Welcome => welcome_text(world, id, &mut rng),
        PageKind::Hub => hub_text(world, id, &mut rng),
        PageKind::AuthorHome => author_home_text(world, id, &mut rng),
        PageKind::AuthorPub => author_pub_text(world, id, &mut rng),
        _ => content_text(world, id, &mut rng),
    };
    let links = render_links(world, id, &mut rng);
    let html = format!(
        "<html><head><title>{title}</title></head><body><p>{body}</p>{links}</body></html>"
    );
    match meta.mime {
        MimeType::Pdf => make_pdf(&html),
        MimeType::Zip => {
            // A proceedings archive: the main document plus a couple of
            // short topical entries; the zip handler concatenates them.
            let extra1 = words(world, meta.topic, 40, &mut rng);
            let extra2 = words(world, meta.topic, 40, &mut rng);
            make_zip(&[&html, &extra1, &extra2])
        }
        _ => html,
    }
}

/// Sample one word for a topical page: mostly topic lexicon (Zipf), some
/// common vocabulary, some filler tail. Pages with a secondary topic
/// split their topical mass between the two lexicons.
fn sample_word_blended(
    world: &World,
    topic: Option<u32>,
    secondary: Option<u32>,
    rng: &mut SmallRng,
) -> String {
    let roll: f64 = rng.gen();
    match (topic, secondary) {
        (Some(t), Some(s)) if roll < 0.5 => {
            let pick = if rng.gen_bool(0.6) { t } else { s };
            let lex = world.topics()[pick as usize].lexicon;
            lex[zipf(rng, lex.len())].to_string()
        }
        (Some(t), None) if roll < 0.5 => {
            let lex = world.topics()[t as usize].lexicon;
            lex[zipf(rng, lex.len())].to_string()
        }
        _ if roll < 0.85 => lexicon::COMMON[zipf(rng, lexicon::COMMON.len())].to_string(),
        _ => lexicon::filler_word(rng.gen_range(0..5000u64)),
    }
}

fn sample_word(world: &World, topic: Option<u32>, rng: &mut SmallRng) -> String {
    sample_word_blended(world, topic, None, rng)
}

/// Zipf-ish index: low indexes much more likely.
fn zipf(rng: &mut SmallRng, n: usize) -> usize {
    let u: f64 = rng.gen();
    ((n as f64) * u * u * u) as usize % n
}

fn words(world: &World, topic: Option<u32>, count: usize, rng: &mut SmallRng) -> String {
    let mut out = String::with_capacity(count * 8);
    for i in 0..count {
        if i > 0 {
            out.push(if i % 13 == 12 { '.' } else { ' ' });
            if i % 13 == 12 {
                out.push(' ');
            }
        }
        out.push_str(&sample_word(world, topic, rng));
    }
    out
}

fn content_text(world: &World, id: PageId, rng: &mut SmallRng) -> (String, String) {
    let meta = world.page_meta(id);
    let n = rng.gen_range(120..300);
    let title = format!(
        "{} {}",
        sample_word(world, meta.topic, rng),
        sample_word(world, meta.topic, rng)
    );
    let mut body = String::with_capacity(n * 8);
    for i in 0..n {
        if i > 0 {
            body.push(' ');
        }
        body.push_str(&sample_word_blended(
            world,
            meta.topic,
            meta.secondary_topic,
            rng,
        ));
    }
    (title, body)
}

fn welcome_text(world: &World, id: PageId, rng: &mut SmallRng) -> (String, String) {
    let meta = world.page_meta(id);
    let host = world.host_meta(meta.host);
    let n = rng.gen_range(8..25);
    (
        format!("Welcome to {}", host.name),
        format!("Welcome to {}. {}", host.name, words(world, None, n, rng)),
    )
}

fn hub_text(world: &World, id: PageId, rng: &mut SmallRng) -> (String, String) {
    let meta = world.page_meta(id);
    let n = rng.gen_range(30..60);
    let title = format!(
        "Resources on {}",
        meta.topic
            .map(|t| world.topics()[t as usize].name.clone())
            .unwrap_or_else(|| "the web".to_string())
    );
    (title, words(world, meta.topic, n, rng))
}

fn author_home_text(world: &World, id: PageId, rng: &mut SmallRng) -> (String, String) {
    let meta = world.page_meta(id);
    let author = &world.authors()[meta.author.unwrap() as usize];
    let n = rng.gen_range(60..120);
    (
        format!("Homepage of {}", author.name),
        format!(
            "Homepage of {}. Research interests: {}. {}",
            author.name,
            words(world, meta.topic, 8, rng),
            words(world, meta.topic, n, rng)
        ),
    )
}

fn author_pub_text(world: &World, id: PageId, rng: &mut SmallRng) -> (String, String) {
    let meta = world.page_meta(id);
    let author = &world.authors()[meta.author.unwrap() as usize];
    let is_paper = meta.mime == MimeType::Pdf;
    let n = rng.gen_range(if is_paper { 200..400 } else { 100..250 });
    let title = if is_paper {
        format!(
            "{} {}: a {} approach",
            sample_word(world, meta.topic, rng),
            sample_word(world, meta.topic, rng),
            sample_word(world, meta.topic, rng)
        )
    } else {
        format!("Publications of {}", author.name)
    };
    (title, words(world, meta.topic, n, rng))
}

/// Render the out-links of a page as HTML anchors. Some links use the
/// target's alias URL (producing duplicate content under two URLs); some
/// anchors are navigation noise ("click here").
fn render_links(world: &World, id: PageId, rng: &mut SmallRng) -> String {
    let meta = world.page_meta(id);
    let mut out = String::new();
    for &target in &meta.out {
        let url = match world.alias_url_of(target) {
            Some(alias) if rng.gen_bool(0.3) => alias.to_string(),
            _ => world.url_of(target),
        };
        let anchor = anchor_text(world, target, rng);
        out.push_str(&format!(" <a href=\"{url}\">{anchor}</a>"));
    }
    for raw in &meta.extra_out_urls {
        out.push_str(&format!(" <a href=\"{raw}\">more</a>"));
    }
    out
}

fn anchor_text(world: &World, target: PageId, rng: &mut SmallRng) -> String {
    if rng.gen_bool(0.15) {
        return ["click here", "more", "link", "home page", "next page"][rng.gen_range(0..5)]
            .to_string();
    }
    let meta = world.page_meta(target);
    match meta.kind {
        PageKind::AuthorHome => {
            let a = &world.authors()[meta.author.unwrap() as usize];
            a.name.clone()
        }
        PageKind::AuthorPub => format!("{} paper", sample_word(world, meta.topic, rng)),
        PageKind::Welcome => world.host_meta(meta.host).name.clone(),
        _ => format!(
            "{} {}",
            sample_word(world, meta.topic, rng),
            sample_word(world, meta.topic, rng)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorldConfig;

    #[test]
    fn payload_is_deterministic() {
        let world = WorldConfig::small_test(4).build();
        for id in (0..world.page_count() as u64).step_by(23) {
            assert_eq!(payload(&world, id), payload(&world, id));
        }
    }

    #[test]
    fn topical_pages_use_topic_vocabulary() {
        let world = WorldConfig::small_test(4).build();
        // Find a database-research content page and check lexicon presence.
        let id = (0..world.page_count() as u64)
            .find(|&id| world.page(id).topic == Some(0) && world.page(id).kind == PageKind::Content)
            .unwrap();
        let p = payload(&world, id);
        let hits = lexicon::DATABASE_RESEARCH
            .iter()
            .filter(|w| p.contains(*w))
            .count();
        assert!(hits >= 5, "only {hits} topical words in payload");
    }

    #[test]
    fn pdf_pages_are_envelopes() {
        let world = WorldConfig::small_test(4).build();
        let id = (0..world.page_count() as u64)
            .find(|&id| world.page(id).mime == MimeType::Pdf)
            .unwrap();
        assert!(payload(&world, id).starts_with("%SIMPDF\n"));
    }

    #[test]
    fn zip_pages_are_archives_with_entries() {
        let world = WorldConfig::small_test(4).build();
        let id = (0..world.page_count() as u64).find(|&id| world.page(id).mime == MimeType::Zip);
        // Zip pages are rare (3%); tolerate absence in a tiny world by
        // scanning a second seed.
        let (world, id) = match id {
            Some(id) => (world, id),
            None => {
                let w2 = WorldConfig::small_test(9).build();
                let id2 = (0..w2.page_count() as u64)
                    .find(|&id| w2.page(id).mime == MimeType::Zip)
                    .expect("some zip page across two seeds");
                (w2, id2)
            }
        };
        let p = payload(&world, id);
        assert!(p.starts_with("%SIMZIP\n"));
        let reg = bingo_textproc::ContentRegistry::new();
        let html = reg.to_html(MimeType::Zip, &p).unwrap();
        let parsed = bingo_textproc::html::parse(&html);
        assert!(parsed.text.split_whitespace().count() > 50);
    }

    #[test]
    fn links_render_as_anchors() {
        let world = WorldConfig::small_test(4).build();
        let id = (0..world.page_count() as u64)
            .find(|&id| !world.page(id).out.is_empty() && world.page(id).mime == MimeType::Html)
            .unwrap();
        let p = payload(&world, id);
        let parsed = bingo_textproc::html::parse(&p);
        assert_eq!(
            parsed.links.len(),
            world.page(id).out.len() + world.page(id).extra_out_urls.len()
        );
        // Every rendered link resolves back to the intended target.
        for (link, &target) in parsed.links.iter().zip(&world.page(id).out) {
            assert_eq!(world.resolve_url(&link.href), Some(target));
        }
    }

    #[test]
    fn welcome_pages_are_text_poor() {
        let world = WorldConfig::small_test(4).build();
        let welcome = (0..world.page_count() as u64)
            .find(|&id| world.page(id).kind == PageKind::Welcome)
            .unwrap();
        let content = (0..world.page_count() as u64)
            .find(|&id| world.page(id).kind == PageKind::Content)
            .unwrap();
        let wt = bingo_textproc::html::parse(&payload(&world, welcome)).text;
        let ct = bingo_textproc::html::parse(&payload(&world, content)).text;
        assert!(
            wt.split_whitespace().count() < ct.split_whitespace().count(),
            "welcome pages must carry less text than content pages"
        );
    }
}
