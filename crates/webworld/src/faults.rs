//! Deterministic fault injection: scripted failure windows per host.
//!
//! The base world models *static* host pathologies (slow, flaky, dead —
//! Section 4.2). Real crawls additionally hit *transient* trouble: a
//! server throws 5xx for ten minutes and recovers, a saturated uplink
//! drips bytes until clients time out, a load balancer truncates bodies,
//! DNS flaps, a misconfigured rewrite rule loops redirects. This module
//! scripts such episodes as virtual-time windows per host, derived
//! entirely from the world seed, so a "chaotic" crawl is exactly
//! reproducible: same seed, same outages, same recovery times.
//!
//! The crawler never sees this plan directly — faults manifest only
//! through [`crate::World::fetch_at`] and [`crate::World::dns_lookup_at`]
//! outcomes, the same way a real crawler only sees socket behaviour.

use bingo_graph::HostId;
use bingo_textproc::fxhash::FxHashMap;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What a host does to requests while a fault window is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Connections hang until the client times out (full outage).
    Outage,
    /// Every request is answered with this 5xx status.
    ErrorBurst {
        /// HTTP status served (500..=504).
        status: u16,
    },
    /// Responses arrive, but transfer slows by this factor; transfers
    /// that would exceed the client timeout fail as timeouts.
    SlowDrip {
        /// Latency multiplier.
        factor: u32,
    },
    /// Bodies are cut short: only `keep_permille`/1000 of the payload is
    /// delivered while the full content length is still advertised, so
    /// clients can detect the truncation.
    Truncate {
        /// Delivered fraction of the body, in per-mille.
        keep_permille: u16,
    },
    /// Bodies arrive complete but corrupted (undetectable at transfer
    /// time; downstream parsing sees garbage).
    Garble,
    /// Authoritative DNS stops answering (lookups time out on every
    /// server); cached resolutions keep working.
    DnsFlap,
    /// Every page answers with a redirect into an endless synthetic
    /// chain (a rewrite-rule loop).
    RedirectLoop,
}

/// One scripted fault episode on a host: `kind` holds during
/// `[start_ms, end_ms)` of virtual time, then the host recovers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// First virtual millisecond the fault is active.
    pub start_ms: u64,
    /// First virtual millisecond after recovery.
    pub end_ms: u64,
    /// Failure mode during the window.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// True while the window is active.
    pub fn contains(&self, now_ms: u64) -> bool {
        self.start_ms <= now_ms && now_ms < self.end_ms
    }
}

/// Parameters for seeding a fault script over a generated world.
#[derive(Debug, Clone)]
pub struct FaultProfile {
    /// Fraction of hosts that receive a fault script.
    pub host_fraction: f64,
    /// Maximum scripted windows per faulty host (at least one).
    pub max_windows_per_host: u32,
    /// Windows are scheduled within `[0, horizon_ms)` of virtual time.
    pub horizon_ms: u64,
    /// Minimum and maximum window duration in virtual milliseconds.
    pub window_ms: (u64, u64),
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            host_fraction: 0.35,
            max_windows_per_host: 3,
            horizon_ms: 900_000,
            window_ms: (5_000, 60_000),
        }
    }
}

impl FaultProfile {
    /// An aggressive profile for chaos tests: most hosts fault, windows
    /// come early and often relative to a short crawl. The horizon is
    /// matched to the small-test worlds, whose crawls span roughly
    /// 40-60 virtual seconds — windows scheduled much later than that
    /// would never be observed.
    pub fn chaos() -> Self {
        FaultProfile {
            host_fraction: 0.6,
            max_windows_per_host: 4,
            horizon_ms: 60_000,
            window_ms: (2_000, 12_000),
        }
    }
}

/// The complete fault script of a world: per-host windows, sorted by
/// start time. Empty by default (worlds without a configured profile
/// behave exactly as before).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    windows: FxHashMap<HostId, Vec<FaultWindow>>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// True when no host has a fault script.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Number of hosts with at least one scripted window.
    pub fn faulty_hosts(&self) -> usize {
        self.windows.len()
    }

    /// Generate the script for `host_count` hosts. Pure function of the
    /// arguments: the same seed and profile always produce the same
    /// schedule.
    pub fn generate(seed: u64, host_count: usize, profile: &FaultProfile) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x000F_A017_C4A0_5BAD);
        let mut plan = FaultPlan::default();
        let (min_len, max_len) = profile.window_ms;
        let max_len = max_len.max(min_len + 1);
        for host in 0..host_count as HostId {
            if !rng.gen_bool(profile.host_fraction) {
                continue;
            }
            let n = rng.gen_range(1..=profile.max_windows_per_host.max(1));
            // Windows are laid out sequentially with gaps, so a host's
            // episodes never overlap and recovery phases exist between
            // them.
            let mut t = rng.gen_range(0..profile.horizon_ms.max(2) / 2);
            for _ in 0..n {
                if t >= profile.horizon_ms {
                    break;
                }
                let len = rng.gen_range(min_len..max_len);
                let kind = sample_kind(&mut rng);
                plan.insert_window(
                    host,
                    FaultWindow {
                        start_ms: t,
                        end_ms: t + len,
                        kind,
                    },
                );
                t += len + rng.gen_range(min_len..max_len * 2);
            }
        }
        plan
    }

    /// Add one window to a host's script (scenario overlays use this for
    /// hand-authored episodes). Keeps the script sorted by start time.
    pub fn insert_window(&mut self, host: HostId, window: FaultWindow) {
        let script = self.windows.entry(host).or_default();
        script.push(window);
        script.sort_by_key(|w| w.start_ms);
    }

    /// The fault active on `host` at `now_ms`, if any.
    pub fn active(&self, host: HostId, now_ms: u64) -> Option<&FaultWindow> {
        self.windows.get(&host)?.iter().find(|w| w.contains(now_ms))
    }

    /// The full script of a host (empty for healthy hosts).
    pub fn windows_for(&self, host: HostId) -> &[FaultWindow] {
        self.windows.get(&host).map(Vec::as_slice).unwrap_or(&[])
    }
}

fn sample_kind(rng: &mut SmallRng) -> FaultKind {
    match rng.gen_range(0u32..7) {
        0 => FaultKind::Outage,
        1 => FaultKind::ErrorBurst {
            status: 500 + rng.gen_range(0u16..4),
        },
        2 => FaultKind::SlowDrip {
            factor: rng.gen_range(4u32..16),
        },
        3 => FaultKind::Truncate {
            keep_permille: rng.gen_range(100u16..800),
        },
        4 => FaultKind::Garble,
        5 => FaultKind::DnsFlap,
        _ => FaultKind::RedirectLoop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = FaultProfile::chaos();
        let a = FaultPlan::generate(99, 40, &p);
        let b = FaultPlan::generate(99, 40, &p);
        for h in 0..40 {
            assert_eq!(a.windows_for(h), b.windows_for(h), "host {h}");
        }
        let c = FaultPlan::generate(100, 40, &p);
        let differs = (0..40).any(|h| a.windows_for(h) != c.windows_for(h));
        assert!(differs, "different seeds must differ");
    }

    #[test]
    fn windows_are_sorted_and_disjoint_per_host() {
        let plan = FaultPlan::generate(7, 60, &FaultProfile::chaos());
        assert!(plan.faulty_hosts() > 10, "chaos profile faults most hosts");
        for h in 0..60 {
            let ws = plan.windows_for(h);
            for w in ws {
                assert!(w.start_ms < w.end_ms);
            }
            for pair in ws.windows(2) {
                assert!(pair[0].end_ms <= pair[1].start_ms, "overlap on host {h}");
            }
        }
    }

    #[test]
    fn active_lookup_matches_windows() {
        let mut plan = FaultPlan::empty();
        plan.insert_window(
            3,
            FaultWindow {
                start_ms: 100,
                end_ms: 200,
                kind: FaultKind::Outage,
            },
        );
        plan.insert_window(
            3,
            FaultWindow {
                start_ms: 50,
                end_ms: 80,
                kind: FaultKind::Garble,
            },
        );
        assert_eq!(plan.active(3, 60).unwrap().kind, FaultKind::Garble);
        assert!(plan.active(3, 90).is_none());
        assert_eq!(plan.active(3, 100).unwrap().kind, FaultKind::Outage);
        assert!(plan.active(3, 200).is_none(), "end is exclusive");
        assert!(plan.active(4, 60).is_none(), "other hosts unaffected");
        assert_eq!(plan.windows_for(3)[0].kind, FaultKind::Garble, "sorted");
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.faulty_hosts(), 0);
        assert!(plan.active(0, 0).is_none());
    }
}
