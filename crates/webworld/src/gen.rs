//! World generation: topics, hosts, pages, the link graph, the author
//! directory, host behaviours, duplicates, redirects and traps.
//!
//! Generation is fully deterministic given [`WorldConfig::seed`].

use crate::dblp::{publication_count, AuthorInfo};
use crate::faults::{FaultPlan, FaultProfile, FaultWindow};
use crate::lexicon;
use crate::scenario::ScenarioSpec;
use crate::{HostBehavior, HostMeta, PageKind, PageMeta, TopicInfo, World};
use bingo_graph::{HostId, PageId};
use bingo_textproc::fxhash::FxHashMap;
use bingo_textproc::MimeType;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One topic of the synthetic web.
#[derive(Debug, Clone)]
pub struct TopicConfig {
    /// Topic name (also used in hostnames).
    pub name: String,
    /// Key into [`lexicon::by_key`].
    pub lexicon_key: String,
    /// Content pages to generate for the topic.
    pub pages: usize,
    /// Hosts carrying those pages.
    pub hosts: usize,
}

impl TopicConfig {
    /// Convenience constructor.
    pub fn new(name: &str, lexicon_key: &str, pages: usize, hosts: usize) -> Self {
        TopicConfig {
            name: name.to_string(),
            lexicon_key: lexicon_key.to_string(),
            pages,
            hosts: hosts.max(1),
        }
    }
}

/// Configuration of the synthetic author directory (attached to one
/// topic, for the portal-generation experiment).
#[derive(Debug, Clone)]
pub struct AuthorDirectoryConfig {
    /// Number of authors.
    pub authors: usize,
    /// Publication count of the most prolific author (DBLP: 258).
    pub max_pubs: u32,
    /// Topic id the directory belongs to.
    pub topic: u32,
    /// Department hosts carrying the homepages.
    pub hosts: usize,
}

/// Full world configuration. Use a preset
/// ([`WorldConfig::small_test`], [`WorldConfig::portal`],
/// [`WorldConfig::expert`]) or build one by hand.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; everything (graph and content) derives from it.
    pub seed: u64,
    /// Topics; index in this vector is the topic id.
    pub topics: Vec<TopicConfig>,
    /// Optional author directory.
    pub author_directory: Option<AuthorDirectoryConfig>,
    /// Scenario overlays applied after base generation.
    pub scenarios: Vec<ScenarioSpec>,
    /// Cross links per content page (mean).
    pub avg_out_links: usize,
    /// Probability that a cross link stays within the topic.
    pub p_intra_topic: f64,
    /// Fraction of topical content pages served as simulated PDF.
    pub pdf_fraction: f64,
    /// Fraction of topical pages that are hubs.
    pub hub_fraction: f64,
    /// Host behaviour mix, applied to noise-topic hosts only (research
    /// hosts stay reachable so experiments are about focusing, not luck).
    pub slow_host_fraction: f64,
    /// Fraction of noise hosts failing ~20% of requests.
    pub flaky_host_fraction: f64,
    /// Fraction of noise hosts that never respond.
    pub dead_host_fraction: f64,
    /// Fraction of pages that also exist under an alias path (duplicate
    /// content, exercises the IP+filesize fingerprint of Section 4.2).
    pub alias_fraction: f64,
    /// Fraction of pages reachable through a redirect stub.
    pub redirect_fraction: f64,
    /// Topic ids counted as "noise" for host-behaviour purposes. Topics
    /// not listed keep healthy hosts.
    pub noise_topics: Vec<u32>,
    /// Multiplier on host latencies. 1 gives LAN-like latencies for fast
    /// tests; ~10 approximates 2002-era web round trips so virtual crawl
    /// durations are comparable to the paper's wall-clock budgets.
    pub latency_scale: u32,
    /// Probability that a content page blends in a second topic's
    /// vocabulary (ambiguous pages are what make classification hard on
    /// the real Web).
    pub topic_blend: f64,
    /// Pairs of *related* topics whose vocabularies may blend (blending
    /// is symmetric). Unrelated topics never mix — a sports page does
    /// not cite recovery algorithms.
    pub related_topics: Vec<(u32, u32)>,
    /// Seeded fault script over the generated hosts ([`crate::faults`]).
    /// `None` (all presets) keeps the world fault-free; chaos tests set
    /// a profile or call [`World::install_faults`] after generation.
    pub fault_profile: Option<FaultProfile>,
}

impl WorldConfig {
    /// Tiny world for unit tests: two research topics plus noise.
    pub fn small_test(seed: u64) -> Self {
        WorldConfig {
            seed,
            topics: vec![
                TopicConfig::new("dbresearch", "database_research", 60, 3),
                TopicConfig::new("datamining", "data_mining", 40, 2),
                TopicConfig::new("sports", "sports", 60, 3),
                TopicConfig::new("entertainment", "entertainment", 60, 3),
            ],
            author_directory: Some(AuthorDirectoryConfig {
                authors: 20,
                max_pubs: 60,
                topic: 0,
                hosts: 2,
            }),
            scenarios: Vec::new(),
            avg_out_links: 5,
            p_intra_topic: 0.75,
            pdf_fraction: 0.2,
            hub_fraction: 0.06,
            slow_host_fraction: 0.1,
            flaky_host_fraction: 0.1,
            dead_host_fraction: 0.05,
            alias_fraction: 0.1,
            redirect_fraction: 0.05,
            noise_topics: vec![2, 3],
            latency_scale: 1,
            topic_blend: 0.25,
            related_topics: vec![(0, 1)],
            fault_profile: None,
        }
    }

    /// The small-test world with an aggressive fault script layered on:
    /// same graph and content as [`WorldConfig::small_test`], but most
    /// hosts suffer scripted outages, error bursts, slow drips,
    /// truncation, garbling, DNS flaps and redirect loops.
    pub fn chaos(seed: u64) -> Self {
        WorldConfig {
            fault_profile: Some(FaultProfile::chaos()),
            ..WorldConfig::small_test(seed)
        }
    }

    /// The portal-generation world of Section 5.2: a database-research
    /// community with `authors` researchers, embedded in a much larger
    /// noise web.
    pub fn portal(seed: u64, authors: usize, noise_scale: usize) -> Self {
        WorldConfig {
            seed,
            topics: vec![
                TopicConfig::new("dbresearch", "database_research", 400 + authors / 4, 12),
                TopicConfig::new("datamining", "data_mining", 250, 6),
                TopicConfig::new("webir", "web_ir", 250, 6),
                TopicConfig::new("sports", "sports", 900 * noise_scale, 20),
                TopicConfig::new("entertainment", "entertainment", 900 * noise_scale, 20),
                TopicConfig::new("agriculture", "agriculture", 600 * noise_scale, 12),
                TopicConfig::new("arts", "arts", 600 * noise_scale, 12),
            ],
            author_directory: Some(AuthorDirectoryConfig {
                authors,
                max_pubs: 258,
                topic: 0,
                hosts: (authors / 60).max(4),
            }),
            scenarios: Vec::new(),
            avg_out_links: 7,
            p_intra_topic: 0.72,
            pdf_fraction: 0.25,
            hub_fraction: 0.05,
            slow_host_fraction: 0.08,
            flaky_host_fraction: 0.08,
            dead_host_fraction: 0.04,
            alias_fraction: 0.08,
            redirect_fraction: 0.05,
            noise_topics: vec![3, 4, 5, 6],
            latency_scale: 10,
            topic_blend: 0.25,
            related_topics: vec![(0, 1), (0, 2), (1, 2)],
            fault_profile: None,
        }
    }

    /// The expert-search world of Section 5.3: the ARIES scenario overlay
    /// on top of a database/OS/noise web.
    pub fn expert(seed: u64) -> Self {
        WorldConfig {
            seed,
            topics: vec![
                TopicConfig::new("dbresearch", "database_research", 500, 10),
                TopicConfig::new("recovery", "aries_recovery", 220, 6),
                TopicConfig::new("opensource", "open_source", 260, 8),
                TopicConfig::new("sports", "sports", 900, 16),
                TopicConfig::new("entertainment", "entertainment", 900, 16),
            ],
            author_directory: None,
            scenarios: vec![crate::scenario::aries_scenario()],
            avg_out_links: 7,
            p_intra_topic: 0.7,
            pdf_fraction: 0.3,
            hub_fraction: 0.05,
            slow_host_fraction: 0.08,
            flaky_host_fraction: 0.08,
            dead_host_fraction: 0.04,
            alias_fraction: 0.08,
            redirect_fraction: 0.05,
            noise_topics: vec![3, 4],
            latency_scale: 10,
            topic_blend: 0.25,
            // Recovery and open-source both border database research but
            // not each other — the scenario's needle pages are the rare
            // bridge between the two communities.
            related_topics: vec![(0, 1), (0, 2)],
            fault_profile: None,
        }
    }

    /// Generate the world.
    pub fn build(self) -> World {
        Generator::new(self).run()
    }
}

pub(crate) struct Generator {
    cfg: WorldConfig,
    rng: StdRng,
    hosts: Vec<HostMeta>,
    pages: Vec<PageMeta>,
    topics: Vec<TopicInfo>,
    /// Hosts per topic.
    topic_hosts: Vec<Vec<HostId>>,
    /// Welcome page per host.
    host_welcome: Vec<PageId>,
    /// Pages per host (for nav links).
    host_pages: Vec<Vec<PageId>>,
    /// Content/hub pages per topic.
    topic_pages: Vec<Vec<PageId>>,
    /// Weighted link targets per topic: (page, weight, cumulative).
    authors: Vec<AuthorInfo>,
    named: FxHashMap<String, PageId>,
    /// Hand-authored fault windows from scenario overlays, merged into
    /// the generated fault plan at finish time.
    scenario_faults: Vec<(HostId, FaultWindow)>,
}

impl Generator {
    fn new(cfg: WorldConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Generator {
            rng,
            hosts: Vec::new(),
            pages: Vec::new(),
            topics: Vec::new(),
            topic_hosts: Vec::new(),
            host_welcome: Vec::new(),
            host_pages: Vec::new(),
            topic_pages: Vec::new(),
            authors: Vec::new(),
            named: FxHashMap::default(),
            scenario_faults: Vec::new(),
            cfg,
        }
    }

    fn run(mut self) -> World {
        let n_topics = self.cfg.topics.len();
        self.topic_hosts = vec![Vec::new(); n_topics];
        self.topic_pages = vec![Vec::new(); n_topics];
        for t in 0..n_topics {
            self.topics.push(TopicInfo {
                name: self.cfg.topics[t].name.clone(),
                lexicon: lexicon::by_key(&self.cfg.topics[t].lexicon_key)
                    .unwrap_or(lexicon::COMMON),
            });
        }

        for t in 0..n_topics {
            self.create_topic_hosts(t as u32);
        }
        for t in 0..n_topics {
            self.create_topic_pages(t as u32);
        }
        if let Some(ad) = self.cfg.author_directory.clone() {
            self.create_author_directory(&ad);
        }
        self.create_links();
        self.create_redirect_stubs();
        self.create_media_and_traps();
        self.apply_host_behaviors();
        let scenarios = std::mem::take(&mut self.cfg.scenarios);
        for spec in &scenarios {
            crate::scenario::apply(&mut self, spec);
        }
        self.finish()
    }

    pub(crate) fn add_host(&mut self, name: String, _healthy: bool) -> HostId {
        let id = self.hosts.len() as HostId;
        let scale = self.cfg.latency_scale.max(1);
        let base_latency_ms = self.rng.gen_range(20..120) * scale;
        let dns_latency_ms = self.rng.gen_range(5..60) * scale;
        self.hosts.push(HostMeta {
            name,
            ip: 0x0a00_0000 + id, // deterministic fake 10.x address space
            base_latency_ms,
            // Behaviours are (possibly) downgraded later in
            // apply_host_behaviors; `healthy` hosts are exempt from that.
            behavior: HostBehavior::Normal,
            dns_latency_ms,
        });
        self.host_pages.push(Vec::new());
        // Welcome page for the host.
        let wid = self.add_page(PageMeta {
            host: id,
            path: "index.html".to_string(),
            topic: None,
            secondary_topic: None,
            kind: PageKind::Welcome,
            mime: MimeType::Html,
            out: Vec::new(),
            redirect_to: None,
            author: None,
            content_override: None,
            extra_out_urls: Vec::new(),
            size_hint: None,
        });
        self.host_welcome.push(wid);
        id
    }

    pub(crate) fn add_page(&mut self, meta: PageMeta) -> PageId {
        let id = self.pages.len() as PageId;
        self.host_pages[meta.host as usize].push(id);
        self.pages.push(meta);
        id
    }

    fn create_topic_hosts(&mut self, topic: u32) {
        let tc = self.cfg.topics[topic as usize].clone();
        let tld = if self.cfg.noise_topics.contains(&topic) {
            "com"
        } else {
            "edu"
        };
        for h in 0..tc.hosts {
            let name = format!("{}{h}.{tld}", tc.name);
            let id = self.add_host(name, true);
            self.topic_hosts[topic as usize].push(id);
        }
    }

    fn create_topic_pages(&mut self, topic: u32) {
        let tc = self.cfg.topics[topic as usize].clone();
        let hosts = self.topic_hosts[topic as usize].clone();
        for k in 0..tc.pages {
            // Zipf-ish host pick: earlier hosts carry more pages.
            let hidx = self.zipf_index(hosts.len());
            let host = hosts[hidx];
            let is_hub = self.rng.gen_bool(self.cfg.hub_fraction);
            let is_pdf = !is_hub && self.rng.gen_bool(self.cfg.pdf_fraction);
            // A few "proceedings" archives per topic exercise the zip
            // content handler during crawls.
            let is_zip = !is_hub && !is_pdf && self.rng.gen_bool(0.03);
            let (kind, mime, path) = if is_hub {
                (PageKind::Hub, MimeType::Html, format!("links{k}.html"))
            } else if is_pdf {
                (PageKind::Content, MimeType::Pdf, format!("papers/p{k}.pdf"))
            } else if is_zip {
                (
                    PageKind::Content,
                    MimeType::Zip,
                    format!("proceedings/v{k}.zip"),
                )
            } else {
                (PageKind::Content, MimeType::Html, format!("p{k}.html"))
            };
            let partners: Vec<u32> = self
                .cfg
                .related_topics
                .iter()
                .filter_map(|&(a, b)| {
                    if a == topic {
                        Some(b)
                    } else if b == topic {
                        Some(a)
                    } else {
                        None
                    }
                })
                .collect();
            let secondary_topic = if kind == PageKind::Content
                && !partners.is_empty()
                && self.rng.gen_bool(self.cfg.topic_blend)
            {
                Some(partners[self.rng.gen_range(0..partners.len())])
            } else {
                None
            };
            let id = self.add_page(PageMeta {
                host,
                path,
                topic: Some(topic),
                secondary_topic,
                kind,
                mime,
                out: Vec::new(),
                redirect_to: None,
                author: None,
                content_override: None,
                extra_out_urls: Vec::new(),
                size_hint: None,
            });
            self.topic_pages[topic as usize].push(id);
        }
    }

    fn create_author_directory(&mut self, ad: &AuthorDirectoryConfig) {
        // Dedicated department hosts.
        let mut dept_hosts = Vec::new();
        for h in 0..ad.hosts {
            let id = self.add_host(format!("cs-u{h}.edu"), true);
            self.topic_hosts[ad.topic as usize].push(id);
            dept_hosts.push(id);
        }
        for a in 0..ad.authors {
            let pubs = publication_count(a, ad.max_pubs);
            let host = dept_hosts[a % dept_hosts.len()];
            let prefix_path = format!("~a{a}");
            let mut pages = Vec::new();
            let homepage = self.add_page(PageMeta {
                host,
                path: format!("{prefix_path}/index.html"),
                topic: Some(ad.topic),
                secondary_topic: None,
                kind: PageKind::AuthorHome,
                mime: MimeType::Html,
                out: Vec::new(),
                redirect_to: None,
                author: Some(a as u32),
                content_override: None,
                extra_out_urls: Vec::new(),
                size_hint: None,
            });
            pages.push(homepage);
            let pubs_page = self.add_page(PageMeta {
                host,
                path: format!("{prefix_path}/pubs.html"),
                topic: Some(ad.topic),
                secondary_topic: None,
                kind: PageKind::AuthorPub,
                mime: MimeType::Html,
                out: Vec::new(),
                redirect_to: None,
                author: Some(a as u32),
                content_override: None,
                extra_out_urls: Vec::new(),
                size_hint: None,
            });
            pages.push(pubs_page);
            let n_papers = (1 + pubs / 60).min(3) as usize;
            for p in 0..n_papers {
                let paper = self.add_page(PageMeta {
                    host,
                    path: format!("{prefix_path}/paper{p}.pdf"),
                    topic: Some(ad.topic),
                    secondary_topic: None,
                    kind: PageKind::AuthorPub,
                    mime: MimeType::Pdf,
                    out: Vec::new(),
                    redirect_to: None,
                    author: Some(a as u32),
                    content_override: None,
                    extra_out_urls: Vec::new(),
                    size_hint: None,
                });
                pages.push(paper);
            }
            let host_name = self.hosts[host as usize].name.clone();
            self.authors.push(AuthorInfo {
                index: a as u32,
                name: author_name(a as u32),
                publication_count: pubs,
                homepage,
                homepage_prefix: format!("http://{host_name}/{prefix_path}/"),
                pages: pages.clone(),
            });
            // Author pages participate in the topic's link universe.
            self.topic_pages[ad.topic as usize].extend(pages);
        }
    }

    /// Weighted target sampler for a topic: author homepages are weighted
    /// by publication count, hubs and early ("authority") pages get a
    /// boost, the rest weight 1. Returns a cumulative table.
    fn topic_target_table(&self, topic: u32) -> (Vec<PageId>, Vec<f64>) {
        let pages = &self.topic_pages[topic as usize];
        let mut cum = Vec::with_capacity(pages.len());
        let mut total = 0.0f64;
        for (i, &p) in pages.iter().enumerate() {
            let meta = &self.pages[p as usize];
            let w = match meta.kind {
                PageKind::AuthorHome => {
                    let a = meta.author.unwrap() as usize;
                    1.0 + self.authors[a].publication_count as f64 / 8.0
                }
                PageKind::Hub => 4.0,
                _ if i < pages.len() / 50 + 1 => 5.0, // designated authorities
                _ => 1.0,
            };
            total += w;
            cum.push(total);
        }
        (pages.clone(), cum)
    }

    fn sample_from_table(&mut self, table: &(Vec<PageId>, Vec<f64>)) -> Option<PageId> {
        let (pages, cum) = table;
        let total = *cum.last()?;
        let x = self.rng.gen_range(0.0..total);
        let idx = cum.partition_point(|&c| c <= x);
        pages.get(idx).or(pages.last()).copied()
    }

    fn create_links(&mut self) {
        let n_topics = self.cfg.topics.len();
        let tables: Vec<(Vec<PageId>, Vec<f64>)> = (0..n_topics)
            .map(|t| self.topic_target_table(t as u32))
            .collect();
        let all_pages = self.pages.len() as u64;

        for id in 0..all_pages {
            let meta = self.pages[id as usize].clone();
            let mut out: Vec<PageId> = Vec::new();
            match meta.kind {
                PageKind::Welcome => {
                    // Link to up to 20 pages of the own host.
                    let own: Vec<PageId> = self.host_pages[meta.host as usize]
                        .iter()
                        .copied()
                        .filter(|&p| p != id)
                        .take(20)
                        .collect();
                    out.extend(own);
                    // A couple of cross-host welcome links.
                    for _ in 0..2 {
                        let h = self.rng.gen_range(0..self.hosts.len());
                        let w = self.host_welcome[h];
                        if w != id {
                            out.push(w);
                        }
                    }
                }
                PageKind::Hub => {
                    let topic = meta.topic.unwrap_or(0) as usize;
                    let n = 15 + self.rng.gen_range(0..20);
                    for _ in 0..n {
                        if let Some(t) = self.sample_from_table(&tables[topic]) {
                            if t != id {
                                out.push(t);
                            }
                        }
                    }
                }
                PageKind::Content => {
                    // Navigation: own welcome + one sibling.
                    out.push(self.host_welcome[meta.host as usize]);
                    if let Some(&sib) = self.host_pages[meta.host as usize].get(
                        self.rng
                            .gen_range(0..self.host_pages[meta.host as usize].len()),
                    ) {
                        if sib != id {
                            out.push(sib);
                        }
                    }
                    // Cross links with topical locality.
                    let n = 1 + self.rng.gen_range(0..(self.cfg.avg_out_links * 2).max(2));
                    for _ in 0..n {
                        let target = if let (Some(topic), true) =
                            (meta.topic, self.rng.gen_bool(self.cfg.p_intra_topic))
                        {
                            self.sample_from_table(&tables[topic as usize])
                        } else {
                            Some(self.rng.gen_range(0..all_pages))
                        };
                        if let Some(t) = target {
                            if t != id {
                                out.push(t);
                            }
                        }
                    }
                }
                PageKind::AuthorHome => {
                    let a = meta.author.unwrap() as usize;
                    // Own pages.
                    out.extend(self.authors[a].pages.iter().copied().filter(|&p| p != id));
                    out.push(self.host_welcome[meta.host as usize]);
                    // Coauthor homepages, preferential by publication count.
                    let topic = meta.topic.unwrap_or(0) as usize;
                    for _ in 0..self.rng.gen_range(2..5) {
                        if let Some(t) = self.sample_from_table(&tables[topic]) {
                            if t != id {
                                out.push(t);
                            }
                        }
                    }
                }
                PageKind::AuthorPub => {
                    let a = meta.author.unwrap() as usize;
                    out.push(self.authors[a].homepage);
                    // Citations to other authors / topic pages.
                    let topic = meta.topic.unwrap_or(0) as usize;
                    for _ in 0..self.rng.gen_range(1..4) {
                        if let Some(t) = self.sample_from_table(&tables[topic]) {
                            if t != id {
                                out.push(t);
                            }
                        }
                    }
                }
                _ => {}
            }
            out.sort_unstable();
            out.dedup();
            self.pages[id as usize].out = out;
        }
    }

    fn create_redirect_stubs(&mut self) {
        let n = self.pages.len() as u64;
        for id in 0..n {
            if self.pages[id as usize].kind == PageKind::Welcome {
                continue;
            }
            if !self.rng.gen_bool(self.cfg.redirect_fraction) {
                continue;
            }
            let meta = &self.pages[id as usize];
            let stub = PageMeta {
                host: meta.host,
                path: format!("old/{}", meta.path),
                topic: None,
                secondary_topic: None,
                kind: PageKind::Redirect,
                mime: MimeType::Html,
                out: Vec::new(),
                redirect_to: Some(id),
                author: None,
                content_override: None,
                extra_out_urls: Vec::new(),
                size_hint: None,
            };
            let stub_id = self.add_page(stub);
            // Reroute a random existing link to the stub: pick a
            // predecessor-ish random page and append.
            let linker = self.rng.gen_range(0..n);
            if linker != stub_id {
                self.pages[linker as usize].out.push(stub_id);
            }
        }
    }

    fn create_media_and_traps(&mut self) {
        // One oversized media file per ~6th host, linked from the welcome
        // page; plus trap links (overlong URL, 404) on a few welcome pages.
        let n_hosts = self.hosts.len();
        for h in (0..n_hosts).step_by(6) {
            let media = self.add_page(PageMeta {
                host: h as HostId,
                path: format!("video{h}.mp4"),
                topic: None,
                secondary_topic: None,
                kind: PageKind::Media,
                mime: MimeType::Video,
                out: Vec::new(),
                redirect_to: None,
                author: None,
                content_override: Some("binary".into()),
                extra_out_urls: Vec::new(),
                size_hint: Some(50_000_000),
            });
            let w = self.host_welcome[h];
            self.pages[w as usize].out.push(media);
        }
        for h in (0..n_hosts).step_by(9) {
            let host_name = self.hosts[h].name.clone();
            let w = self.host_welcome[h];
            let long_path = "x".repeat(1200);
            self.pages[w as usize]
                .extra_out_urls
                .push(format!("http://{host_name}/{long_path}"));
            self.pages[w as usize]
                .extra_out_urls
                .push(format!("http://{host_name}/does-not-exist{h}.html"));
        }
    }

    fn apply_host_behaviors(&mut self) {
        // Only noise-topic hosts degrade; research hosts stay healthy.
        let mut noise_hosts: Vec<HostId> = Vec::new();
        for &t in &self.cfg.noise_topics {
            if let Some(hs) = self.topic_hosts.get(t as usize) {
                noise_hosts.extend(hs.iter().copied());
            }
        }
        // Explicit counts, guaranteeing at least one host per configured
        // failure class even in tiny worlds.
        let n = noise_hosts.len();
        let count = |frac: f64| -> usize {
            if frac <= 0.0 || n == 0 {
                0
            } else {
                ((frac * n as f64).round() as usize).clamp(1, n)
            }
        };
        let n_dead = count(self.cfg.dead_host_fraction);
        let n_flaky = count(self.cfg.flaky_host_fraction);
        let n_slow = count(self.cfg.slow_host_fraction);
        for (i, h) in noise_hosts.iter().enumerate() {
            let behavior = if i < n_dead {
                HostBehavior::Dead
            } else if i < n_dead + n_flaky {
                HostBehavior::Flaky(200)
            } else if i < n_dead + n_flaky + n_slow {
                HostBehavior::Slow
            } else {
                HostBehavior::Normal
            };
            self.hosts[*h as usize].behavior = behavior;
        }
    }

    fn finish(mut self) -> World {
        // Aliases.
        let mut aliases: FxHashMap<PageId, String> = FxHashMap::default();
        let n = self.pages.len() as u64;
        for id in 0..n {
            let meta = &self.pages[id as usize];
            if meta.kind == PageKind::Welcome || meta.kind == PageKind::Redirect {
                continue;
            }
            if self.rng.gen_bool(self.cfg.alias_fraction) {
                let host_name = &self.hosts[meta.host as usize].name;
                aliases.insert(id, format!("http://{host_name}/alias/{}", meta.path));
            }
        }

        // URL index (canonical + alias).
        let mut url_index: FxHashMap<String, PageId> = FxHashMap::default();
        for id in 0..n {
            let meta = &self.pages[id as usize];
            let url = format!(
                "http://{}/{}",
                self.hosts[meta.host as usize].name, meta.path
            );
            url_index.insert(url, id);
        }
        for (&id, alias) in &aliases {
            url_index.insert(alias.clone(), id);
        }

        // In-link index.
        let mut in_links: FxHashMap<PageId, Vec<PageId>> = FxHashMap::default();
        for id in 0..n {
            for &t in &self.pages[id as usize].out {
                in_links.entry(t).or_default().push(id);
            }
        }

        // Fault script: seeded plan (when configured) plus any scenario
        // overlays. Generated *after* all hosts exist so the script
        // covers scenario-added hosts too.
        let mut faults = match &self.cfg.fault_profile {
            Some(profile) => FaultPlan::generate(self.cfg.seed, self.hosts.len(), profile),
            None => FaultPlan::empty(),
        };
        for (host, window) in self.scenario_faults.drain(..) {
            faults.insert_window(host, window);
        }

        World {
            seed: self.cfg.seed,
            pages: self.pages,
            hosts: self.hosts,
            topics: self.topics,
            url_index,
            aliases,
            in_links,
            authors: self.authors,
            named: self.named,
            faults,
            paged: None,
        }
    }

    /// Zipf-ish index into `0..n`: earlier indexes are more likely.
    fn zipf_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        let u: f64 = self.rng.gen_range(0.0f64..1.0);
        let idx = (n as f64 * u * u) as usize;
        idx.min(n - 1)
    }

    /// RNG access for scenario application.
    pub(crate) fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    pub(crate) fn pages_mut(&mut self) -> &mut Vec<PageMeta> {
        &mut self.pages
    }

    pub(crate) fn pages_ref(&self) -> &[PageMeta] {
        &self.pages
    }

    pub(crate) fn hosts_ref(&self) -> &[HostMeta] {
        &self.hosts
    }

    pub(crate) fn topic_pages_ref(&self) -> &[Vec<PageId>] {
        &self.topic_pages
    }

    pub(crate) fn register_name(&mut self, name: String, page: PageId) {
        self.named.insert(name, page);
    }

    pub(crate) fn add_scenario_fault(&mut self, host: HostId, window: FaultWindow) {
        self.scenario_faults.push((host, window));
    }

    pub(crate) fn find_host(&self, name: &str) -> Option<HostId> {
        self.hosts
            .iter()
            .position(|h| h.name == name)
            .map(|i| i as HostId)
    }
}

/// Deterministic synthetic author name.
fn author_name(index: u32) -> String {
    let first = lexicon::filler_word(index as u64 * 31 + 7);
    let last = lexicon::filler_word(index as u64 * 17 + 3);
    let cap = |s: &str| {
        let mut c = s.chars();
        match c.next() {
            Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
            None => String::new(),
        }
    };
    format!("{} {}", cap(&first), cap(&last))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_world_has_structure() {
        let world = WorldConfig::small_test(1).build();
        let mut kinds: std::collections::HashMap<PageKind, usize> = Default::default();
        for id in 0..world.page_count() as u64 {
            *kinds.entry(world.page(id).kind).or_insert(0) += 1;
        }
        assert!(kinds[&PageKind::Welcome] >= 10);
        assert!(kinds[&PageKind::Content] > 100);
        assert!(kinds.get(&PageKind::Hub).copied().unwrap_or(0) > 0);
        assert!(kinds[&PageKind::AuthorHome] == 20);
        assert!(kinds.get(&PageKind::Media).copied().unwrap_or(0) > 0);
        assert!(kinds.get(&PageKind::Redirect).copied().unwrap_or(0) > 0);
    }

    #[test]
    fn author_directory_ground_truth() {
        let world = WorldConfig::small_test(1).build();
        let authors = world.authors();
        assert_eq!(authors.len(), 20);
        // Publication counts descend.
        for w in authors.windows(2) {
            assert!(w[0].publication_count >= w[1].publication_count);
        }
        // Homepage prefix matches the homepage URL.
        for a in authors {
            let url = world.url_of(a.homepage);
            assert!(
                url.starts_with(&a.homepage_prefix),
                "{url} vs {}",
                a.homepage_prefix
            );
            assert!(a.pages.len() >= 2, "homepage + pubs at least");
        }
    }

    #[test]
    fn topical_locality_holds() {
        let world = WorldConfig::small_test(3).build();
        // Measure: links from topic-0 content pages landing on topic-0.
        let mut same = 0usize;
        let mut cross = 0usize;
        for id in 0..world.page_count() as u64 {
            let p = world.page(id);
            if p.topic != Some(0) || p.kind != PageKind::Content {
                continue;
            }
            for &t in &p.out {
                match world.page(t).topic {
                    Some(0) => same += 1,
                    Some(_) => cross += 1,
                    None => {} // welcome/nav links don't count
                }
            }
        }
        assert!(
            same > cross,
            "topical locality violated: same={same} cross={cross}"
        );
    }

    #[test]
    fn prominent_authors_have_more_inlinks() {
        use bingo_graph::LinkSource;
        let world = WorldConfig::small_test(5).build();
        let authors = world.authors();
        let top = &authors[0];
        let bottom = &authors[authors.len() - 1];
        let top_in = world.predecessors(top.homepage).len();
        let bottom_in = world.predecessors(bottom.homepage).len();
        assert!(
            top_in > bottom_in,
            "top author in-links {top_in} <= bottom {bottom_in}"
        );
    }

    #[test]
    fn noise_hosts_carry_failures_research_hosts_do_not() {
        let world = WorldConfig::small_test(9).build();
        let mut degraded = 0;
        for h in 0..world.host_count() as u32 {
            let host = world.host(h);
            if host.behavior != HostBehavior::Normal {
                degraded += 1;
                assert!(
                    host.name.ends_with(".com"),
                    "research host {} degraded",
                    host.name
                );
            }
        }
        assert!(degraded > 0, "no degraded hosts generated");
    }

    #[test]
    fn redirect_stubs_point_at_canonical() {
        let world = WorldConfig::small_test(2).build();
        let mut seen = 0;
        for id in 0..world.page_count() as u64 {
            let p = world.page(id);
            if p.kind == PageKind::Redirect {
                let target = p.redirect_to.expect("redirect stub without target");
                assert_ne!(target, id);
                assert!((target as usize) < world.page_count());
                seen += 1;
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn author_names_deterministic() {
        assert_eq!(author_name(5), author_name(5));
        assert_ne!(author_name(5), author_name(6));
    }
}
