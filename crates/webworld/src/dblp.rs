//! The author directory: a synthetic stand-in for DBLP (Section 5.2).
//!
//! The paper evaluates portal generation against "31,582 authors with
//! explicit homepage URLs ... sorted in descending order of their number
//! of publications". The synthetic directory mirrors the measurement
//! protocol: each author has a homepage and pages *underneath* it
//! (publication lists, papers, CVs), and "a homepage counts as found if
//! the crawl result contains a Web page whose URL has the homepage path
//! as a prefix".

use bingo_graph::PageId;
use serde::{Deserialize, Serialize};

/// Ground-truth record of one author in the directory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuthorInfo {
    /// Author index (0 = most publications).
    pub index: u32,
    /// Synthetic name.
    pub name: String,
    /// Number of publications (descending in `index`).
    pub publication_count: u32,
    /// The homepage page id.
    pub homepage: PageId,
    /// URL prefix identifying the homepage and everything underneath it,
    /// e.g. `http://cs-u3.edu/~a17/`.
    pub homepage_prefix: String,
    /// All pages of this author (homepage, publication list, papers).
    pub pages: Vec<PageId>,
}

impl AuthorInfo {
    /// The evaluation rule of Section 5.2: a URL "finds" this author when
    /// it lies underneath the author's homepage path.
    pub fn matches_url(&self, url: &str) -> bool {
        url.starts_with(self.homepage_prefix.as_str())
    }
}

/// Publication count for an author at `rank` (0-based), Zipf-shaped from
/// `max_pubs` down to a floor of 2, matching DBLP's 258..2 spread.
pub fn publication_count(rank: usize, max_pubs: u32) -> u32 {
    let c = (max_pubs as f64) * ((rank + 1) as f64).powf(-0.57);
    (c as u32).max(2)
}

/// Evaluate crawl results against the directory, reproducing the
/// Tables 2/3 measurements.
///
/// * `result_urls` — crawl result URLs in descending classification
///   confidence;
/// * `authors` — the ground-truth directory;
/// * `top_n_authors` — the "Top 1000 DBLP" column cutoff;
/// * `result_cutoffs` — the "best crawl results" row cutoffs.
///
/// Returns, for each cutoff, `(found_in_top_n, found_total)`.
pub fn evaluate_found_authors(
    result_urls: &[String],
    authors: &[AuthorInfo],
    top_n_authors: usize,
    result_cutoffs: &[usize],
) -> Vec<(usize, usize, usize)> {
    // Sort authors by publication count descending to define the top-N set.
    let mut by_pubs: Vec<&AuthorInfo> = authors.iter().collect();
    by_pubs.sort_by(|a, b| {
        b.publication_count
            .cmp(&a.publication_count)
            .then(a.index.cmp(&b.index))
    });
    let top_set: std::collections::HashSet<u32> = by_pubs
        .iter()
        .take(top_n_authors)
        .map(|a| a.index)
        .collect();

    // Map each result URL to the author it finds (prefix match). Authors
    // are found once; later hits for the same author do not re-count.
    let prefix_to_author: std::collections::HashMap<&str, u32> = authors
        .iter()
        .map(|a| (a.homepage_prefix.as_str(), a.index))
        .collect();
    let mut cutoffs_sorted: Vec<usize> = result_cutoffs.to_vec();
    cutoffs_sorted.sort_unstable();
    let mut found: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut found_top = 0usize;
    let mut out = Vec::new();
    let mut next_cut = 0usize;

    for (i, url) in result_urls.iter().enumerate() {
        while next_cut < cutoffs_sorted.len() && i == cutoffs_sorted[next_cut] {
            out.push((cutoffs_sorted[next_cut], found_top, found.len()));
            next_cut += 1;
        }
        // Extract the candidate prefix "scheme://host/~name/" and look it
        // up directly rather than scanning all authors per URL.
        if let Some(prefix) = author_prefix_of(url) {
            if let Some(&idx) = prefix_to_author.get(prefix.as_str()) {
                if found.insert(idx) && top_set.contains(&idx) {
                    found_top += 1;
                }
            }
        }
    }
    while next_cut < cutoffs_sorted.len() {
        let c = cutoffs_sorted[next_cut].min(result_urls.len());
        out.push((c.max(cutoffs_sorted[next_cut]), found_top, found.len()));
        next_cut += 1;
    }
    out
}

/// Extract the `http://host/~name/` prefix from a URL, when present.
pub fn author_prefix_of(url: &str) -> Option<String> {
    let scheme_end = url.find("://")? + 3;
    let host_end = url[scheme_end..].find('/')? + scheme_end;
    let path = &url[host_end + 1..];
    if !path.starts_with('~') {
        return None;
    }
    let seg_end = path.find('/')?;
    Some(format!("{}{}/", &url[..host_end + 1], &path[..seg_end]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn author(i: u32, pubs: u32, prefix: &str) -> AuthorInfo {
        AuthorInfo {
            index: i,
            name: format!("A{i}"),
            publication_count: pubs,
            homepage: i as u64,
            homepage_prefix: prefix.to_string(),
            pages: vec![i as u64],
        }
    }

    #[test]
    fn prefix_extraction() {
        assert_eq!(
            author_prefix_of("http://cs-u1.edu/~a7/paper3.pdf"),
            Some("http://cs-u1.edu/~a7/".to_string())
        );
        assert_eq!(author_prefix_of("http://cs-u1.edu/p1.html"), None);
        assert_eq!(author_prefix_of("garbage"), None);
        assert_eq!(author_prefix_of("http://h/~a"), None, "no trailing slash");
    }

    #[test]
    fn matches_url_prefix_rule() {
        let a = author(0, 10, "http://h.edu/~a0/");
        assert!(a.matches_url("http://h.edu/~a0/index.html"));
        assert!(a.matches_url("http://h.edu/~a0/pubs/p.pdf"));
        assert!(!a.matches_url("http://h.edu/~a01/index.html"));
    }

    #[test]
    fn publication_counts_descend_with_floor() {
        let counts: Vec<u32> = (0..5000).map(|r| publication_count(r, 258)).collect();
        assert_eq!(counts[0], 258);
        for w in counts.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(*counts.last().unwrap(), 2);
    }

    #[test]
    fn evaluation_counts_once_per_author() {
        let authors = vec![
            author(0, 100, "http://h.edu/~a0/"),
            author(1, 50, "http://h.edu/~a1/"),
            author(2, 2, "http://h.edu/~a2/"),
        ];
        let results: Vec<String> = vec![
            "http://h.edu/~a0/p1.pdf".into(),
            "http://h.edu/~a0/p2.pdf".into(), // same author again
            "http://x.com/noise.html".into(),
            "http://h.edu/~a2/index.html".into(),
        ];
        // top_n_authors = 2 → authors 0 and 1 are the "top"; cutoffs at 2, 4.
        let eval = evaluate_found_authors(&results, &authors, 2, &[2, 4]);
        assert_eq!(eval[0], (2, 1, 1), "after 2 results: a0 found, in top");
        assert_eq!(eval[1], (4, 1, 2), "after all: a0 (top) and a2 found");
    }
}
