//! Lazily paged world generation for memory-bounded scale crawls.
//!
//! An eagerly generated [`World`] materializes every
//! `PageMeta` up front — fine at a hundred thousand pages, hopeless at a
//! million when the point of the experiment is a bounded resident set.
//! A *paged* world stores **no** per-page state: host and page metadata
//! are a pure arithmetic function of `(seed, host, page-within-host)`,
//! generated one host *block* at a time and held in a bounded cache.
//! Crawls exhibit strong host locality (the frontier drains per-host
//! queues), so a small hot set of blocks serves almost every lookup
//! while the world's resident footprint stays O(hot_cap · pages_per_host)
//! regardless of total size.
//!
//! Layout of the synthetic scale web:
//!
//! * host `h` is `h{h}.scale.test`, always healthy, with hash-derived
//!   latencies; its topic is `h % TOPIC_COUNT`.
//! * page ids are `h * pages_per_host + k`; `k == 0` is the host's
//!   welcome page, the rest are topical content pages.
//! * the welcome page links to the first content pages of its own host
//!   and to the welcome pages of hosts `2h+1` and `2h+2` — a binary
//!   heap over hosts, so every host is reachable from host 0 within
//!   `log2(hosts)` cross-host hops.
//! * content page `k` links back to its welcome, to sibling `k+1`
//!   (chaining the whole host), and to the welcome of a same-topic
//!   host — the topical locality the focused crawler exploits.
//!
//! Content still flows through [`crate::content_gen`], which only needs
//! metadata, so payloads stay lazily generated exactly as for eager
//! worlds and page sizes vary naturally (the `(ip, size)` duplicate
//! fingerprint sees distinct sizes within a host except for rare,
//! deterministic coincidences).

use crate::{HostBehavior, HostMeta, PageKind, PageMeta, TopicInfo, World};
use bingo_graph::{HostId, PageId};
use bingo_textproc::fxhash::{self, FxHashMap};
use bingo_textproc::MimeType;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Topics of a paged world (fixed — the scale experiment needs one
/// target topic and predictable noise, not configurability).
const TOPIC_KEYS: [(&str, &str); 4] = [
    ("dbresearch", "database_research"),
    ("datamining", "data_mining"),
    ("sports", "sports"),
    ("entertainment", "entertainment"),
];

/// Hostname suffix of every paged-world host.
const HOST_SUFFIX: &str = ".scale.test";

/// Own-host content links carried by a welcome page.
const WELCOME_FANOUT: u32 = 12;

/// Configuration of a paged world.
#[derive(Debug, Clone)]
pub struct PagedConfig {
    /// Master seed (drives latencies and page content).
    pub seed: u64,
    /// Number of hosts.
    pub hosts: u32,
    /// Pages per host (first page is the welcome page).
    pub pages_per_host: u32,
    /// Maximum host blocks resident at once.
    pub hot_cap: usize,
}

impl PagedConfig {
    /// The full-scale world: one million pages across twenty thousand
    /// hosts, with at most 1024 host blocks (~5% of the world) resident.
    pub fn scale_full(seed: u64) -> Self {
        PagedConfig {
            seed,
            hosts: 20_000,
            pages_per_host: 50,
            hot_cap: 1024,
        }
    }

    /// The ten-million-page world: two hundred thousand hosts of fifty
    /// pages. Same shape and resident-block cap as [`Self::scale_full`]
    /// — the world's footprint is O(hot_cap · pages_per_host), so ten
    /// times the pages cost no extra world memory, only crawl state
    /// (which is exactly what the 10M bench scenario bounds).
    pub fn scale_10m(seed: u64) -> Self {
        PagedConfig {
            seed,
            hosts: 200_000,
            pages_per_host: 50,
            hot_cap: 1024,
        }
    }

    /// A ten-thousand-page miniature with the same shape, for tests and
    /// the quick bench mode.
    pub fn scale_smoke(seed: u64) -> Self {
        PagedConfig {
            seed,
            hosts: 400,
            pages_per_host: 25,
            hot_cap: 64,
        }
    }
}

/// All metadata of one host, generated together.
#[derive(Debug)]
struct HostBlock {
    host: HostMeta,
    pages: Vec<PageMeta>,
}

/// The lazy backing of a paged [`World`]: a block generator plus a
/// bounded cache. Blocks are pure functions of `(seed, host)`, so
/// eviction never loses information — a re-generated block is
/// bit-identical to the evicted one.
#[derive(Debug)]
pub struct PagedWeb {
    seed: u64,
    hosts: u32,
    pages_per_host: u32,
    hot_cap: usize,
    cache: Mutex<FxHashMap<HostId, Arc<HostBlock>>>,
    generated: AtomicU64,
}

impl PagedWeb {
    pub(crate) fn new(cfg: &PagedConfig) -> Self {
        assert!(cfg.hosts > 0 && cfg.pages_per_host > 0 && cfg.hot_cap > 0);
        PagedWeb {
            seed: cfg.seed,
            hosts: cfg.hosts,
            pages_per_host: cfg.pages_per_host,
            hot_cap: cfg.hot_cap,
            cache: Mutex::new(FxHashMap::default()),
            generated: AtomicU64::new(0),
        }
    }

    pub(crate) fn page_count(&self) -> usize {
        self.hosts as usize * self.pages_per_host as usize
    }

    pub(crate) fn host_count(&self) -> usize {
        self.hosts as usize
    }

    /// Host blocks currently resident (always ≤ `hot_cap`).
    pub(crate) fn resident_blocks(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// Total block generations since creation (cache misses).
    pub(crate) fn blocks_generated(&self) -> u64 {
        self.generated.load(Ordering::Relaxed)
    }

    fn block(&self, host: HostId) -> Arc<HostBlock> {
        let mut cache = self.cache.lock().unwrap();
        if let Some(b) = cache.get(&host) {
            return Arc::clone(b);
        }
        // Generational eviction: when the hot set is full, drop it
        // wholesale. Crawl locality refills the working set in a few
        // lookups, and the one-in-hot_cap flush costs far less than
        // per-entry LRU bookkeeping on every hit.
        if cache.len() >= self.hot_cap {
            cache.clear();
        }
        let b = Arc::new(self.generate(host));
        self.generated.fetch_add(1, Ordering::Relaxed);
        cache.insert(host, Arc::clone(&b));
        b
    }

    pub(crate) fn page_meta(&self, id: PageId) -> PageMeta {
        assert!(
            (id as usize) < self.page_count(),
            "page id {id} out of range for paged world"
        );
        let host = (id / self.pages_per_host as u64) as HostId;
        let k = (id % self.pages_per_host as u64) as usize;
        self.block(host).pages[k].clone()
    }

    pub(crate) fn host_meta(&self, id: HostId) -> HostMeta {
        assert!(id < self.hosts, "host id {id} out of range for paged world");
        self.block(id).host.clone()
    }

    pub(crate) fn host_of(&self, id: PageId) -> HostId {
        (id / self.pages_per_host as u64) as HostId
    }

    pub(crate) fn url_of(&self, id: PageId) -> String {
        let host = self.host_of(id);
        let k = id % self.pages_per_host as u64;
        if k == 0 {
            format!("http://h{host}{HOST_SUFFIX}/index.html")
        } else {
            format!("http://h{host}{HOST_SUFFIX}/p{k}.html")
        }
    }

    pub(crate) fn resolve_url(&self, url: &str) -> Option<PageId> {
        let rest = url.strip_prefix("http://")?;
        let (name, path) = rest.split_once('/')?;
        let host = self.parse_host(name)?;
        let base = host as u64 * self.pages_per_host as u64;
        if path == "index.html" {
            return Some(base);
        }
        let k: u64 = path
            .strip_prefix('p')?
            .strip_suffix(".html")?
            .parse()
            .ok()?;
        (k > 0 && k < self.pages_per_host as u64).then_some(base + k)
    }

    pub(crate) fn find_host(&self, name: &str) -> Option<(HostId, HostMeta)> {
        let id = self.parse_host(name)?;
        Some((id, self.host_meta(id)))
    }

    pub(crate) fn true_topic(&self, id: PageId) -> Option<u32> {
        if (id as usize) >= self.page_count() || id.is_multiple_of(self.pages_per_host as u64) {
            None
        } else {
            Some(self.host_of(id) % TOPIC_KEYS.len() as u32)
        }
    }

    fn parse_host(&self, name: &str) -> Option<HostId> {
        let id: u32 = name
            .strip_prefix('h')?
            .strip_suffix(HOST_SUFFIX)?
            .parse()
            .ok()?;
        (id < self.hosts).then_some(id)
    }

    /// Generate the block of `host` — a pure function of `(seed, host)`.
    fn generate(&self, host: HostId) -> HostBlock {
        let p = self.pages_per_host as u64;
        let base = host as u64 * p;
        let topic = host % TOPIC_KEYS.len() as u32;
        let h = |salt: u32| fxhash::hash_one(&(self.seed, host, salt));
        let meta = HostMeta {
            name: format!("h{host}{HOST_SUFFIX}"),
            ip: 0x0b00_0000 + host,
            base_latency_ms: 20 + (h(0x1a7) % 100) as u32,
            behavior: HostBehavior::Normal,
            dns_latency_ms: 5 + (h(0xd15) % 55) as u32,
        };

        let mut pages = Vec::with_capacity(p as usize);
        // Welcome page: own-host fanout plus heap-child welcome links.
        let mut welcome_out: Vec<PageId> = (1..p.min(WELCOME_FANOUT as u64 + 1))
            .map(|k| base + k)
            .collect();
        for child in [2 * host as u64 + 1, 2 * host as u64 + 2] {
            if child < self.hosts as u64 {
                welcome_out.push(child * p);
            }
        }
        pages.push(PageMeta {
            host,
            path: "index.html".to_string(),
            topic: None,
            secondary_topic: None,
            kind: PageKind::Welcome,
            mime: MimeType::Html,
            out: welcome_out,
            redirect_to: None,
            author: None,
            content_override: None,
            extra_out_urls: Vec::new(),
            size_hint: None,
        });
        for k in 1..p {
            let mut out = vec![base]; // back to the welcome page
            if k + 1 < p {
                out.push(base + k + 1); // sibling chain covers the host
            }
            // One cross-host topical link: hosts `host + TOPIC_COUNT·j`
            // share this host's topic, and the stride varies per page so
            // the topical subgraph is well connected.
            let stride = 1 + fxhash::hash_one(&(self.seed, host, k, 0xcc5u32)) % 97;
            let peer = (host as u64 + TOPIC_KEYS.len() as u64 * stride) % self.hosts as u64;
            if peer != host as u64 {
                out.push(peer * p);
            }
            pages.push(PageMeta {
                host,
                path: format!("p{k}.html"),
                topic: Some(topic),
                secondary_topic: None,
                kind: PageKind::Content,
                mime: MimeType::Html,
                out,
                redirect_to: None,
                author: None,
                content_override: None,
                extra_out_urls: Vec::new(),
                size_hint: None,
            });
        }
        HostBlock { host: meta, pages }
    }
}

/// Topic table of a paged world.
pub(crate) fn topic_infos() -> Vec<TopicInfo> {
    TOPIC_KEYS
        .iter()
        .map(|(name, key)| TopicInfo {
            name: name.to_string(),
            lexicon: crate::lexicon::by_key(key).unwrap_or(crate::lexicon::COMMON),
        })
        .collect()
}

impl World {
    /// Build a lazily paged world: host and page metadata are generated
    /// arithmetically on demand and held in a bounded block cache, so
    /// even a million-page world has a small, fixed resident footprint.
    ///
    /// Paged worlds answer every owned accessor
    /// ([`World::page_meta`], [`World::host_meta`], [`World::url_of`],
    /// [`World::resolve_url`], fetches, DNS) but do **not** support the
    /// borrowing accessors [`World::page`] / [`World::host`] (which
    /// panic) or the in-link index ([`bingo_graph::LinkSource::predecessors`]
    /// returns empty — evaluation paths needing in-links use the
    /// document store's link table instead).
    pub fn paged(cfg: PagedConfig) -> World {
        World {
            seed: cfg.seed,
            pages: Vec::new(),
            hosts: Vec::new(),
            topics: topic_infos(),
            url_index: FxHashMap::default(),
            aliases: FxHashMap::default(),
            in_links: FxHashMap::default(),
            authors: Vec::new(),
            named: FxHashMap::default(),
            faults: crate::faults::FaultPlan::empty(),
            paged: Some(PagedWeb::new(&cfg)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::FetchOutcome;
    use bingo_graph::LinkSource;

    fn smoke() -> World {
        World::paged(PagedConfig::scale_smoke(11))
    }

    #[test]
    fn counts_and_ids_are_arithmetic() {
        let w = smoke();
        assert_eq!(w.page_count(), 400 * 25);
        assert_eq!(w.host_count(), 400);
        assert_eq!(w.host_of(0), 0);
        assert_eq!(w.host_of(25), 1);
        assert_eq!(w.host_of(25 * 399 + 24), 399);
    }

    #[test]
    fn urls_round_trip() {
        let w = smoke();
        for id in (0..w.page_count() as u64).step_by(37) {
            let url = w.url_of(id);
            assert_eq!(w.resolve_url(&url), Some(id), "url {url}");
        }
        assert_eq!(w.resolve_url("http://h400.scale.test/index.html"), None);
        assert_eq!(w.resolve_url("http://h1.scale.test/p25.html"), None);
        assert_eq!(w.resolve_url("http://h1.scale.test/p0.html"), None);
        assert_eq!(w.resolve_url("http://nowhere.example/x"), None);
    }

    #[test]
    fn every_host_reachable_from_host_zero() {
        let w = smoke();
        let mut seen = vec![false; w.host_count()];
        let mut queue = vec![0u64];
        seen[0] = true;
        while let Some(id) = queue.pop() {
            for succ in w.successors(id) {
                let h = w.host_of(succ) as usize;
                if !seen[h] {
                    seen[h] = true;
                    queue.push(w.host_of(succ) as u64 * 25);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "heap links must span all hosts");
    }

    #[test]
    fn sibling_chain_covers_every_page_of_a_host() {
        let w = smoke();
        let welcome = 7 * 25u64;
        let mut reach = std::collections::HashSet::new();
        let mut queue = vec![welcome];
        while let Some(id) = queue.pop() {
            if w.host_of(id) != 7 || !reach.insert(id) {
                continue;
            }
            queue.extend(w.successors(id));
        }
        assert_eq!(reach.len(), 25, "all pages of host 7 reachable");
    }

    #[test]
    fn generation_is_deterministic_and_cache_is_bounded() {
        let a = smoke();
        let b = smoke();
        for id in (0..a.page_count() as u64).step_by(13) {
            let pa = a.page_meta(id);
            let pb = b.page_meta(id);
            assert_eq!(pa.out, pb.out);
            assert_eq!(pa.path, pb.path);
            assert_eq!(a.url_of(id), b.url_of(id));
        }
        // Touch every host: the cache never exceeds its cap, and evicted
        // blocks regenerate identically.
        for h in 0..a.host_count() as u32 {
            let _ = a.host_meta(h);
            assert!(a.paged.as_ref().unwrap().resident_blocks() <= 64);
        }
        assert_eq!(a.host_meta(3).name, b.host_meta(3).name);
        assert!(a.paged.as_ref().unwrap().blocks_generated() >= 400);
    }

    #[test]
    fn fetch_and_dns_work_on_paged_worlds() {
        let w = smoke();
        let id = 3 * 25 + 4u64;
        let url = w.url_of(id);
        match w.fetch(&url, 0) {
            FetchOutcome::Ok(resp) => {
                assert_eq!(resp.page_id, id);
                assert!(!resp.payload.is_empty());
                assert_eq!(resp.size, resp.payload.len() as u64);
                // Topical vocabulary shows up in the content.
                assert_eq!(w.true_topic(id), Some(3));
            }
            o => panic!("{o:?}"),
        }
        let (ip, latency) = w.dns_lookup("h3.scale.test", 0).unwrap();
        assert_eq!(ip, 0x0b00_0003);
        assert!(latency > 0);
        match w.fetch("http://h3.scale.test/missing.html", 0) {
            FetchOutcome::Err { error, .. } => {
                assert_eq!(error, crate::FetchError::NotFound)
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn payload_sizes_within_a_host_are_distinct() {
        let w = smoke();
        let mut sizes = std::collections::HashSet::new();
        let mut dups = 0;
        for k in 0..25u64 {
            match w.fetch(&w.url_of(2 * 25 + k), 0) {
                FetchOutcome::Ok(r) => {
                    if !sizes.insert(r.size) {
                        dups += 1;
                    }
                }
                o => panic!("{o:?}"),
            }
        }
        // Sizes vary naturally with the per-page RNG; an occasional
        // deterministic coincidence is tolerated, wholesale collapse
        // (which would mark the host as all-duplicates) is not.
        assert!(dups <= 2, "{dups} duplicate sizes on one host");
    }
}
