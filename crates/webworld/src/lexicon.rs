//! Topical lexicons for the synthetic web.
//!
//! Each topic draws its vocabulary from a lexicon of real English words so
//! that the whole pipeline (stemming, MI feature selection, SVM training)
//! runs on realistic text and the paper's qualitative examples reproduce —
//! e.g. MI selection on "Data Mining" surfacing stems like `mine`,
//! `knowledg`, `olap`, `pattern`, `cluster` (Section 2.3).
//!
//! Besides topical lexicons there is a shared *common* academic/web
//! vocabulary present in all documents (this is what makes the systematic
//! "OTHERS" negative examples of Section 3.1 matter) and a deterministic
//! pseudo-word *filler* generator standing in for the long tail of real
//! text.

/// Common academic/web vocabulary shared by every generated page.
pub const COMMON: &[&str] = &[
    "university", "department", "research", "group", "project", "paper", "publication",
    "conference", "journal", "workshop", "student", "professor", "course", "lecture",
    "seminar", "report", "technical", "abstract", "introduction", "overview", "approach",
    "method", "result", "experiment", "evaluation", "system", "work", "new", "based",
    "using", "show", "present", "describe", "problem", "application", "information",
    "computer", "science", "international", "proceedings", "volume", "editor", "press",
    "year", "study", "analysis", "general", "important", "different", "large", "small",
    "time", "number", "section", "figure", "example", "related", "contact", "office",
    "phone", "address", "news", "events", "people", "staff", "teaching", "spring",
    "fall", "semester", "online", "available", "version", "current", "recent",
];

/// Database research (portal-generation topic, Tables 1-3).
pub const DATABASE_RESEARCH: &[&str] = &[
    "database", "databases", "query", "queries", "transaction", "transactions",
    "relational", "schema", "index", "indexing", "optimization", "optimizer", "storage",
    "recovery", "logging", "concurrency", "locking", "buffer", "join", "joins",
    "aggregation", "tuple", "tuples", "table", "tables", "sql", "xml", "data",
    "management", "dbms", "olap", "oltp", "warehouse", "replication", "distributed",
    "parallel", "scalability", "throughput", "benchmark", "workload", "materialized",
    "view", "views", "integration", "semistructured", "stream", "streams", "caching",
    "consistency", "isolation", "durability", "atomicity", "serializability", "commit",
    "rollback", "checkpoint", "undo", "redo", "acid", "btree", "hash", "partitioning",
];

/// Data mining (subtopic used for the Section 2.3 feature-selection
/// example).
pub const DATA_MINING: &[&str] = &[
    "mining", "mine", "knowledge", "discovery", "discovering", "olap", "pattern",
    "patterns", "genetic", "cluster", "clustering", "clusters", "dataset", "datasets",
    "frame", "association", "rules", "classification", "decision", "tree", "frequent",
    "itemset", "itemsets", "support", "confidence", "outlier", "anomaly", "predictive",
    "model", "models", "training", "learning", "feature", "features", "attribute",
    "attributes", "instances", "sampling", "scalable", "algorithms", "kdd",
];

/// Web / information retrieval.
pub const WEB_IR: &[&str] = &[
    "retrieval", "search", "engine", "ranking", "relevance", "precision", "recall",
    "crawler", "crawling", "hyperlink", "hyperlinks", "web", "page", "pages", "document",
    "documents", "term", "terms", "vector", "cosine", "stemming", "stopword", "corpus",
    "indexing", "inverted", "authority", "authorities", "hub", "hubs", "pagerank",
    "classification", "classifier", "svm", "bayes", "entropy", "portal", "ontology",
    "taxonomy", "directory", "topic", "topics", "focused", "filtering",
];

/// Transaction recovery / ARIES (expert-search topic, Figures 4-5).
pub const ARIES_RECOVERY: &[&str] = &[
    "aries", "recovery", "algorithm", "logging", "log", "write", "ahead", "wal",
    "checkpoint", "checkpointing", "redo", "undo", "rollback", "crash", "restart",
    "transaction", "transactions", "lsn", "pageid", "latch", "lock", "locking",
    "granularity", "semantics", "media", "failure", "failures", "buffer", "manager",
    "dirty", "page", "pages", "analysis", "pass", "history", "repeating", "compensation",
    "record", "records", "mohan", "database", "storage", "shadow", "fuzzy",
];

/// Open-source software projects (the needle pages of the expert search).
pub const OPEN_SOURCE: &[&str] = &[
    "open", "source", "code", "release", "releases", "public", "domain", "license",
    "gpl", "distribution", "download", "repository", "cvs", "tarball", "build",
    "compile", "install", "installation", "documentation", "manual", "api", "library",
    "libraries", "binaries", "binary", "software", "project", "version", "stable",
    "implementation", "package", "packages", "platform", "unix", "linux", "windows",
];

/// Algebra (competing sibling of stochastics under mathematics).
pub const ALGEBRA: &[&str] = &[
    "algebra", "algebraic", "group", "groups", "ring", "rings", "field", "fields",
    "polynomial", "polynomials", "vector", "space", "linear", "matrix", "matrices",
    "eigenvalue", "homomorphism", "isomorphism", "kernel", "ideal", "module",
    "galois", "abelian", "commutative", "finite", "theorem", "proof", "lemma",
];

/// Stochastics (competing sibling of algebra).
pub const STOCHASTICS: &[&str] = &[
    "probability", "stochastic", "random", "variable", "variables", "distribution",
    "distributions", "expectation", "variance", "markov", "chain", "process",
    "processes", "martingale", "brownian", "motion", "measure", "theorem", "limit",
    "convergence", "gaussian", "poisson", "bernoulli", "sample", "estimator",
];

/// Sports (Yahoo-style OTHERS negative material, Section 3.1).
pub const SPORTS: &[&str] = &[
    "football", "soccer", "basketball", "baseball", "tennis", "golf", "hockey",
    "league", "team", "teams", "player", "players", "coach", "season", "game", "games",
    "match", "tournament", "championship", "score", "goal", "win", "loss", "stadium",
    "fans", "ticket", "tickets", "olympic", "athlete", "training", "fitness",
];

/// Entertainment (more OTHERS material).
pub const ENTERTAINMENT: &[&str] = &[
    "movie", "movies", "film", "films", "music", "album", "albums", "song", "songs",
    "concert", "tour", "band", "bands", "singer", "actor", "actress", "celebrity",
    "television", "show", "shows", "series", "episode", "theater", "festival",
    "ticket", "tickets", "star", "stars", "pop", "rock", "madonna", "hollywood",
];

/// Agriculture (a "semantically far away" class for OTHERS, Section 3.1).
pub const AGRICULTURE: &[&str] = &[
    "farm", "farming", "crop", "crops", "harvest", "soil", "irrigation", "fertilizer",
    "livestock", "cattle", "dairy", "wheat", "corn", "field", "fields", "tractor",
    "seed", "seeds", "organic", "pesticide", "yield", "agriculture", "agricultural",
    "farmer", "farmers", "rural", "greenhouse", "orchard", "vineyard",
];

/// Arts (another far-away class).
pub const ARTS: &[&str] = &[
    "painting", "paintings", "sculpture", "gallery", "museum", "exhibition", "artist",
    "artists", "canvas", "portrait", "landscape", "abstract", "modern", "classical",
    "drawing", "sketch", "watercolor", "curator", "collection", "masterpiece",
    "renaissance", "baroque", "impressionism", "aesthetic", "visual",
];

/// Look up a built-in lexicon by key.
pub fn by_key(key: &str) -> Option<&'static [&'static str]> {
    Some(match key {
        "common" => COMMON,
        "database_research" => DATABASE_RESEARCH,
        "data_mining" => DATA_MINING,
        "web_ir" => WEB_IR,
        "aries_recovery" => ARIES_RECOVERY,
        "open_source" => OPEN_SOURCE,
        "algebra" => ALGEBRA,
        "stochastics" => STOCHASTICS,
        "sports" => SPORTS,
        "entertainment" => ENTERTAINMENT,
        "agriculture" => AGRICULTURE,
        "arts" => ARTS,
        _ => return None,
    })
}

const SYLLABLES: &[&str] = &[
    "ba", "re", "mo", "ti", "lan", "dor", "vek", "sul", "pra", "nim", "kel", "tur",
    "fos", "gri", "hem", "jor", "lin", "mar", "nox", "pel", "qui", "ras", "sten", "val",
];

/// Deterministic pseudo-word for the long-tail filler vocabulary.
/// `index` selects the word; the space is effectively unbounded.
pub fn filler_word(index: u64) -> String {
    let n = SYLLABLES.len() as u64;
    let mut word = String::new();
    let mut x = index;
    for _ in 0..3 {
        word.push_str(SYLLABLES[(x % n) as usize]);
        x /= n;
    }
    word
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicons_nonempty_and_lowercase() {
        for key in [
            "common", "database_research", "data_mining", "web_ir", "aries_recovery",
            "open_source", "algebra", "stochastics", "sports", "entertainment",
            "agriculture", "arts",
        ] {
            let lex = by_key(key).unwrap();
            assert!(lex.len() >= 20, "{key} too small");
            for w in lex {
                assert_eq!(*w, w.to_lowercase(), "{key}: {w} not lowercase");
                assert!(w.chars().all(|c| c.is_ascii_alphabetic()));
            }
        }
        assert!(by_key("nope").is_none());
    }

    #[test]
    fn filler_words_deterministic_and_distinct() {
        assert_eq!(filler_word(7), filler_word(7));
        let distinct: std::collections::HashSet<String> = (0..1000).map(filler_word).collect();
        assert!(distinct.len() > 900);
    }

    #[test]
    fn paper_example_terms_present() {
        // The Section 2.3 example stems must be derivable from the lexicon.
        for w in ["mining", "knowledge", "olap", "pattern", "cluster", "dataset"] {
            assert!(
                DATA_MINING.contains(&w) || DATA_MINING.contains(&"patterns"),
                "{w} missing from data mining lexicon"
            );
        }
    }
}
