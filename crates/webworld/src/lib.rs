//! A deterministic synthetic web — the substrate substituting for the
//! live 2002 Web the paper crawled.
//!
//! The simulator reproduces everything the focused crawler's code paths
//! observe:
//!
//! * **Topical structure.** Pages belong to topics with their own
//!   vocabularies ([`lexicon`]); hyperlinks exhibit topical locality
//!   (a link stays on topic with configurable probability), hubs collect
//!   topical links, welcome/table-of-contents pages carry little text —
//!   the structure that makes focused crawling and tunnelling work.
//! * **An author directory** modeled on DBLP for the portal-generation
//!   experiment of Section 5.2 ([`dblp`]): authors with Zipf-distributed
//!   publication counts, homepages with "underneath" pages, in-link mass
//!   proportional to prominence.
//! * **Network realism** (Section 4.2): per-host latency, slow/flaky/dead
//!   hosts, DNS lookup latency and failures, redirects, path-alias
//!   duplicates, many MIME types with size limits, broken links, and
//!   crawler traps with overlong URLs.
//! * **Scenario overlays** ([`scenario`]): hand-specified named subgraphs
//!   such as the ARIES expert-search case study of Section 5.3.
//!
//! Page *content* is generated lazily and deterministically from the
//! world seed and page id ([`content_gen`]), so a hundred-thousand-page
//! world costs only its graph metadata in memory.

pub mod content_gen;
pub mod dblp;
pub mod faults;
pub mod fetch;
pub mod gen;
pub mod lexicon;
pub mod nodefaults;
pub mod paged;
pub mod scenario;

pub use dblp::AuthorInfo;
pub use faults::{FaultKind, FaultPlan, FaultProfile, FaultWindow};
pub use fetch::{DnsError, FetchError, FetchOutcome, FetchResponse};
pub use nodefaults::{NodeFaultKind, NodeFaultPlan, NodeFaultProfile, NodeFaultWindow};
pub use paged::PagedConfig;

use bingo_graph::{HostId, LinkSource, PageId};
use bingo_textproc::fxhash::FxHashMap;
use bingo_textproc::MimeType;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What role a page plays in the web's structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageKind {
    /// Ordinary topical content page.
    Content,
    /// Link collection (many topical cross-host links).
    Hub,
    /// Host entry page: little text, mostly navigation — the pages one
    /// must "tunnel" through (Section 3.3).
    Welcome,
    /// A researcher's homepage (author directory).
    AuthorHome,
    /// Page underneath a homepage: publication list, paper, CV.
    AuthorPub,
    /// Redirect stub pointing at a canonical page.
    Redirect,
    /// Unanalyzable media (exercises the MIME filter).
    Media,
    /// Scenario-defined page with explicit content.
    Scenario,
}

/// Behaviour class of a host (Section 4.2 failure handling).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HostBehavior {
    /// Responds normally.
    Normal,
    /// Responds, but with heavily inflated latency.
    Slow,
    /// Fails a fraction of requests (timeout), expressed in per-mille.
    Flaky(u16),
    /// Never responds.
    Dead,
}

/// Static metadata of a simulated host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostMeta {
    /// Hostname (unique).
    pub name: String,
    /// Simulated IPv4 address as an opaque u32.
    pub ip: u32,
    /// Base round-trip latency in virtual milliseconds.
    pub base_latency_ms: u32,
    /// Behaviour class.
    pub behavior: HostBehavior,
    /// Authoritative DNS lookup latency in virtual milliseconds.
    pub dns_latency_ms: u32,
}

/// Static metadata of a simulated page. Content is *not* stored here; it
/// is generated on demand.
#[derive(Debug, Clone)]
pub struct PageMeta {
    /// Host the page lives on.
    pub host: HostId,
    /// Path component of the canonical URL.
    pub path: String,
    /// True topic (ground truth for evaluation); `None` for welcome pages
    /// and other topic-unspecific material.
    pub topic: Option<u32>,
    /// Secondary topic whose vocabulary bleeds into the page (real pages
    /// are rarely single-topic; this creates the hard, ambiguous cases
    /// classifiers face on the real Web).
    pub secondary_topic: Option<u32>,
    /// Structural role.
    pub kind: PageKind,
    /// Served MIME type.
    pub mime: MimeType,
    /// Out-links as page ids (rendered to URLs at content time).
    pub out: Vec<PageId>,
    /// Redirect target for redirect stubs.
    pub redirect_to: Option<PageId>,
    /// Author index for author pages.
    pub author: Option<u32>,
    /// Explicit content for scenario pages.
    pub content_override: Option<Arc<str>>,
    /// Extra raw link targets rendered verbatim (broken links, traps).
    pub extra_out_urls: Vec<String>,
    /// Size override in bytes (media files report a large size).
    pub size_hint: Option<u32>,
}

/// A topic of the synthetic web.
#[derive(Debug, Clone)]
pub struct TopicInfo {
    /// Human-readable topic name.
    pub name: String,
    /// The topical vocabulary.
    pub lexicon: &'static [&'static str],
}

/// The generated world. Immutable after generation; cheap to share
/// across crawler threads via `Arc`.
#[derive(Debug)]
pub struct World {
    pub(crate) seed: u64,
    pub(crate) pages: Vec<PageMeta>,
    pub(crate) hosts: Vec<HostMeta>,
    pub(crate) topics: Vec<TopicInfo>,
    pub(crate) url_index: FxHashMap<String, PageId>,
    /// Alias URL per page (a second path serving identical content).
    pub(crate) aliases: FxHashMap<PageId, String>,
    pub(crate) in_links: FxHashMap<PageId, Vec<PageId>>,
    pub(crate) authors: Vec<AuthorInfo>,
    /// Scenario page names → ids.
    pub(crate) named: FxHashMap<String, PageId>,
    /// Scripted fault windows (empty unless configured; see [`faults`]).
    pub(crate) faults: FaultPlan,
    /// Lazy block generator backing paged worlds ([`World::paged`]);
    /// `None` for eagerly generated worlds.
    pub(crate) paged: Option<paged::PagedWeb>,
}

impl World {
    /// Number of pages.
    pub fn page_count(&self) -> usize {
        match &self.paged {
            Some(p) => p.page_count(),
            None => self.pages.len(),
        }
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        match &self.paged {
            Some(p) => p.host_count(),
            None => self.hosts.len(),
        }
    }

    /// The topics of this world (index = topic id).
    pub fn topics(&self) -> &[TopicInfo] {
        &self.topics
    }

    /// Borrowed page metadata.
    ///
    /// # Panics
    ///
    /// Panics on paged worlds, whose metadata is generated on demand and
    /// cannot be borrowed — use [`World::page_meta`] instead.
    pub fn page(&self, id: PageId) -> &PageMeta {
        assert!(
            self.paged.is_none(),
            "World::page cannot borrow from a paged world; use page_meta"
        );
        &self.pages[id as usize]
    }

    /// Borrowed host metadata.
    ///
    /// # Panics
    ///
    /// Panics on paged worlds — use [`World::host_meta`] instead.
    pub fn host(&self, id: HostId) -> &HostMeta {
        assert!(
            self.paged.is_none(),
            "World::host cannot borrow from a paged world; use host_meta"
        );
        &self.hosts[id as usize]
    }

    /// Owned page metadata; works on both eager and paged worlds.
    pub fn page_meta(&self, id: PageId) -> PageMeta {
        match &self.paged {
            Some(p) => p.page_meta(id),
            None => self.pages[id as usize].clone(),
        }
    }

    /// Owned host metadata; works on both eager and paged worlds.
    pub fn host_meta(&self, id: HostId) -> HostMeta {
        match &self.paged {
            Some(p) => p.host_meta(id),
            None => self.hosts[id as usize].clone(),
        }
    }

    /// True when this world generates its metadata lazily
    /// ([`World::paged`]).
    pub fn is_paged(&self) -> bool {
        self.paged.is_some()
    }

    /// Host blocks a paged world has generated so far (cache misses);
    /// 0 for eager worlds. Telemetry for the scale experiment.
    pub fn paged_blocks_generated(&self) -> u64 {
        self.paged.as_ref().map_or(0, |p| p.blocks_generated())
    }

    /// Host blocks currently resident in a paged world's cache (always
    /// ≤ its `hot_cap`); 0 for eager worlds.
    pub fn paged_resident_blocks(&self) -> usize {
        self.paged.as_ref().map_or(0, |p| p.resident_blocks())
    }

    /// Canonical URL of a page.
    pub fn url_of(&self, id: PageId) -> String {
        if let Some(p) = &self.paged {
            return p.url_of(id);
        }
        let p = &self.pages[id as usize];
        format!("http://{}/{}", self.hosts[p.host as usize].name, p.path)
    }

    /// The alias URL of a page, when it has one.
    pub fn alias_url_of(&self, id: PageId) -> Option<&str> {
        self.aliases.get(&id).map(|s| s.as_str())
    }

    /// Resolve any known URL (canonical or alias) to its page.
    pub fn resolve_url(&self, url: &str) -> Option<PageId> {
        if let Some(p) = &self.paged {
            return p.resolve_url(url);
        }
        self.url_index.get(url).copied()
    }

    /// The author directory (DBLP analog); empty unless configured.
    pub fn authors(&self) -> &[AuthorInfo] {
        &self.authors
    }

    /// Look up a scenario page by its registered name.
    pub fn named_page(&self, name: &str) -> Option<PageId> {
        self.named.get(name).copied()
    }

    /// All registered scenario names.
    pub fn named_pages(&self) -> impl Iterator<Item = (&str, PageId)> {
        self.named.iter().map(|(n, &p)| (n.as_str(), p))
    }

    /// Ground-truth topic of a page.
    pub fn true_topic(&self, id: PageId) -> Option<u32> {
        match &self.paged {
            Some(p) => p.true_topic(id),
            None => self.pages[id as usize].topic,
        }
    }

    /// World seed (content generation is a pure function of seed and id).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault script of this world (empty for fault-free worlds).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Replace the fault script. Tests and experiments use this to run
    /// the *same* world with and without chaos.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }
}

impl LinkSource for World {
    fn successors(&self, page: PageId) -> Vec<PageId> {
        if let Some(p) = &self.paged {
            if (page as usize) < p.page_count() {
                return p.page_meta(page).out;
            }
            return Vec::new();
        }
        self.pages
            .get(page as usize)
            .map(|p| p.out.clone())
            .unwrap_or_default()
    }

    fn predecessors(&self, page: PageId) -> Vec<PageId> {
        // Paged worlds carry no in-link index (it would be O(world));
        // evaluation paths that need in-links use the document store's
        // link table, which indexes only what was crawled.
        self.in_links.get(&page).cloned().unwrap_or_default()
    }

    fn host_of(&self, page: PageId) -> HostId {
        if let Some(p) = &self.paged {
            if (page as usize) < p.page_count() {
                return p.host_of(page);
            }
            return 0;
        }
        self.pages.get(page as usize).map(|p| p.host).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorldConfig;

    #[test]
    fn small_world_generates() {
        let world = WorldConfig::small_test(7).build();
        assert!(world.page_count() > 100, "got {} pages", world.page_count());
        assert!(world.host_count() > 5);
        assert!(!world.topics().is_empty());
    }

    #[test]
    fn urls_resolve_round_trip() {
        let world = WorldConfig::small_test(7).build();
        for id in 0..world.page_count() as u64 {
            let url = world.url_of(id);
            assert_eq!(world.resolve_url(&url), Some(id), "url {url}");
        }
        assert_eq!(world.resolve_url("http://nowhere.example/x"), None);
    }

    #[test]
    fn aliases_resolve_to_same_page() {
        let world = WorldConfig::small_test(7).build();
        let mut found = 0;
        for id in 0..world.page_count() as u64 {
            if let Some(alias) = world.alias_url_of(id) {
                assert_eq!(world.resolve_url(alias), Some(id));
                assert_ne!(alias, world.url_of(id));
                found += 1;
            }
        }
        assert!(found > 0, "no aliases generated");
    }

    #[test]
    fn link_source_is_consistent() {
        let world = WorldConfig::small_test(7).build();
        for id in 0..world.page_count().min(200) as u64 {
            for succ in world.successors(id) {
                assert!(
                    world.predecessors(succ).contains(&id),
                    "edge {id}->{succ} missing from in-links"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WorldConfig::small_test(7).build();
        let b = WorldConfig::small_test(7).build();
        assert_eq!(a.page_count(), b.page_count());
        for id in (0..a.page_count() as u64).step_by(17) {
            assert_eq!(a.url_of(id), b.url_of(id));
            assert_eq!(a.page(id).out, b.page(id).out);
        }
        let c = WorldConfig::small_test(8).build();
        // Different seed worlds differ somewhere.
        let differs = (0..a.page_count().min(c.page_count()) as u64)
            .any(|id| a.page(id).out != c.page(id).out || a.url_of(id) != c.url_of(id));
        assert!(differs);
    }
}
