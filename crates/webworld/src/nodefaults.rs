//! Deterministic *node-level* fault injection: scripted kill / stall /
//! restart events for whole crawler worker nodes.
//!
//! [`crate::faults`] scripts trouble on the *web* side (hosts go dark,
//! drip bytes, flap DNS). This module scripts trouble on the *crawler*
//! side: a distributed crawl's worker nodes die and come back, or hang
//! without dying — the failure modes a coordinator/worker design (see
//! `bingo-dist`) must supervise. Like host faults, node faults are
//! derived entirely from a seed, so a chaos run is exactly
//! reproducible: same seed, same kills, same restart times.
//!
//! The coordinator polls [`NodeFaultPlan::event_at`] on the virtual
//! clock; the plan itself never touches node state.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What happens to a worker node during a fault window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFaultKind {
    /// The node process dies at `start_ms`: all in-memory state (store
    /// workspace, in-flight leases) is lost. It restarts fresh at
    /// `end_ms` and recovers from the last committed snapshot.
    Kill,
    /// The node hangs for the window without dying: it processes
    /// nothing, but its memory survives. Leases it holds expire and are
    /// re-issued by the coordinator.
    Stall,
}

/// One scripted fault episode on a node: the node is down (or hung)
/// during `[start_ms, end_ms)` of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFaultWindow {
    /// First virtual millisecond the fault is active (the kill instant).
    pub start_ms: u64,
    /// First virtual millisecond the node is healthy again (the restart
    /// instant for kills).
    pub end_ms: u64,
    /// Failure mode during the window.
    pub kind: NodeFaultKind,
}

impl NodeFaultWindow {
    /// True while the window is active.
    pub fn contains(&self, now_ms: u64) -> bool {
        self.start_ms <= now_ms && now_ms < self.end_ms
    }
}

/// Parameters for seeding a node-fault script over an N-node crawl.
#[derive(Debug, Clone)]
pub struct NodeFaultProfile {
    /// Fraction of nodes that receive a fault script.
    pub node_fraction: f64,
    /// Maximum scripted windows per faulty node (at least one).
    pub max_windows_per_node: u32,
    /// Windows are scheduled within `[0, horizon_ms)` of virtual time.
    pub horizon_ms: u64,
    /// Minimum and maximum window duration in virtual milliseconds.
    pub window_ms: (u64, u64),
    /// Probability a window is a [`NodeFaultKind::Kill`] rather than a
    /// stall.
    pub kill_fraction: f64,
}

impl Default for NodeFaultProfile {
    fn default() -> Self {
        NodeFaultProfile {
            node_fraction: 0.5,
            max_windows_per_node: 2,
            horizon_ms: 300_000,
            window_ms: (5_000, 40_000),
            kill_fraction: 0.6,
        }
    }
}

impl NodeFaultProfile {
    /// An aggressive profile for chaos tests: most nodes fault, windows
    /// come early relative to the short virtual span of test crawls.
    pub fn chaos() -> Self {
        NodeFaultProfile {
            node_fraction: 0.8,
            max_windows_per_node: 3,
            horizon_ms: 60_000,
            window_ms: (2_000, 10_000),
            kill_fraction: 0.7,
        }
    }
}

/// The complete node-fault script of a distributed crawl: per-node
/// windows, sorted by start time. Empty by default — a calm run.
#[derive(Debug, Clone, Default)]
pub struct NodeFaultPlan {
    /// `windows[node]` is that node's script.
    windows: Vec<Vec<NodeFaultWindow>>,
}

impl NodeFaultPlan {
    /// A plan with no node faults.
    pub fn empty() -> Self {
        NodeFaultPlan::default()
    }

    /// True when no node has a fault script.
    pub fn is_empty(&self) -> bool {
        self.windows.iter().all(|w| w.is_empty())
    }

    /// Number of nodes with at least one scripted window.
    pub fn faulty_nodes(&self) -> usize {
        self.windows.iter().filter(|w| !w.is_empty()).count()
    }

    /// Total scripted windows across all nodes.
    pub fn window_count(&self) -> usize {
        self.windows.iter().map(Vec::len).sum()
    }

    /// Generate the script for `node_count` nodes. Pure function of the
    /// arguments: the same seed and profile always produce the same
    /// schedule.
    pub fn generate(seed: u64, node_count: usize, profile: &NodeFaultProfile) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x000D_157F_A017_C4A0_u64);
        let mut plan = NodeFaultPlan {
            windows: vec![Vec::new(); node_count],
        };
        let (min_len, max_len) = profile.window_ms;
        let max_len = max_len.max(min_len + 1);
        for node in 0..node_count {
            if !rng.gen_bool(profile.node_fraction.clamp(0.0, 1.0)) {
                continue;
            }
            let n = rng.gen_range(1..=profile.max_windows_per_node.max(1));
            // Sequential layout with recovery gaps, like host faults:
            // one node is never scripted to die while already dead.
            let mut t = rng.gen_range(0..profile.horizon_ms.max(2) / 2);
            for _ in 0..n {
                if t >= profile.horizon_ms {
                    break;
                }
                let len = rng.gen_range(min_len..max_len);
                let kind = if rng.gen_bool(profile.kill_fraction.clamp(0.0, 1.0)) {
                    NodeFaultKind::Kill
                } else {
                    NodeFaultKind::Stall
                };
                plan.insert_window(
                    node,
                    NodeFaultWindow {
                        start_ms: t,
                        end_ms: t + len,
                        kind,
                    },
                );
                t += len + rng.gen_range(min_len..max_len * 2);
            }
        }
        plan
    }

    /// Add one window to a node's script (tests hand-author kills at
    /// exact virtual instants with this). Keeps the script sorted by
    /// start time and grows the plan to cover `node`.
    pub fn insert_window(&mut self, node: usize, window: NodeFaultWindow) {
        if self.windows.len() <= node {
            self.windows.resize(node + 1, Vec::new());
        }
        let script = &mut self.windows[node];
        script.push(window);
        script.sort_by_key(|w| w.start_ms);
    }

    /// The fault active on `node` at `now_ms`, if any.
    pub fn active(&self, node: usize, now_ms: u64) -> Option<&NodeFaultWindow> {
        self.windows.get(node)?.iter().find(|w| w.contains(now_ms))
    }

    /// The first window of `node` that *starts* in `[from_ms, to_ms)` —
    /// how a coordinator discovers that a kill lands inside a node's
    /// current processing span.
    pub fn event_at(&self, node: usize, from_ms: u64, to_ms: u64) -> Option<&NodeFaultWindow> {
        self.windows
            .get(node)?
            .iter()
            .find(|w| from_ms <= w.start_ms && w.start_ms < to_ms)
    }

    /// The full script of a node (empty for healthy nodes).
    pub fn windows_for(&self, node: usize) -> &[NodeFaultWindow] {
        self.windows.get(node).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = NodeFaultProfile::chaos();
        let a = NodeFaultPlan::generate(7, 8, &p);
        let b = NodeFaultPlan::generate(7, 8, &p);
        for n in 0..8 {
            assert_eq!(a.windows_for(n), b.windows_for(n), "node {n}");
        }
        let c = NodeFaultPlan::generate(8, 8, &p);
        let differs = (0..8).any(|n| a.windows_for(n) != c.windows_for(n));
        assert!(differs, "different seeds must differ");
    }

    #[test]
    fn windows_are_sorted_and_disjoint_per_node() {
        let plan = NodeFaultPlan::generate(3, 16, &NodeFaultProfile::chaos());
        assert!(plan.faulty_nodes() > 4, "chaos profile faults most nodes");
        for n in 0..16 {
            let ws = plan.windows_for(n);
            for w in ws {
                assert!(w.start_ms < w.end_ms);
            }
            for pair in ws.windows(2) {
                assert!(pair[0].end_ms <= pair[1].start_ms, "overlap on node {n}");
            }
        }
    }

    #[test]
    fn event_at_finds_kills_inside_a_span() {
        let mut plan = NodeFaultPlan::empty();
        plan.insert_window(
            1,
            NodeFaultWindow {
                start_ms: 500,
                end_ms: 900,
                kind: NodeFaultKind::Kill,
            },
        );
        assert!(
            plan.event_at(1, 0, 500).is_none(),
            "start is inclusive-end-exclusive"
        );
        assert_eq!(plan.event_at(1, 0, 501).unwrap().start_ms, 500);
        assert_eq!(
            plan.event_at(1, 400, 600).unwrap().kind,
            NodeFaultKind::Kill
        );
        assert!(plan.event_at(1, 501, 600).is_none());
        assert!(plan.event_at(0, 0, 10_000).is_none(), "other nodes clean");
        assert!(plan.active(1, 899).is_some());
        assert!(plan.active(1, 900).is_none(), "end exclusive");
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = NodeFaultPlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.faulty_nodes(), 0);
        assert_eq!(plan.window_count(), 0);
        assert!(plan.active(0, 0).is_none());
        assert!(plan.event_at(3, 0, u64::MAX).is_none());
    }
}
