//! Fetch and DNS simulation (Section 4.2 networking aspects).
//!
//! Every fetch returns a deterministic outcome given `(world seed, url,
//! attempt)`: success with payload and latency, a redirect, or a failure
//! (timeout on dead/flaky hosts, 404 on broken links). Latency models a
//! base round trip plus size-proportional transfer time; "slow" hosts
//! multiply it, letting the crawler's slow/bad host tagging kick in.

use crate::content_gen;
use crate::{HostBehavior, World};
use bingo_graph::PageId;
use bingo_textproc::fxhash;
use bingo_textproc::MimeType;

/// Simulated bandwidth: bytes transferred per virtual millisecond.
pub const BYTES_PER_MS: u64 = 2000;

/// Virtual milliseconds until a timeout is reported.
pub const TIMEOUT_MS: u64 = 3000;

/// A successful fetch.
#[derive(Debug, Clone)]
pub struct FetchResponse {
    /// The page served.
    pub page_id: PageId,
    /// URL exactly as requested (may be an alias of the canonical URL).
    pub url: String,
    /// Server IP — one ingredient of the duplicate fingerprints.
    pub ip: u32,
    /// Served MIME type.
    pub mime: MimeType,
    /// Raw payload (with format envelope for non-HTML types).
    pub payload: String,
    /// Size in bytes as reported by the server (media files report their
    /// true size even though the payload is not materialized).
    pub size: u64,
    /// Virtual milliseconds the fetch took.
    pub latency_ms: u64,
}

/// Why a fetch failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchError {
    /// Host did not respond within the timeout.
    Timeout,
    /// Host resolved but no such page.
    NotFound,
    /// Hostname does not exist.
    UnknownHost,
}

/// DNS failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsError {
    /// No such hostname.
    NxDomain,
    /// The queried DNS server timed out (transient; retry may succeed).
    Timeout,
}

/// Outcome of one fetch attempt.
#[derive(Debug, Clone)]
pub enum FetchOutcome {
    /// 200 OK.
    Ok(FetchResponse),
    /// 3xx redirect to `location`.
    Redirect {
        /// Target URL.
        location: String,
        /// Virtual milliseconds spent.
        latency_ms: u64,
    },
    /// Failure.
    Err {
        /// What went wrong.
        error: FetchError,
        /// Virtual milliseconds spent (a timeout costs the full budget).
        latency_ms: u64,
    },
}

impl World {
    /// Authoritative DNS lookup: hostname → IP with lookup latency.
    /// Flaky hosts' DNS also fails transiently, varying with `attempt`
    /// (the crawler's resolver resends to alternative servers).
    pub fn dns_lookup(&self, hostname: &str, attempt: u32) -> Result<(u32, u64), DnsError> {
        let Some(host) = self.hosts.iter().find(|h| h.name == hostname) else {
            return Err(DnsError::NxDomain);
        };
        if let HostBehavior::Flaky(permille) = host.behavior {
            let roll = fxhash::hash_one(&(self.seed, hostname, attempt, 0xD15u32)) % 1000;
            if (roll as u16) < permille / 2 {
                return Err(DnsError::Timeout);
            }
        }
        Ok((host.ip, host.dns_latency_ms as u64))
    }

    /// Fetch a URL. `attempt` differentiates retries: a flaky host may
    /// fail attempt 0 and serve attempt 1.
    pub fn fetch(&self, url: &str, attempt: u32) -> FetchOutcome {
        let Some(hostname) = host_of_url(url) else {
            return FetchOutcome::Err {
                error: FetchError::UnknownHost,
                latency_ms: 1,
            };
        };
        let Some(page_id) = self.resolve_url(url) else {
            // Host may exist (404) or not (unknown host).
            return match self.hosts.iter().find(|h| h.name == hostname) {
                Some(h) => FetchOutcome::Err {
                    error: FetchError::NotFound,
                    latency_ms: h.base_latency_ms as u64,
                },
                None => FetchOutcome::Err {
                    error: FetchError::UnknownHost,
                    latency_ms: 1,
                },
            };
        };

        let meta = self.page(page_id);
        let host = self.host(meta.host);
        match host.behavior {
            HostBehavior::Dead => {
                return FetchOutcome::Err {
                    error: FetchError::Timeout,
                    latency_ms: TIMEOUT_MS,
                }
            }
            HostBehavior::Flaky(permille) => {
                let roll = fxhash::hash_one(&(self.seed, url, attempt)) % 1000;
                if (roll as u16) < permille {
                    return FetchOutcome::Err {
                        error: FetchError::Timeout,
                        latency_ms: TIMEOUT_MS,
                    };
                }
            }
            _ => {}
        }

        let slow_factor = if host.behavior == HostBehavior::Slow {
            8
        } else {
            1
        };

        if let Some(target) = meta.redirect_to {
            return FetchOutcome::Redirect {
                location: self.url_of(target),
                latency_ms: host.base_latency_ms as u64 * slow_factor,
            };
        }

        // Oversized media is not materialized; the crawler aborts on the
        // reported size/MIME before the body transfer anyway.
        let (payload, size) = match meta.size_hint {
            Some(s) => (String::new(), s as u64),
            None => {
                let p = content_gen::payload(self, page_id);
                let len = p.len() as u64;
                (p, len)
            }
        };
        let jitter = fxhash::hash_one(&(self.seed, page_id, attempt, 0x1a7u32)) % 30;
        let latency_ms =
            (host.base_latency_ms as u64 + size / BYTES_PER_MS + jitter) * slow_factor;

        FetchOutcome::Ok(FetchResponse {
            page_id,
            url: url.to_string(),
            ip: host.ip,
            mime: meta.mime,
            payload,
            size,
            latency_ms,
        })
    }
}

/// Extract the hostname of an `http://host/path` URL.
pub fn host_of_url(url: &str) -> Option<&str> {
    let rest = url.strip_prefix("http://")?;
    let end = rest.find('/').unwrap_or(rest.len());
    let host = &rest[..end];
    (!host.is_empty()).then_some(host)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorldConfig;
    use crate::PageKind;

    fn world() -> World {
        WorldConfig::small_test(13).build()
    }

    #[test]
    fn fetch_success_round_trip() {
        let w = world();
        let id = (0..w.page_count() as u64)
            .find(|&id| {
                w.page(id).kind == PageKind::Content
                    && w.host(w.page(id).host).behavior == HostBehavior::Normal
            })
            .unwrap();
        let url = w.url_of(id);
        match w.fetch(&url, 0) {
            FetchOutcome::Ok(resp) => {
                assert_eq!(resp.page_id, id);
                assert_eq!(resp.url, url);
                assert!(resp.latency_ms > 0);
                assert_eq!(resp.size, resp.payload.len() as u64);
            }
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn alias_serves_same_page_same_ip_same_size() {
        let w = world();
        let (id, alias) = (0..w.page_count() as u64)
            .find_map(|id| {
                w.alias_url_of(id).map(|a| (id, a.to_string())).filter(|_| {
                    w.host(w.page(id).host).behavior == HostBehavior::Normal
                        && w.page(id).size_hint.is_none()
                })
            })
            .unwrap();
        let canon = match w.fetch(&w.url_of(id), 0) {
            FetchOutcome::Ok(r) => r,
            o => panic!("{o:?}"),
        };
        let dup = match w.fetch(&alias, 0) {
            FetchOutcome::Ok(r) => r,
            o => panic!("{o:?}"),
        };
        assert_eq!(canon.page_id, dup.page_id);
        assert_eq!(canon.ip, dup.ip);
        assert_eq!(canon.size, dup.size);
        assert_ne!(canon.url, dup.url, "different URLs, same content");
    }

    #[test]
    fn missing_page_404_and_unknown_host() {
        let w = world();
        let host = w.host(0).name.clone();
        match w.fetch(&format!("http://{host}/definitely-missing.html"), 0) {
            FetchOutcome::Err { error, .. } => assert_eq!(error, FetchError::NotFound),
            o => panic!("{o:?}"),
        }
        match w.fetch("http://no-such-host.example/x", 0) {
            FetchOutcome::Err { error, .. } => assert_eq!(error, FetchError::UnknownHost),
            o => panic!("{o:?}"),
        }
        match w.fetch("garbage-url", 0) {
            FetchOutcome::Err { error, .. } => assert_eq!(error, FetchError::UnknownHost),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn dead_hosts_time_out() {
        let w = world();
        let dead_host = (0..w.host_count() as u32)
            .find(|&h| w.host(h).behavior == HostBehavior::Dead)
            .expect("small_test generates dead hosts");
        let page = (0..w.page_count() as u64)
            .find(|&id| w.page(id).host == dead_host)
            .unwrap();
        match w.fetch(&w.url_of(page), 0) {
            FetchOutcome::Err { error, latency_ms } => {
                assert_eq!(error, FetchError::Timeout);
                assert_eq!(latency_ms, TIMEOUT_MS);
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn flaky_host_varies_with_attempt() {
        let w = world();
        let flaky_host = (0..w.host_count() as u32)
            .find(|&h| matches!(w.host(h).behavior, HostBehavior::Flaky(_)))
            .expect("small_test generates flaky hosts");
        let page = (0..w.page_count() as u64)
            .find(|&id| w.page(id).host == flaky_host && w.page(id).size_hint.is_none())
            .unwrap();
        let url = w.url_of(page);
        // Over several attempts, at least one succeeds and the outcome per
        // attempt is deterministic.
        let outcomes: Vec<bool> = (0..20)
            .map(|a| matches!(w.fetch(&url, a), FetchOutcome::Ok(_)))
            .collect();
        assert!(outcomes.iter().any(|&ok| ok));
        let again: Vec<bool> = (0..20)
            .map(|a| matches!(w.fetch(&url, a), FetchOutcome::Ok(_)))
            .collect();
        assert_eq!(outcomes, again);
    }

    #[test]
    fn redirects_point_to_canonical() {
        let w = world();
        let stub = (0..w.page_count() as u64)
            .find(|&id| {
                w.page(id).kind == PageKind::Redirect
                    && w.host(w.page(id).host).behavior == HostBehavior::Normal
            })
            .expect("redirect stubs exist");
        match w.fetch(&w.url_of(stub), 0) {
            FetchOutcome::Redirect { location, .. } => {
                let target = w.page(stub).redirect_to.unwrap();
                assert_eq!(location, w.url_of(target));
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn media_reports_size_without_payload() {
        let w = world();
        let media = (0..w.page_count() as u64)
            .find(|&id| {
                w.page(id).kind == PageKind::Media
                    && w.host(w.page(id).host).behavior == HostBehavior::Normal
            })
            .unwrap();
        match w.fetch(&w.url_of(media), 0) {
            FetchOutcome::Ok(resp) => {
                assert_eq!(resp.mime, MimeType::Video);
                assert!(resp.size >= 1_000_000);
                assert!(resp.payload.is_empty());
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn dns_lookup_behaviour() {
        let w = world();
        let name = w.host(0).name.clone();
        let (ip, latency) = w.dns_lookup(&name, 0).unwrap();
        assert_eq!(ip, w.host(0).ip);
        assert!(latency > 0);
        assert_eq!(w.dns_lookup("nope.invalid", 0), Err(DnsError::NxDomain));
    }

    #[test]
    fn host_of_url_parsing() {
        assert_eq!(host_of_url("http://a.b/c"), Some("a.b"));
        assert_eq!(host_of_url("http://a.b"), Some("a.b"));
        assert_eq!(host_of_url("https://a.b/c"), None, "only http simulated");
        assert_eq!(host_of_url("http:///x"), None);
    }
}
