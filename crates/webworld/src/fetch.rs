//! Fetch and DNS simulation (Section 4.2 networking aspects).
//!
//! Every fetch returns a deterministic outcome given `(world seed, url,
//! attempt)`: success with payload and latency, a redirect, or a failure
//! (timeout on dead/flaky hosts, 404 on broken links). Latency models a
//! base round trip plus size-proportional transfer time; "slow" hosts
//! multiply it, letting the crawler's slow/bad host tagging kick in.

use crate::content_gen;
use crate::faults::FaultKind;
use crate::{HostBehavior, HostMeta, World};
use bingo_graph::{HostId, PageId};
use bingo_textproc::fxhash;
use bingo_textproc::MimeType;

/// Simulated bandwidth: bytes transferred per virtual millisecond.
pub const BYTES_PER_MS: u64 = 2000;

/// Virtual milliseconds until a timeout is reported.
pub const TIMEOUT_MS: u64 = 3000;

/// A successful fetch.
#[derive(Debug, Clone)]
pub struct FetchResponse {
    /// The page served.
    pub page_id: PageId,
    /// URL exactly as requested (may be an alias of the canonical URL).
    pub url: String,
    /// Server IP — one ingredient of the duplicate fingerprints.
    pub ip: u32,
    /// Served MIME type.
    pub mime: MimeType,
    /// Raw payload (with format envelope for non-HTML types).
    pub payload: String,
    /// Size in bytes as reported by the server (media files report their
    /// true size even though the payload is not materialized).
    pub size: u64,
    /// Virtual milliseconds the fetch took.
    pub latency_ms: u64,
    /// True when the delivered payload is shorter than the advertised
    /// `size` (a truncation fault): the client can detect the mismatch
    /// and treat the fetch as failed.
    pub truncated: bool,
}

/// Why a fetch failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchError {
    /// Host did not respond within the timeout.
    Timeout,
    /// Host resolved but no such page.
    NotFound,
    /// Hostname does not exist.
    UnknownHost,
    /// Server answered with a 5xx status (transient server-side failure;
    /// a later retry may succeed).
    ServerError(u16),
}

impl FetchError {
    /// True for failures worth retrying later (the server may recover);
    /// 404 and unknown hosts are permanent.
    pub fn is_transient(self) -> bool {
        matches!(self, FetchError::Timeout | FetchError::ServerError(_))
    }
}

/// DNS failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsError {
    /// No such hostname.
    NxDomain,
    /// The queried DNS server timed out (transient; retry may succeed).
    Timeout,
}

/// Outcome of one fetch attempt.
#[derive(Debug, Clone)]
pub enum FetchOutcome {
    /// 200 OK.
    Ok(FetchResponse),
    /// 3xx redirect to `location`.
    Redirect {
        /// Target URL.
        location: String,
        /// Virtual milliseconds spent.
        latency_ms: u64,
    },
    /// Failure.
    Err {
        /// What went wrong.
        error: FetchError,
        /// Virtual milliseconds spent (a timeout costs the full budget).
        latency_ms: u64,
    },
}

/// Path prefix of synthetic redirect-loop chain URLs (see
/// [`FaultKind::RedirectLoop`]).
const LOOP_PREFIX: &str = "__loop/";

impl World {
    /// Authoritative DNS lookup: hostname → IP with lookup latency.
    /// Flaky hosts' DNS also fails transiently, varying with `attempt`
    /// (the crawler's resolver resends to alternative servers).
    pub fn dns_lookup(&self, hostname: &str, attempt: u32) -> Result<(u32, u64), DnsError> {
        self.dns_lookup_at(hostname, attempt, 0)
    }

    /// DNS lookup at virtual time `now_ms`: during a scripted
    /// [`FaultKind::DnsFlap`] window the authoritative servers time out
    /// on every attempt (cached resolutions are unaffected — the cache
    /// lives in the crawler's resolver).
    pub fn dns_lookup_at(
        &self,
        hostname: &str,
        attempt: u32,
        now_ms: u64,
    ) -> Result<(u32, u64), DnsError> {
        let Some((host_id, host)) = self.find_host(hostname) else {
            return Err(DnsError::NxDomain);
        };
        if matches!(
            self.faults.active(host_id, now_ms).map(|w| w.kind),
            Some(FaultKind::DnsFlap)
        ) {
            return Err(DnsError::Timeout);
        }
        if let HostBehavior::Flaky(permille) = host.behavior {
            let roll = fxhash::hash_one(&(self.seed, hostname, attempt, 0xD15u32)) % 1000;
            if (roll as u16) < permille / 2 {
                return Err(DnsError::Timeout);
            }
        }
        Ok((host.ip, host.dns_latency_ms as u64))
    }

    /// Fetch a URL. `attempt` differentiates retries: a flaky host may
    /// fail attempt 0 and serve attempt 1. Equivalent to
    /// [`World::fetch_at`] at virtual time 0 (fault-free unless a window
    /// starts at 0).
    pub fn fetch(&self, url: &str, attempt: u32) -> FetchOutcome {
        self.fetch_at(url, attempt, 0)
    }

    /// Fetch a URL at virtual time `now_ms`, applying any fault window
    /// scripted for the host at that instant on top of the host's static
    /// behaviour.
    pub fn fetch_at(&self, url: &str, attempt: u32, now_ms: u64) -> FetchOutcome {
        let Some(hostname) = host_of_url(url) else {
            return FetchOutcome::Err {
                error: FetchError::UnknownHost,
                latency_ms: 1,
            };
        };

        // Synthetic redirect-loop chain URLs exist only while the loop
        // window is active; they are not part of the page index.
        if let Some((host_id, host)) = self.find_host(hostname) {
            if let Some(hop) = parse_loop_url(url) {
                let active_loop = matches!(
                    self.faults.active(host_id, now_ms).map(|w| w.kind),
                    Some(FaultKind::RedirectLoop)
                );
                return if active_loop {
                    FetchOutcome::Redirect {
                        location: format!(
                            "http://{}/{}{}/{}",
                            host.name,
                            LOOP_PREFIX,
                            hop.0 + 1,
                            hop.1
                        ),
                        latency_ms: host.base_latency_ms as u64,
                    }
                } else {
                    FetchOutcome::Err {
                        error: FetchError::NotFound,
                        latency_ms: host.base_latency_ms as u64,
                    }
                };
            }
        }

        let Some(page_id) = self.resolve_url(url) else {
            // Host may exist (404) or not (unknown host).
            return match self.find_host(hostname) {
                Some((_, h)) => FetchOutcome::Err {
                    error: FetchError::NotFound,
                    latency_ms: h.base_latency_ms as u64,
                },
                None => FetchOutcome::Err {
                    error: FetchError::UnknownHost,
                    latency_ms: 1,
                },
            };
        };

        let meta = self.page_meta(page_id);
        let host = self.host_meta(meta.host);
        match host.behavior {
            HostBehavior::Dead => {
                return FetchOutcome::Err {
                    error: FetchError::Timeout,
                    latency_ms: TIMEOUT_MS,
                }
            }
            HostBehavior::Flaky(permille) => {
                let roll = fxhash::hash_one(&(self.seed, url, attempt)) % 1000;
                if (roll as u16) < permille {
                    return FetchOutcome::Err {
                        error: FetchError::Timeout,
                        latency_ms: TIMEOUT_MS,
                    };
                }
            }
            _ => {}
        }

        // Scripted fault window, if one is active right now.
        let fault = self.faults.active(meta.host, now_ms).map(|w| w.kind);
        match fault {
            Some(FaultKind::Outage) => {
                return FetchOutcome::Err {
                    error: FetchError::Timeout,
                    latency_ms: TIMEOUT_MS,
                }
            }
            Some(FaultKind::ErrorBurst { status }) => {
                return FetchOutcome::Err {
                    error: FetchError::ServerError(status),
                    latency_ms: host.base_latency_ms as u64,
                }
            }
            Some(FaultKind::RedirectLoop) => {
                return FetchOutcome::Redirect {
                    location: format!("http://{}/{}1/{}", host.name, LOOP_PREFIX, meta.path),
                    latency_ms: host.base_latency_ms as u64,
                }
            }
            _ => {}
        }

        let slow_factor = if host.behavior == HostBehavior::Slow {
            8
        } else {
            1
        };

        if let Some(target) = meta.redirect_to {
            return FetchOutcome::Redirect {
                location: self.url_of(target),
                latency_ms: host.base_latency_ms as u64 * slow_factor,
            };
        }

        // Oversized media is not materialized; the crawler aborts on the
        // reported size/MIME before the body transfer anyway.
        let (mut payload, size) = match meta.size_hint {
            Some(s) => (String::new(), s as u64),
            None => {
                let p = content_gen::payload(self, page_id);
                let len = p.len() as u64;
                (p, len)
            }
        };
        let jitter = fxhash::hash_one(&(self.seed, page_id, attempt, 0x1a7u32)) % 30;
        let mut latency_ms =
            (host.base_latency_ms as u64 + size / BYTES_PER_MS + jitter) * slow_factor;

        // Degraded-but-responding fault modes.
        let mut truncated = false;
        match fault {
            Some(FaultKind::SlowDrip { factor }) => {
                latency_ms *= factor.max(1) as u64;
                if latency_ms > TIMEOUT_MS {
                    // The drip is slower than the client's patience: the
                    // partial transfer is abandoned at the timeout.
                    return FetchOutcome::Err {
                        error: FetchError::Timeout,
                        latency_ms: TIMEOUT_MS,
                    };
                }
            }
            Some(FaultKind::Truncate { keep_permille }) => {
                let keep = payload.len() * keep_permille.min(999) as usize / 1000;
                let cut = (0..=keep).rev().find(|&i| payload.is_char_boundary(i));
                payload.truncate(cut.unwrap_or(0));
                truncated = true;
            }
            Some(FaultKind::Garble) => {
                payload = garble(&payload, self.seed ^ page_id);
            }
            _ => {}
        }

        FetchOutcome::Ok(FetchResponse {
            page_id,
            url: url.to_string(),
            ip: host.ip,
            mime: meta.mime,
            payload,
            size,
            latency_ms,
            truncated,
        })
    }

    fn find_host(&self, name: &str) -> Option<(HostId, HostMeta)> {
        if let Some(p) = &self.paged {
            return p.find_host(name);
        }
        self.hosts
            .iter()
            .position(|h| h.name == name)
            .map(|i| (i as HostId, self.hosts[i].clone()))
    }
}

/// Parse `http://host/__loop/{k}/{path}` into `(k, path)`.
fn parse_loop_url(url: &str) -> Option<(u32, &str)> {
    let rest = url.strip_prefix("http://")?;
    let slash = rest.find('/')?;
    let chain = rest[slash + 1..].strip_prefix(LOOP_PREFIX)?;
    let (hop, path) = chain.split_once('/')?;
    Some((hop.parse().ok()?, path))
}

/// Deterministically corrupt a payload: rotate ASCII letters by a
/// seed-derived shift. Markup, format envelopes and words all turn to
/// mush while the text stays valid UTF-8 (the downstream parsers see
/// garbage, exactly like bit-rot through a broken proxy).
fn garble(payload: &str, salt: u64) -> String {
    let shift = (fxhash::hash_one(&(salt, 0x6a4bu32)) % 25 + 1) as u8;
    payload
        .chars()
        .map(|c| match c {
            'a'..='z' => (b'a' + (c as u8 - b'a' + shift) % 26) as char,
            'A'..='Z' => (b'A' + (c as u8 - b'A' + shift) % 26) as char,
            _ => c,
        })
        .collect()
}

/// Extract the hostname of an `http://host/path` URL.
pub fn host_of_url(url: &str) -> Option<&str> {
    let rest = url.strip_prefix("http://")?;
    let end = rest.find('/').unwrap_or(rest.len());
    let host = &rest[..end];
    (!host.is_empty()).then_some(host)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorldConfig;
    use crate::PageKind;

    fn world() -> World {
        WorldConfig::small_test(13).build()
    }

    #[test]
    fn fetch_success_round_trip() {
        let w = world();
        let id = (0..w.page_count() as u64)
            .find(|&id| {
                w.page(id).kind == PageKind::Content
                    && w.host(w.page(id).host).behavior == HostBehavior::Normal
            })
            .unwrap();
        let url = w.url_of(id);
        match w.fetch(&url, 0) {
            FetchOutcome::Ok(resp) => {
                assert_eq!(resp.page_id, id);
                assert_eq!(resp.url, url);
                assert!(resp.latency_ms > 0);
                assert_eq!(resp.size, resp.payload.len() as u64);
            }
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn alias_serves_same_page_same_ip_same_size() {
        let w = world();
        let (id, alias) = (0..w.page_count() as u64)
            .find_map(|id| {
                w.alias_url_of(id).map(|a| (id, a.to_string())).filter(|_| {
                    w.host(w.page(id).host).behavior == HostBehavior::Normal
                        && w.page(id).size_hint.is_none()
                })
            })
            .unwrap();
        let canon = match w.fetch(&w.url_of(id), 0) {
            FetchOutcome::Ok(r) => r,
            o => panic!("{o:?}"),
        };
        let dup = match w.fetch(&alias, 0) {
            FetchOutcome::Ok(r) => r,
            o => panic!("{o:?}"),
        };
        assert_eq!(canon.page_id, dup.page_id);
        assert_eq!(canon.ip, dup.ip);
        assert_eq!(canon.size, dup.size);
        assert_ne!(canon.url, dup.url, "different URLs, same content");
    }

    #[test]
    fn missing_page_404_and_unknown_host() {
        let w = world();
        let host = w.host(0).name.clone();
        match w.fetch(&format!("http://{host}/definitely-missing.html"), 0) {
            FetchOutcome::Err { error, .. } => assert_eq!(error, FetchError::NotFound),
            o => panic!("{o:?}"),
        }
        match w.fetch("http://no-such-host.example/x", 0) {
            FetchOutcome::Err { error, .. } => assert_eq!(error, FetchError::UnknownHost),
            o => panic!("{o:?}"),
        }
        match w.fetch("garbage-url", 0) {
            FetchOutcome::Err { error, .. } => assert_eq!(error, FetchError::UnknownHost),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn dead_hosts_time_out() {
        let w = world();
        let dead_host = (0..w.host_count() as u32)
            .find(|&h| w.host(h).behavior == HostBehavior::Dead)
            .expect("small_test generates dead hosts");
        let page = (0..w.page_count() as u64)
            .find(|&id| w.page(id).host == dead_host)
            .unwrap();
        match w.fetch(&w.url_of(page), 0) {
            FetchOutcome::Err { error, latency_ms } => {
                assert_eq!(error, FetchError::Timeout);
                assert_eq!(latency_ms, TIMEOUT_MS);
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn flaky_host_varies_with_attempt() {
        let w = world();
        let flaky_host = (0..w.host_count() as u32)
            .find(|&h| matches!(w.host(h).behavior, HostBehavior::Flaky(_)))
            .expect("small_test generates flaky hosts");
        let page = (0..w.page_count() as u64)
            .find(|&id| w.page(id).host == flaky_host && w.page(id).size_hint.is_none())
            .unwrap();
        let url = w.url_of(page);
        // Over several attempts, at least one succeeds and the outcome per
        // attempt is deterministic.
        let outcomes: Vec<bool> = (0..20)
            .map(|a| matches!(w.fetch(&url, a), FetchOutcome::Ok(_)))
            .collect();
        assert!(outcomes.iter().any(|&ok| ok));
        let again: Vec<bool> = (0..20)
            .map(|a| matches!(w.fetch(&url, a), FetchOutcome::Ok(_)))
            .collect();
        assert_eq!(outcomes, again);
    }

    #[test]
    fn redirects_point_to_canonical() {
        let w = world();
        let stub = (0..w.page_count() as u64)
            .find(|&id| {
                w.page(id).kind == PageKind::Redirect
                    && w.host(w.page(id).host).behavior == HostBehavior::Normal
            })
            .expect("redirect stubs exist");
        match w.fetch(&w.url_of(stub), 0) {
            FetchOutcome::Redirect { location, .. } => {
                let target = w.page(stub).redirect_to.unwrap();
                assert_eq!(location, w.url_of(target));
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn media_reports_size_without_payload() {
        let w = world();
        let media = (0..w.page_count() as u64)
            .find(|&id| {
                w.page(id).kind == PageKind::Media
                    && w.host(w.page(id).host).behavior == HostBehavior::Normal
            })
            .unwrap();
        match w.fetch(&w.url_of(media), 0) {
            FetchOutcome::Ok(resp) => {
                assert_eq!(resp.mime, MimeType::Video);
                assert!(resp.size >= 1_000_000);
                assert!(resp.payload.is_empty());
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn dns_lookup_behaviour() {
        let w = world();
        let name = w.host(0).name.clone();
        let (ip, latency) = w.dns_lookup(&name, 0).unwrap();
        assert_eq!(ip, w.host(0).ip);
        assert!(latency > 0);
        assert_eq!(w.dns_lookup("nope.invalid", 0), Err(DnsError::NxDomain));
    }

    #[test]
    fn fault_windows_shape_fetch_outcomes() {
        use crate::faults::{FaultKind, FaultPlan, FaultWindow};
        let mut w = world();
        let id = (0..w.page_count() as u64)
            .find(|&id| {
                w.page(id).kind == PageKind::Content
                    && w.page(id).mime == MimeType::Html
                    && w.host(w.page(id).host).behavior == HostBehavior::Normal
            })
            .unwrap();
        let host = w.page(id).host;
        let url = w.url_of(id);
        let clean = match w.fetch_at(&url, 0, 0) {
            FetchOutcome::Ok(r) => r,
            o => panic!("{o:?}"),
        };

        let mut plan = FaultPlan::empty();
        for (start, kind) in [
            (1_000, FaultKind::Outage),
            (2_000, FaultKind::ErrorBurst { status: 503 }),
            (3_000, FaultKind::Truncate { keep_permille: 400 }),
            (4_000, FaultKind::Garble),
            (5_000, FaultKind::SlowDrip { factor: 1000 }),
            (6_000, FaultKind::DnsFlap),
            (7_000, FaultKind::RedirectLoop),
        ] {
            plan.insert_window(
                host,
                FaultWindow {
                    start_ms: start,
                    end_ms: start + 500,
                    kind,
                },
            );
        }
        w.install_faults(plan);

        // Outside every window the fetch is byte-identical to clean.
        match w.fetch_at(&url, 0, 500) {
            FetchOutcome::Ok(r) => {
                assert_eq!(r.payload, clean.payload);
                assert!(!r.truncated);
            }
            o => panic!("{o:?}"),
        }
        // Outage: timeout at full budget.
        match w.fetch_at(&url, 0, 1_100) {
            FetchOutcome::Err { error, latency_ms } => {
                assert_eq!(error, FetchError::Timeout);
                assert_eq!(latency_ms, TIMEOUT_MS);
            }
            o => panic!("{o:?}"),
        }
        // Error burst: 5xx, transient.
        match w.fetch_at(&url, 0, 2_100) {
            FetchOutcome::Err { error, .. } => {
                assert_eq!(error, FetchError::ServerError(503));
                assert!(error.is_transient());
            }
            o => panic!("{o:?}"),
        }
        // Truncation: short payload, full advertised size, flagged.
        match w.fetch_at(&url, 0, 3_100) {
            FetchOutcome::Ok(r) => {
                assert!(r.truncated);
                assert!(r.payload.len() < clean.payload.len());
                assert_eq!(r.size, clean.size, "full size still advertised");
            }
            o => panic!("{o:?}"),
        }
        // Garbling: same length, different bytes, not flagged.
        match w.fetch_at(&url, 0, 4_100) {
            FetchOutcome::Ok(r) => {
                assert!(!r.truncated);
                assert_eq!(r.payload.len(), clean.payload.len());
                assert_ne!(r.payload, clean.payload);
            }
            o => panic!("{o:?}"),
        }
        // Extreme slow-drip: abandoned at the timeout.
        match w.fetch_at(&url, 0, 5_100) {
            FetchOutcome::Err { error, latency_ms } => {
                assert_eq!(error, FetchError::Timeout);
                assert_eq!(latency_ms, TIMEOUT_MS);
            }
            o => panic!("{o:?}"),
        }
        // DNS flap: lookups fail during the window, recover after.
        let host_name = w.host(host).name.clone();
        assert_eq!(
            w.dns_lookup_at(&host_name, 0, 6_100),
            Err(DnsError::Timeout)
        );
        assert!(w.dns_lookup_at(&host_name, 0, 6_600).is_ok());
        // Redirect loop: every hop yields a fresh synthetic URL.
        let first = match w.fetch_at(&url, 0, 7_100) {
            FetchOutcome::Redirect { location, .. } => location,
            o => panic!("{o:?}"),
        };
        assert!(first.contains("/__loop/1/"));
        let second = match w.fetch_at(&first, 0, 7_200) {
            FetchOutcome::Redirect { location, .. } => location,
            o => panic!("{o:?}"),
        };
        assert!(second.contains("/__loop/2/"));
        assert_ne!(first, second);
        // After the window the synthetic chain URLs 404.
        match w.fetch_at(&first, 0, 8_000) {
            FetchOutcome::Err { error, .. } => assert_eq!(error, FetchError::NotFound),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn chaos_preset_installs_fault_plan() {
        let w = WorldConfig::chaos(13).build();
        assert!(!w.faults().is_empty());
        assert!(w.faults().faulty_hosts() >= w.host_count() / 3);
        // Same seed, same script.
        let v = WorldConfig::chaos(13).build();
        for h in 0..w.host_count() as u32 {
            assert_eq!(w.faults().windows_for(h), v.faults().windows_for(h));
        }
        // The plain preset stays fault-free.
        assert!(world().faults().is_empty());
    }

    #[test]
    fn host_of_url_parsing() {
        assert_eq!(host_of_url("http://a.b/c"), Some("a.b"));
        assert_eq!(host_of_url("http://a.b"), Some("a.b"));
        assert_eq!(host_of_url("https://a.b/c"), None, "only http simulated");
        assert_eq!(host_of_url("http:///x"), None);
    }
}
