//! World-level invariants: a generated web must be internally
//! consistent regardless of configuration, because the crawler's
//! correctness arguments (dedup, politeness, focusing) rest on them.

use bingo_graph::LinkSource;
use bingo_textproc::{ContentRegistry, MimeType};
use bingo_webworld::gen::{AuthorDirectoryConfig, TopicConfig, WorldConfig};
use bingo_webworld::{content_gen, FetchOutcome, HostBehavior, PageKind, World};

fn worlds() -> Vec<World> {
    vec![
        WorldConfig::small_test(101).build(),
        WorldConfig::expert(102).build(),
        WorldConfig::portal(103, 150, 1).build(),
        // A custom configuration exercising edge settings.
        WorldConfig {
            topics: vec![
                TopicConfig::new("solo", "web_ir", 30, 1),
                TopicConfig::new("noise", "arts", 20, 1),
            ],
            author_directory: Some(AuthorDirectoryConfig {
                authors: 5,
                max_pubs: 10,
                topic: 0,
                hosts: 1,
            }),
            noise_topics: vec![1],
            alias_fraction: 0.5,
            redirect_fraction: 0.3,
            ..WorldConfig::small_test(104)
        }
        .build(),
    ]
}

#[test]
fn all_out_links_resolve_to_valid_pages() {
    for world in worlds() {
        for id in 0..world.page_count() as u64 {
            for &t in &world.page(id).out {
                assert!(
                    (t as usize) < world.page_count(),
                    "dangling out-link {id}->{t}"
                );
            }
            if let Some(r) = world.page(id).redirect_to {
                assert!((r as usize) < world.page_count());
                assert_ne!(r, id, "self-redirect");
            }
        }
    }
}

#[test]
fn host_indices_and_urls_are_consistent() {
    for world in worlds() {
        for id in 0..world.page_count() as u64 {
            let meta = world.page(id);
            assert!((meta.host as usize) < world.host_count());
            let url = world.url_of(id);
            assert!(url.starts_with("http://"));
            assert_eq!(world.resolve_url(&url), Some(id));
            assert_eq!(world.host_of(id), meta.host);
        }
    }
}

#[test]
fn rendered_links_resolve_or_are_intentional_traps() {
    let world = WorldConfig::small_test(105).build();
    let registry = ContentRegistry::new();
    let mut checked = 0;
    for id in 0..world.page_count() as u64 {
        let meta = world.page(id);
        if meta.size_hint.is_some() || meta.redirect_to.is_some() {
            continue;
        }
        let payload = content_gen::payload(&world, id);
        let Ok(html) = registry.to_html(meta.mime, &payload) else {
            continue;
        };
        let parsed = bingo_textproc::html::parse(&html);
        for link in &parsed.links {
            let resolvable = world.resolve_url(&link.href).is_some();
            let trap =
                link.href.len() > 1000 || meta.extra_out_urls.iter().any(|u| u == &link.href);
            assert!(
                resolvable || trap,
                "page {id} renders unresolvable non-trap link {}",
                link.href
            );
        }
        checked += 1;
        if checked >= 300 {
            break;
        }
    }
    assert!(checked > 100);
}

#[test]
fn fetch_is_total_over_all_pages() {
    // Every page yields *some* deterministic outcome; no panics, and
    // outcome types line up with metadata.
    let world = WorldConfig::small_test(106).build();
    for id in 0..world.page_count() as u64 {
        let url = world.url_of(id);
        let a = world.fetch(&url, 0);
        let b = world.fetch(&url, 0);
        match (&a, &b) {
            (FetchOutcome::Ok(x), FetchOutcome::Ok(y)) => {
                assert_eq!(x.page_id, y.page_id);
                assert_eq!(x.size, y.size);
                assert_eq!(x.payload, y.payload);
            }
            (
                FetchOutcome::Redirect { location: l1, .. },
                FetchOutcome::Redirect { location: l2, .. },
            ) => {
                assert_eq!(l1, l2);
            }
            (FetchOutcome::Err { error: e1, .. }, FetchOutcome::Err { error: e2, .. }) => {
                assert_eq!(e1, e2);
            }
            _ => panic!("nondeterministic outcome for {url}"),
        }
        if world.page(id).redirect_to.is_some() {
            let healthy = world.host(world.page(id).host).behavior == HostBehavior::Normal;
            if healthy {
                assert!(matches!(a, FetchOutcome::Redirect { .. }));
            }
        }
    }
}

#[test]
fn author_directory_is_sound() {
    let world = WorldConfig::portal(107, 120, 1).build();
    let authors = world.authors();
    assert_eq!(authors.len(), 120);
    for (i, a) in authors.iter().enumerate() {
        assert_eq!(a.index as usize, i);
        // All of the author's pages share the homepage prefix.
        for &p in &a.pages {
            let url = world.url_of(p);
            assert!(
                a.matches_url(&url),
                "author {i} page {url} outside {}",
                a.homepage_prefix
            );
        }
        // The homepage is an AuthorHome page of the directory topic.
        assert_eq!(world.page(a.homepage).kind, PageKind::AuthorHome);
        assert_eq!(world.true_topic(a.homepage), Some(0));
        // Prefixes are unique.
        for b in &authors[i + 1..] {
            assert_ne!(a.homepage_prefix, b.homepage_prefix);
        }
    }
}

#[test]
fn media_pages_never_offer_analyzable_payloads() {
    let world = WorldConfig::small_test(108).build();
    let registry = ContentRegistry::new();
    for id in 0..world.page_count() as u64 {
        let meta = world.page(id);
        if meta.kind != PageKind::Media {
            continue;
        }
        assert_eq!(meta.mime, MimeType::Video);
        assert!(!registry.can_handle(meta.mime));
        assert!(meta.size_hint.unwrap_or(0) > MimeType::Html.max_size() as u32);
    }
}

#[test]
fn topic_pages_dominate_their_hosts() {
    // Host assignment sanity: pages of a topic live on that topic's
    // hosts (plus author/department hosts for the directory topic).
    let world = WorldConfig::small_test(109).build();
    for id in 0..world.page_count() as u64 {
        let meta = world.page(id);
        if meta.kind == PageKind::Content {
            let host_name = &world.host(meta.host).name;
            let t = meta.topic.expect("content pages are topical");
            let topic_name = &world.topics()[t as usize].name;
            assert!(
                host_name.starts_with(topic_name.as_str()),
                "content page {id} of topic {topic_name} on host {host_name}"
            );
        }
    }
}

#[test]
fn blending_respects_relatedness() {
    let world = WorldConfig::portal(110, 100, 1).build();
    // Portal preset relates research topics {0,1,2}; noise topics never
    // blend.
    for id in 0..world.page_count() as u64 {
        let meta = world.page(id);
        if let (Some(t), Some(s)) = (meta.topic, meta.secondary_topic) {
            assert!(t <= 2 && s <= 2, "non-research blend {t}<->{s}");
            assert_ne!(t, s);
        }
    }
}
