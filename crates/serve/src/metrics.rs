//! Portal-service metrics: request volume, result sizes, latency.
//!
//! Request and hit counts are deterministic under a deterministic
//! request schedule (the virtual-clock load generator); per-request
//! latency is wall time and lands in a volatile log2 histogram.

use bingo_obs::{Counter, Histogram, Registry};
use std::sync::Arc;

/// Metric handles for one portal service. Cloning shares the underlying
/// atomics.
#[derive(Clone)]
pub struct ServeMetrics {
    /// Keyword queries served.
    pub queries: Counter,
    /// Topic-browse requests served.
    pub browses: Counter,
    /// Stats requests served.
    pub stats: Counter,
    /// Resolved terms per query.
    pub query_terms: Arc<Histogram>,
    /// Results returned per query.
    pub query_hits: Arc<Histogram>,
    /// Wall-clock request latency, microseconds (volatile).
    pub query_wall_us: Arc<Histogram>,
}

impl std::fmt::Debug for ServeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ServeMetrics")
    }
}

impl ServeMetrics {
    /// Register the portal metrics in `registry`.
    pub fn new(registry: &Registry) -> Self {
        ServeMetrics {
            queries: registry.counter("serve.query.count"),
            browses: registry.counter("serve.browse.count"),
            stats: registry.counter("serve.stats.count"),
            query_terms: registry.histogram("serve.query.terms"),
            query_hits: registry.histogram("serve.query.hits"),
            query_wall_us: registry.wall_histogram("serve.query.wall_us"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_register_expected_names() {
        let reg = Registry::new();
        let m = ServeMetrics::new(&reg);
        m.queries.inc();
        m.query_hits.observe(3);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["serve.query.count"], 1);
        assert!(snap.histograms.contains_key("serve.query.hits"));
        assert!(snap.volatile.contains("serve.query.wall_us"));
    }
}
