//! Seeded portal load generation.
//!
//! A [`QueryMix`] maps a request index to a [`PortalRequest`] through a
//! per-index seeded RNG, so request `i` is the same regardless of which
//! client or thread issues it — the whole workload is a pure function of
//! `(seed, lexicon)`. Two drivers consume a mix:
//!
//! * [`VirtualLoadGen`] — deterministic closed-loop clients on the
//!   *virtual* clock. Interleave [`VirtualLoadGen::tick`] with
//!   discrete-event crawler steps and the full request schedule (and
//!   every deterministic serve metric) reproduces bit-for-bit per seed.
//! * [`run_closed_loop`] — real threads hammering the service
//!   concurrently with a threaded crawl, measuring wall-clock QPS and
//!   latency percentiles (via `bingo_obs`'s log2-histogram percentile
//!   estimator).

use crate::{PortalRequest, PortalResponse, PortalService};
use bingo_obs::Histogram;
use bingo_search::{IndexReader, QueryOptions, RankingScheme, TopicFilter};
use bingo_textproc::TermLookup;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// A seeded query workload over a harvested lexicon: weighted phrase
/// queries (with a spread of topic filters and ranking schemes), topic
/// browses and stats probes.
#[derive(Debug, Clone)]
pub struct QueryMix {
    seed: u64,
    phrases: Vec<String>,
    topics: Vec<u32>,
}

impl QueryMix {
    /// Build a mix of `phrase_count` phrases, each 1–3 words drawn from
    /// the given word pools (typically topic lexicons the crawl
    /// harvests from), plus topic browses over `topics`. Deterministic
    /// per seed.
    pub fn from_lexicons(
        seed: u64,
        pools: &[&[&str]],
        topics: &[u32],
        phrase_count: usize,
    ) -> Self {
        assert!(!pools.is_empty(), "query mix needs at least one word pool");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut phrases = Vec::with_capacity(phrase_count);
        for _ in 0..phrase_count {
            let words = rng.gen_range(1..=3usize);
            let mut phrase = String::new();
            for w in 0..words {
                let pool = pools[rng.gen_range(0..pools.len())];
                if w > 0 {
                    phrase.push(' ');
                }
                phrase.push_str(pool[rng.gen_range(0..pool.len())]);
            }
            phrases.push(phrase);
        }
        QueryMix {
            seed,
            phrases,
            topics: topics.to_vec(),
        }
    }

    /// The `i`-th request of the workload — a pure function of
    /// `(seed, i)`, independent of which client issues it.
    pub fn request(&self, i: u64) -> PortalRequest {
        let mut rng =
            SmallRng::seed_from_u64(self.seed ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let roll: f64 = rng.gen();
        if roll < 0.04 {
            return PortalRequest::Stats;
        }
        if roll < 0.12 && !self.topics.is_empty() {
            return PortalRequest::TopicBrowse {
                topic: self.topics[rng.gen_range(0..self.topics.len())],
                limit: 10,
            };
        }
        let text = self.phrases[rng.gen_range(0..self.phrases.len())].clone();
        let filter_roll: f64 = rng.gen();
        let filter = if self.topics.is_empty() || filter_roll < 0.60 {
            TopicFilter::Any
        } else if filter_roll < 0.85 {
            TopicFilter::Exact(self.topics[rng.gen_range(0..self.topics.len())])
        } else {
            TopicFilter::Vague {
                topics: self.topics.clone(),
                min_confidence: 0.25,
            }
        };
        let ranking_roll: f64 = rng.gen();
        let ranking = if ranking_roll < 0.80 {
            RankingScheme::Cosine
        } else if ranking_roll < 0.95 {
            RankingScheme::Confidence
        } else {
            RankingScheme::Combined {
                cosine: 1.0,
                confidence: 0.5,
                authority: 0.0,
            }
        };
        PortalRequest::Query {
            text,
            opts: QueryOptions {
                filter,
                ranking,
                top_k: 10,
            },
        }
    }
}

struct VirtualClient {
    next_due_ms: u64,
    rng: SmallRng,
}

/// Deterministic closed-loop clients on the virtual clock: each client
/// issues its next request once the clock passes its think-time
/// deadline. Single-threaded by design — determinism evidence, not a
/// throughput measurement.
pub struct VirtualLoadGen {
    mix: QueryMix,
    clients: Vec<VirtualClient>,
    think_ms: (u64, u64),
    issued: u64,
    query_hits: u64,
    max_epoch: u64,
}

impl VirtualLoadGen {
    /// `clients` concurrent virtual users with uniform think times in
    /// `think_ms` (inclusive), staggered by a per-client seeded RNG.
    pub fn new(mix: QueryMix, clients: usize, think_ms: (u64, u64), seed: u64) -> Self {
        let clients = (0..clients)
            .map(|c| {
                let mut rng = SmallRng::seed_from_u64(seed ^ (c as u64 + 1) << 17);
                let first = rng.gen_range(0..=think_ms.1);
                VirtualClient {
                    next_due_ms: first,
                    rng,
                }
            })
            .collect();
        VirtualLoadGen {
            mix,
            clients,
            think_ms,
            issued: 0,
            query_hits: 0,
            max_epoch: 0,
        }
    }

    /// Issue every request due at virtual time `now_ms`; returns how
    /// many were served this tick.
    pub fn tick(
        &mut self,
        now_ms: u64,
        service: &PortalService,
        reader: &mut IndexReader,
        vocab: &dyn TermLookup,
    ) -> u64 {
        let mut served = 0u64;
        for c in 0..self.clients.len() {
            while self.clients[c].next_due_ms <= now_ms {
                let req = self.mix.request(self.issued);
                self.issued += 1;
                served += 1;
                if let PortalResponse::Hits { epoch, hits } = service.handle(reader, vocab, &req) {
                    self.query_hits += hits.len() as u64;
                    self.max_epoch = self.max_epoch.max(epoch);
                }
                let client = &mut self.clients[c];
                let think = client.rng.gen_range(self.think_ms.0..=self.think_ms.1);
                client.next_due_ms += think.max(1);
            }
        }
        served
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Total hits returned by keyword queries so far.
    pub fn query_hits(&self) -> u64 {
        self.query_hits
    }

    /// Highest index epoch observed in a query response.
    pub fn max_epoch(&self) -> u64 {
        self.max_epoch
    }
}

/// Outcome of a closed-loop wall-clock run.
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Requests issued.
    pub issued: u64,
    /// Requests that completed while the crawl flag was still up.
    pub during_crawl: u64,
    /// Total hits returned by keyword queries.
    pub query_hits: u64,
    /// Highest index epoch observed in a query response.
    pub max_epoch: u64,
    /// Wall time of the whole run, milliseconds.
    pub wall_ms: u64,
    /// Requests per second.
    pub qps: f64,
    /// Request latency percentiles, microseconds.
    pub p50_us: u64,
    /// 90th percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
}

/// Drive `service` closed-loop from `threads` real threads until
/// `target` requests have been issued — and, when `crawl_active` is
/// given, until the crawl has finished too, so reader traffic spans the
/// entire write phase. Each thread owns one [`IndexReader`]; latencies
/// aggregate into a shared lock-free histogram.
pub fn run_closed_loop(
    service: &PortalService,
    vocab: &dyn TermLookup,
    mix: &QueryMix,
    threads: usize,
    target: u64,
    crawl_active: Option<&AtomicBool>,
) -> LoadReport {
    let next = AtomicU64::new(0);
    let during = AtomicU64::new(0);
    let query_hits = AtomicU64::new(0);
    let max_epoch = AtomicU64::new(0);
    let latencies = Histogram::new();
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads.max(1) {
            s.spawn(|| {
                let mut reader = service.reader();
                loop {
                    let crawl_on = crawl_active
                        .map(|f| f.load(Ordering::Relaxed))
                        .unwrap_or(false);
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= target && !crawl_on {
                        break;
                    }
                    let req = mix.request(i);
                    let t0 = Instant::now();
                    let resp = service.handle(&mut reader, vocab, &req);
                    latencies.observe(t0.elapsed().as_micros() as u64);
                    if crawl_on {
                        during.fetch_add(1, Ordering::Relaxed);
                    }
                    if let PortalResponse::Hits { epoch, hits } = resp {
                        query_hits.fetch_add(hits.len() as u64, Ordering::Relaxed);
                        max_epoch.fetch_max(epoch, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let wall = start.elapsed();
    let snap = latencies.snapshot();
    let issued = snap.count;
    let qps = if wall.as_secs_f64() > 0.0 {
        issued as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    LoadReport {
        issued,
        during_crawl: during.load(Ordering::Relaxed),
        query_hits: query_hits.load(Ordering::Relaxed),
        max_epoch: max_epoch.load(Ordering::Relaxed),
        wall_ms: wall.as_millis() as u64,
        qps,
        p50_us: snap.p50(),
        p90_us: snap.p90(),
        p99_us: snap.p99(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortalService;
    use bingo_search::LiveIndex;
    use bingo_store::{DocumentRow, DocumentStore};
    use bingo_textproc::{SharedVocabulary, Vocabulary};
    use std::sync::Arc;

    const POOLS: &[&[&str]] = &[
        &["recovery", "logging", "checkpoint", "transaction"],
        &["football", "season", "game"],
    ];

    fn store_with_docs(vocab: &mut Vocabulary, live: &LiveIndex) -> DocumentStore {
        let store = DocumentStore::new().with_tee(Arc::new(live.clone()));
        let texts = [
            (1u64, Some(1), "recovery logging checkpoint transaction"),
            (2, Some(1), "recovery checkpoint restart"),
            (3, Some(2), "football season game"),
        ];
        for (id, topic, text) in texts {
            let tfs: Vec<(u32, u32)> = text
                .split(' ')
                .map(|w| (vocab.intern(&bingo_textproc::porter_stem(w)).0, 1))
                .collect();
            store
                .insert_document(DocumentRow {
                    id,
                    url: format!("http://h/{id}"),
                    host: 1,
                    mime: bingo_textproc::MimeType::Html,
                    depth: 0,
                    title: format!("d{id}"),
                    topic,
                    confidence: 0.5,
                    term_freqs: tfs,
                    size: 1,
                    fetched_at: 0,
                })
                .unwrap();
        }
        live.commit();
        store
    }

    #[test]
    fn mix_is_deterministic_per_seed() {
        let a = QueryMix::from_lexicons(7, POOLS, &[1, 2], 16);
        let b = QueryMix::from_lexicons(7, POOLS, &[1, 2], 16);
        for i in 0..200 {
            assert_eq!(format!("{:?}", a.request(i)), format!("{:?}", b.request(i)));
        }
        let c = QueryMix::from_lexicons(8, POOLS, &[1, 2], 16);
        let differs =
            (0..50).any(|i| format!("{:?}", a.request(i)) != format!("{:?}", c.request(i)));
        assert!(differs, "different seeds give different workloads");
    }

    #[test]
    fn mix_covers_all_request_kinds() {
        let mix = QueryMix::from_lexicons(11, POOLS, &[1, 2], 16);
        let mut kinds = [0u32; 3];
        for i in 0..500 {
            match mix.request(i) {
                PortalRequest::Query { .. } => kinds[0] += 1,
                PortalRequest::TopicBrowse { .. } => kinds[1] += 1,
                PortalRequest::Stats => kinds[2] += 1,
            }
        }
        assert!(kinds.iter().all(|&k| k > 0), "{kinds:?}");
        assert!(kinds[0] > kinds[1] && kinds[1] > kinds[2], "{kinds:?}");
    }

    #[test]
    fn virtual_ticks_reproduce_exactly() {
        let mut vocab = Vocabulary::new();
        let live = LiveIndex::new(0);
        let store = store_with_docs(&mut vocab, &live);
        let service = PortalService::new(store, live);
        let run = |seed: u64| {
            let mix = QueryMix::from_lexicons(seed, POOLS, &[1, 2], 16);
            let mut gen = VirtualLoadGen::new(mix, 4, (5, 25), seed);
            let mut reader = service.reader();
            for now in (0..500).step_by(10) {
                gen.tick(now, &service, &mut reader, &vocab);
            }
            (gen.issued(), gen.query_hits(), gen.max_epoch())
        };
        assert_eq!(run(42), run(42));
        assert!(run(42).0 > 50, "4 clients over 500 virtual ms issue plenty");
    }

    #[test]
    fn closed_loop_reaches_target_and_measures() {
        let mut vocab = Vocabulary::new();
        let live = LiveIndex::new(0);
        let store = store_with_docs(&mut vocab, &live);
        let shared = SharedVocabulary::seeded(&vocab);
        let service = PortalService::new(store, live);
        let mix = QueryMix::from_lexicons(3, POOLS, &[1, 2], 16);
        let report = run_closed_loop(&service, &shared, &mix, 4, 500, None);
        assert_eq!(report.issued, 500);
        assert!(report.query_hits > 0);
        assert!(report.qps > 0.0);
        assert!(report.p50_us <= report.p99_us);
        assert_eq!(report.during_crawl, 0, "no crawl flag given");
    }
}
