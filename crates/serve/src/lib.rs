//! The portal serving layer: expert-search queries *during* the crawl.
//!
//! The BINGO! paper's end product is an information portal — users
//! browse the topic tree and run topic-scoped expert-search queries over
//! whatever the focused crawler has harvested so far. The rest of this
//! workspace builds the portal's content; this crate serves it:
//!
//! * [`PortalService`] answers [`PortalRequest`]s (keyword query, topic
//!   browse, portal stats) against a [`LiveIndex`] — the
//!   snapshot-swappable inverted index from `bingo_search::live` — while
//!   crawler threads keep writing through the store's
//!   [`bingo_store::IndexTee`] hook. Every query runs against one
//!   immutable [`IndexSnapshot`](bingo_search::IndexSnapshot), so
//!   results are snapshot-consistent no matter how many bulk-load
//!   commits land mid-query.
//! * [`ServeMetrics`] traces every request through `bingo-obs`
//!   (`serve.query.{count,hits}` deterministic metrics plus a volatile
//!   log2 latency histogram `serve.query.wall_us`).
//! * [`loadgen`] generates a seeded, reproducible query mix and drives
//!   the service either on the virtual clock (deterministic,
//!   single-threaded — bench evidence) or closed-loop from real threads
//!   against a live threaded crawl (throughput/latency measurement).
//!
//! Wiring a live portal onto a crawl is three lines:
//!
//! ```
//! use bingo_search::LiveIndex;
//! use bingo_serve::PortalService;
//! use bingo_store::DocumentStore;
//! use std::sync::Arc;
//!
//! let live = LiveIndex::new(64); // auto-commit every 64 docs
//! let store = DocumentStore::new().with_tee(Arc::new(live.clone()));
//! let portal = PortalService::new(store.clone(), live);
//! // ... hand `store` to the crawler, query `portal` from anywhere.
//! # let _ = portal;
//! ```

pub mod loadgen;
pub mod metrics;

pub use loadgen::{run_closed_loop, LoadReport, QueryMix, VirtualLoadGen};
pub use metrics::ServeMetrics;

use bingo_graph::PageId;
use bingo_obs::WallTimer;
use bingo_search::index::analyze_query_with;
use bingo_search::{IndexReader, LiveIndex, QueryOptions, SearchHit};
use bingo_store::DocumentStore;
use bingo_textproc::TermLookup;

/// One request to the portal front end.
#[derive(Debug, Clone)]
pub enum PortalRequest {
    /// Topic-scoped expert-search query: free text, analyzed with the
    /// crawl's stemmer/vocabulary, ranked under `opts`.
    Query {
        /// Query text.
        text: String,
        /// Topic filter, ranking scheme and result count.
        opts: QueryOptions,
    },
    /// Browse a topic node of the portal: its documents by id, with
    /// title/URL previews.
    TopicBrowse {
        /// Topic node.
        topic: u32,
        /// Maximum entries returned.
        limit: usize,
    },
    /// Portal-wide statistics.
    Stats,
}

/// Response to a [`PortalRequest`].
#[derive(Debug, Clone)]
pub enum PortalResponse {
    /// Ranked hits plus the index epoch that answered — two responses
    /// with the same epoch saw the exact same corpus.
    Hits {
        /// Epoch of the snapshot the query ran against.
        epoch: u64,
        /// Ranked results.
        hits: Vec<SearchHit>,
    },
    /// Topic browse listing.
    Topic {
        /// Total documents currently assigned to the topic.
        total: usize,
        /// The first `limit` entries in document-id order.
        entries: Vec<TopicEntry>,
    },
    /// Portal statistics.
    Stats(PortalStats),
}

/// One row of a topic-browse listing.
#[derive(Debug, Clone)]
pub struct TopicEntry {
    /// Document id.
    pub doc_id: PageId,
    /// Document URL.
    pub url: String,
    /// Document title (the content preview).
    pub title: String,
    /// Classifier confidence of the topic assignment.
    pub confidence: f32,
}

/// Portal-wide statistics. `stored_docs` can run ahead of
/// `indexed_docs` by at most one uncommitted bulk batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortalStats {
    /// Documents in the crawl store.
    pub stored_docs: usize,
    /// Documents in the published index snapshot.
    pub indexed_docs: u64,
    /// Distinct indexed terms.
    pub terms: usize,
    /// Sealed index segments.
    pub segments: usize,
    /// Index publication epoch.
    pub epoch: u64,
    /// Link rows in the store.
    pub links: usize,
    /// Hosts in the store.
    pub hosts: usize,
}

/// The in-process portal service: a store handle, a live index handle
/// and optional request tracing. Cheap to clone; share across any
/// number of querying threads (each thread brings its own
/// [`IndexReader`] from [`PortalService::reader`]).
#[derive(Debug, Clone)]
pub struct PortalService {
    store: DocumentStore,
    index: LiveIndex,
    metrics: Option<ServeMetrics>,
}

impl PortalService {
    /// Service over a store and the live index its writes feed (via
    /// [`DocumentStore::with_tee`] or explicit ingest).
    pub fn new(store: DocumentStore, index: LiveIndex) -> Self {
        PortalService {
            store,
            index,
            metrics: None,
        }
    }

    /// Same service with per-request tracing.
    pub fn with_metrics(mut self, metrics: ServeMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The live index handle.
    pub fn index(&self) -> &LiveIndex {
        &self.index
    }

    /// The store handle.
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// A per-thread read handle over the live index.
    pub fn reader(&self) -> IndexReader {
        self.index.reader()
    }

    /// Handle one request. `reader` is the calling thread's cached read
    /// handle; `vocab` resolves query stems (the deterministic crawler's
    /// `Vocabulary` or the threaded pipeline's `SharedVocabulary`). The
    /// query path takes no lock unless the index epoch moved since this
    /// reader's last request.
    pub fn handle(
        &self,
        reader: &mut IndexReader,
        vocab: &dyn TermLookup,
        req: &PortalRequest,
    ) -> PortalResponse {
        match req {
            PortalRequest::Query { text, opts } => {
                let timer = WallTimer::start();
                let terms = analyze_query_with(|stem| vocab.lookup_term(stem).map(|id| id.0), text);
                let snapshot = reader.snapshot();
                let hits = bingo_search::rank::rank(
                    &self.store,
                    &*snapshot,
                    &terms,
                    &opts.filter,
                    opts.ranking,
                    opts.top_k,
                );
                if let Some(m) = &self.metrics {
                    m.queries.inc();
                    m.query_terms.observe(terms.len() as u64);
                    m.query_hits.observe(hits.len() as u64);
                    timer.observe_us(&m.query_wall_us);
                }
                PortalResponse::Hits {
                    epoch: snapshot.epoch(),
                    hits,
                }
            }
            PortalRequest::TopicBrowse { topic, limit } => {
                let timer = WallTimer::start();
                let mut ids = self.store.topic_documents(*topic);
                ids.sort_unstable();
                let total = ids.len();
                ids.truncate(*limit);
                let entries = ids
                    .into_iter()
                    .filter_map(|id| self.store.document(id))
                    .map(|row| TopicEntry {
                        doc_id: row.id,
                        url: row.url,
                        title: row.title,
                        confidence: row.confidence,
                    })
                    .collect();
                if let Some(m) = &self.metrics {
                    m.browses.inc();
                    timer.observe_us(&m.query_wall_us);
                }
                PortalResponse::Topic { total, entries }
            }
            PortalRequest::Stats => {
                let snapshot = reader.snapshot();
                if let Some(m) = &self.metrics {
                    m.stats.inc();
                }
                PortalResponse::Stats(PortalStats {
                    stored_docs: self.store.document_count(),
                    indexed_docs: bingo_search::TermIndex::doc_count(&*snapshot),
                    terms: snapshot.term_count(),
                    segments: snapshot.segment_count(),
                    epoch: snapshot.epoch(),
                    links: self.store.link_count(),
                    hosts: self.store.host_count(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_obs::Registry;
    use bingo_search::{RankingScheme, TopicFilter};
    use bingo_store::DocumentRow;
    use bingo_textproc::{analyze_html, Vocabulary};
    use std::sync::Arc;

    fn sample_portal() -> (PortalService, Vocabulary, Arc<Registry>) {
        let mut vocab = Vocabulary::new();
        let live = LiveIndex::new(2);
        let store = DocumentStore::new().with_tee(Arc::new(live.clone()));
        let texts: [(u64, Option<u32>, &str); 4] = [
            (1, Some(1), "aries recovery logging checkpoint"),
            (2, Some(1), "recovery transactions rollback undo"),
            (3, Some(2), "football season championship"),
            (4, Some(2), "basketball game recovery stadium"),
        ];
        for (id, topic, text) in texts {
            let doc = analyze_html(&format!("<p>{text}</p>"), &mut vocab);
            store
                .insert_document(DocumentRow {
                    id,
                    url: format!("http://h{id}.example/"),
                    host: id as u32,
                    mime: bingo_textproc::MimeType::Html,
                    depth: 0,
                    title: format!("doc {id}"),
                    topic,
                    confidence: 0.5,
                    term_freqs: doc.term_freqs.iter().map(|&(t, f)| (t.0, f)).collect(),
                    size: text.len(),
                    fetched_at: 0,
                })
                .unwrap();
        }
        live.commit();
        let registry = Arc::new(Registry::new());
        let metrics = ServeMetrics::new(&registry);
        let service = PortalService::new(store, live).with_metrics(metrics);
        (service, vocab, registry)
    }

    #[test]
    fn query_returns_snapshot_tagged_hits() {
        let (service, vocab, registry) = sample_portal();
        let mut reader = service.reader();
        let req = PortalRequest::Query {
            text: "recovery".into(),
            opts: QueryOptions::default(),
        };
        let PortalResponse::Hits { epoch, hits } = service.handle(&mut reader, &vocab, &req) else {
            panic!("expected hits");
        };
        assert!(epoch >= 1);
        assert_eq!(hits.len(), 3, "docs 1, 2 and 4 contain 'recovery'");
        let snap = registry.snapshot();
        assert_eq!(snap.counters["serve.query.count"], 1);
    }

    #[test]
    fn topic_filter_scopes_query() {
        let (service, vocab, _registry) = sample_portal();
        let mut reader = service.reader();
        let req = PortalRequest::Query {
            text: "recovery".into(),
            opts: QueryOptions {
                filter: TopicFilter::Exact(1),
                ranking: RankingScheme::Cosine,
                top_k: 10,
            },
        };
        let PortalResponse::Hits { hits, .. } = service.handle(&mut reader, &vocab, &req) else {
            panic!("expected hits");
        };
        let ids: Vec<u64> = hits.iter().map(|h| h.doc_id).collect();
        assert!(ids.iter().all(|id| [1, 2].contains(id)), "{ids:?}");
    }

    #[test]
    fn topic_browse_lists_in_id_order() {
        let (service, vocab, registry) = sample_portal();
        let mut reader = service.reader();
        let req = PortalRequest::TopicBrowse { topic: 2, limit: 1 };
        let PortalResponse::Topic { total, entries } = service.handle(&mut reader, &vocab, &req)
        else {
            panic!("expected topic listing");
        };
        assert_eq!(total, 2);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].doc_id, 3);
        assert_eq!(registry.snapshot().counters["serve.browse.count"], 1);
    }

    #[test]
    fn stats_report_store_and_index_dimensions() {
        let (service, vocab, _registry) = sample_portal();
        let mut reader = service.reader();
        let PortalResponse::Stats(stats) =
            service.handle(&mut reader, &vocab, &PortalRequest::Stats)
        else {
            panic!("expected stats");
        };
        assert_eq!(stats.stored_docs, 4);
        assert_eq!(stats.indexed_docs, 4);
        assert_eq!(stats.segments, 2, "auto-commit every 2 docs");
        assert_eq!(stats.epoch, 2);
        assert!(stats.terms > 5);
    }

    #[test]
    fn queries_see_new_docs_only_after_commit() {
        let (service, mut vocab, _registry) = sample_portal();
        let mut reader = service.reader();
        let doc = analyze_html("<p>zanzibar recovery</p>", &mut vocab);
        service
            .store()
            .insert_document(DocumentRow {
                id: 99,
                url: "http://new.example/".into(),
                host: 9,
                mime: bingo_textproc::MimeType::Html,
                depth: 0,
                title: "new".into(),
                topic: None,
                confidence: 0.0,
                term_freqs: doc.term_freqs.iter().map(|&(t, f)| (t.0, f)).collect(),
                size: 10,
                fetched_at: 0,
            })
            .unwrap();
        let req = PortalRequest::Query {
            text: "zanzibar".into(),
            opts: QueryOptions::default(),
        };
        let PortalResponse::Hits { hits, .. } = service.handle(&mut reader, &vocab, &req) else {
            panic!()
        };
        assert!(hits.is_empty(), "doc staged but not committed");
        service.index().commit();
        let PortalResponse::Hits { hits, .. } = service.handle(&mut reader, &vocab, &req) else {
            panic!()
        };
        assert_eq!(hits.len(), 1, "visible after the snapshot swap");
        assert_eq!(hits[0].doc_id, 99);
    }
}
