//! Crawl-level snapshot-consistency: a [`LiveIndex`] fed through the
//! store tee by a *real* crawl — interleaved commits, duplicate URLs
//! filtered by the store, documents arriving in crawl order — must
//! answer a fixed query set identically (ids and bit-exact scores) to a
//! batch [`InvertedIndex::build`] over the final store.

use bingo_crawler::{CrawlConfig, Crawler, Judgment, PageContext};
use bingo_search::index::analyze_query_with;
use bingo_search::rank::rank;
use bingo_search::{InvertedIndex, LiveIndex, TermIndex};
use bingo_serve::{PortalRequest, QueryMix};
use bingo_store::DocumentStore;
use bingo_textproc::{AnalyzedDocument, TermLookup, Vocabulary};
use bingo_webworld::gen::WorldConfig;
use bingo_webworld::lexicon;
use std::sync::Arc;

#[test]
fn live_index_matches_batch_rebuild_after_a_real_crawl() {
    let world = Arc::new(WorldConfig::portal(99, 120, 1).build());
    // Small commit batches force many snapshot swaps mid-crawl.
    let live = LiveIndex::new(16);
    let store = DocumentStore::new().with_tee(Arc::new(live.clone()));
    let mut crawler = Crawler::new(world.clone(), CrawlConfig::default(), store);
    for author in &world.authors()[..2] {
        crawler.add_seed(&world.url_of(author.homepage), Some(0));
    }
    let mut judge = |_: &AnalyzedDocument, _: &PageContext| Judgment {
        topic: Some(0),
        confidence: 1.0,
    };
    let mut vocab = Vocabulary::new();
    crawler.run_until(30_000, &mut judge, &mut vocab);
    live.commit(); // publish the trailing partial batch

    let snapshot = live.reader().snapshot();
    let batch = InvertedIndex::build(crawler.store());
    assert!(
        TermIndex::doc_count(&*snapshot) >= 50,
        "crawl stored too few documents to be a meaningful check: {}",
        TermIndex::doc_count(&*snapshot)
    );
    assert!(snapshot.segment_count() > 1, "want several sealed segments");
    assert_eq!(TermIndex::doc_count(&*snapshot), batch.doc_count());

    // Every document norm must agree bit for bit — the doc-major
    // accumulation order is shared by both builders on purpose.
    crawler.store().for_each_document(|row| {
        assert_eq!(
            snapshot.norm(row.id).to_bits(),
            batch.norm(row.id).to_bits(),
            "norm of doc {} diverged",
            row.id
        );
    });

    // A seeded request mix over the crawl's lexicons: each keyword query
    // must return identical hits from both indexes.
    let pools: &[&[&str]] = &[
        lexicon::DATABASE_RESEARCH,
        lexicon::DATA_MINING,
        lexicon::COMMON,
    ];
    let mix = QueryMix::from_lexicons(7, pools, &[0], 48);
    let mut compared = 0u64;
    let mut nonempty = 0u64;
    for i in 0..400 {
        let PortalRequest::Query { text, opts } = mix.request(i) else {
            continue;
        };
        let terms = analyze_query_with(|stem| vocab.lookup_term(stem).map(|id| id.0), &text);
        let incr = rank(
            crawler.store(),
            &*snapshot,
            &terms,
            &opts.filter,
            opts.ranking,
            opts.top_k,
        );
        let full = rank(
            crawler.store(),
            &batch,
            &terms,
            &opts.filter,
            opts.ranking,
            opts.top_k,
        );
        compared += 1;
        nonempty += u64::from(!incr.is_empty());
        assert_eq!(incr.len(), full.len(), "query {i} ({text:?}) hit counts");
        for (a, b) in incr.iter().zip(&full) {
            assert_eq!(a.doc_id, b.doc_id, "query {i} ({text:?}) ordering");
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "query {i} ({text:?}) score of doc {}",
                a.doc_id
            );
        }
    }
    assert!(compared >= 300, "mix produced too few keyword queries");
    assert!(nonempty > 50, "nearly all queries missed: {nonempty}");
}
