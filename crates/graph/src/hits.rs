//! HITS topic distillation with Bharat-Henzinger improvements
//! (Kleinberg, JACM 1999; Bharat & Henzinger, SIGIR 1998).
//!
//! "The actual computation of hub and authority scores is essentially an
//! iterative approximation of the principal Eigenvectors for two matrices
//! derived from the adjacency matrix of the graph" (Section 2.5).
//!
//! The Bharat-Henzinger refinement guards against mutually reinforcing
//! relationships between hosts: when `k` pages on one host all point to
//! the same target, each such edge contributes authority weight `1/k`
//! (and symmetrically `1/m` for hub weight when one page is pointed to by
//! `m` pages of a single host). Purely intra-host edges (self-promotion,
//! navigation bars) are dropped entirely.

use crate::{HostId, LinkSource, PageId};
use bingo_textproc::fxhash::{FxHashMap, FxHashSet};

/// HITS iteration parameters.
#[derive(Debug, Clone, Copy)]
pub struct HitsConfig {
    /// Maximum power iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the L1 change of the score vectors.
    pub epsilon: f64,
    /// Drop edges between pages of the same host (navigation noise).
    pub skip_intra_host: bool,
}

impl Default for HitsConfig {
    fn default() -> Self {
        HitsConfig {
            max_iterations: 50,
            epsilon: 1e-8,
            skip_intra_host: true,
        }
    }
}

/// The HITS computation.
///
/// ```
/// use bingo_graph::{Hits, LinkGraph};
///
/// let mut g = LinkGraph::new();
/// for p in 0..4 { g.add_page(p, p as u32); }
/// g.add_link(0, 3);
/// g.add_link(1, 3);
/// g.add_link(2, 3);
/// let result = Hits::default().run(&g, &[0, 1, 2, 3]);
/// assert_eq!(result.top_authorities(1)[0].0, 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Hits {
    config: HitsConfig,
}

/// Authority and hub scores over the analyzed node set.
#[derive(Debug, Clone)]
pub struct HitsResult {
    /// Node set in the order of the score vectors.
    pub nodes: Vec<PageId>,
    /// Authority score per node (L2-normalized).
    pub authority: Vec<f64>,
    /// Hub score per node (L2-normalized).
    pub hub: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
}

impl HitsResult {
    /// Top-`n` authorities as `(page, score)`, best first.
    pub fn top_authorities(&self, n: usize) -> Vec<(PageId, f64)> {
        top_n(&self.nodes, &self.authority, n)
    }

    /// Top-`n` hubs as `(page, score)`, best first.
    pub fn top_hubs(&self, n: usize) -> Vec<(PageId, f64)> {
        top_n(&self.nodes, &self.hub, n)
    }

    /// Authority score of a specific page (0.0 when outside the node set).
    pub fn authority_of(&self, page: PageId) -> f64 {
        self.nodes
            .iter()
            .position(|&p| p == page)
            .map(|i| self.authority[i])
            .unwrap_or(0.0)
    }
}

fn top_n(nodes: &[PageId], scores: &[f64], n: usize) -> Vec<(PageId, f64)> {
    let mut pairs: Vec<(PageId, f64)> = nodes.iter().copied().zip(scores.iter().copied()).collect();
    pairs.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    pairs.truncate(n);
    pairs
}

/// A weighted edge in the analyzed subgraph.
struct Edge {
    from: usize,
    to: usize,
    /// Bharat-Henzinger authority weight (used when propagating hub → auth).
    auth_weight: f64,
    /// Bharat-Henzinger hub weight (used when propagating auth → hub).
    hub_weight: f64,
}

impl Hits {
    /// HITS with the given configuration.
    pub fn new(config: HitsConfig) -> Self {
        Hits { config }
    }

    /// Run HITS over the subgraph induced by `nodes` (typically the
    /// expanded base set of a topic, see [`crate::expand_base_set`]).
    pub fn run<S: LinkSource + ?Sized>(&self, source: &S, nodes: &[PageId]) -> HitsResult {
        let n = nodes.len();
        let index: FxHashMap<PageId, usize> =
            nodes.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let hosts: Vec<HostId> = nodes.iter().map(|&p| source.host_of(p)).collect();

        // Collect the induced edges.
        let mut raw_edges: Vec<(usize, usize)> = Vec::new();
        for (i, &p) in nodes.iter().enumerate() {
            let mut seen: FxHashSet<usize> = FxHashSet::default();
            for s in source.successors(p) {
                if let Some(&j) = index.get(&s) {
                    if i == j || !seen.insert(j) {
                        continue;
                    }
                    if self.config.skip_intra_host && hosts[i] == hosts[j] {
                        continue;
                    }
                    raw_edges.push((i, j));
                }
            }
        }

        // Bharat-Henzinger weights: count, per target, how many linking
        // pages share a host; per source, how many linked pages share a
        // host.
        let mut in_by_host: FxHashMap<(usize, HostId), u32> = FxHashMap::default();
        let mut out_by_host: FxHashMap<(usize, HostId), u32> = FxHashMap::default();
        for &(i, j) in &raw_edges {
            *in_by_host.entry((j, hosts[i])).or_insert(0) += 1;
            *out_by_host.entry((i, hosts[j])).or_insert(0) += 1;
        }
        let edges: Vec<Edge> = raw_edges
            .into_iter()
            .map(|(i, j)| Edge {
                from: i,
                to: j,
                auth_weight: 1.0 / in_by_host[&(j, hosts[i])] as f64,
                hub_weight: 1.0 / out_by_host[&(i, hosts[j])] as f64,
            })
            .collect();

        // Power iteration.
        let mut authority = vec![1.0f64; n];
        let mut hub = vec![1.0f64; n];
        normalize(&mut authority);
        normalize(&mut hub);
        let mut iterations = 0;
        for it in 0..self.config.max_iterations {
            iterations = it + 1;
            let mut new_auth = vec![0.0f64; n];
            for e in &edges {
                new_auth[e.to] += e.auth_weight * hub[e.from];
            }
            normalize(&mut new_auth);
            let mut new_hub = vec![0.0f64; n];
            for e in &edges {
                new_hub[e.from] += e.hub_weight * new_auth[e.to];
            }
            normalize(&mut new_hub);

            let delta: f64 = authority
                .iter()
                .zip(&new_auth)
                .map(|(a, b)| (a - b).abs())
                .chain(hub.iter().zip(&new_hub).map(|(a, b)| (a - b).abs()))
                .sum();
            authority = new_auth;
            hub = new_hub;
            if delta < self.config.epsilon {
                break;
            }
        }

        HitsResult {
            nodes: nodes.to_vec(),
            authority,
            hub,
            iterations,
        }
    }
}

fn normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkGraph;

    /// A classic hub/authority structure on distinct hosts:
    /// hubs 0,1,2 all point to authorities 10,11; page 20 is isolated.
    fn hub_authority_graph() -> LinkGraph {
        let mut g = LinkGraph::new();
        for p in [0u64, 1, 2] {
            g.add_page(p, p as HostId + 1);
        }
        g.add_page(10, 100);
        g.add_page(11, 101);
        g.add_page(20, 200);
        for h in [0u64, 1, 2] {
            g.add_link(h, 10);
            g.add_link(h, 11);
        }
        g
    }

    #[test]
    fn authorities_and_hubs_separate() {
        let g = hub_authority_graph();
        let nodes: Vec<PageId> = vec![0, 1, 2, 10, 11, 20];
        let res = Hits::default().run(&g, &nodes);
        let top_auth = res.top_authorities(2);
        assert!(top_auth.iter().all(|&(p, _)| p == 10 || p == 11));
        let top_hubs = res.top_hubs(3);
        assert!(top_hubs.iter().all(|&(p, s)| p <= 2 && s > 0.0));
        assert_eq!(res.authority_of(20), 0.0);
    }

    #[test]
    fn intra_host_links_ignored() {
        let mut g = LinkGraph::new();
        // Host 1 contains pages 0..=3; 0,1,2 all "boost" page 3.
        for p in 0..4u64 {
            g.add_page(p, 1);
        }
        for p in 0..3u64 {
            g.add_link(p, 3);
        }
        // A single cross-host link to page 10.
        g.add_page(4, 2);
        g.add_page(10, 3);
        g.add_link(4, 10);
        let nodes: Vec<PageId> = vec![0, 1, 2, 3, 4, 10];
        let res = Hits::default().run(&g, &nodes);
        assert!(
            res.authority_of(10) > res.authority_of(3),
            "cross-host endorsement must beat same-host self-promotion"
        );
    }

    #[test]
    fn bh_weighting_discounts_host_farms() {
        let mut g = LinkGraph::new();
        // Farm: 5 pages on host 1 link to authority 50.
        for p in 0..5u64 {
            g.add_page(p, 1);
        }
        g.add_page(50, 10);
        for p in 0..5u64 {
            g.add_link(p, 50);
        }
        // Organic: 3 pages on 3 distinct hosts link to authority 51.
        for p in 20..23u64 {
            g.add_page(p, p as HostId);
        }
        g.add_page(51, 11);
        for p in 20..23u64 {
            g.add_link(p, 51);
        }
        let nodes: Vec<PageId> = vec![0, 1, 2, 3, 4, 20, 21, 22, 50, 51];
        let res = Hits::new(HitsConfig::default()).run(&g, &nodes);
        assert!(
            res.authority_of(51) > res.authority_of(50),
            "3 independent hosts must outweigh a 5-page single-host farm: {} vs {}",
            res.authority_of(51),
            res.authority_of(50)
        );
    }

    #[test]
    fn empty_node_set() {
        let g = LinkGraph::new();
        let res = Hits::default().run(&g, &[]);
        assert!(res.nodes.is_empty());
        assert!(res.top_authorities(5).is_empty());
    }

    #[test]
    fn converges_quickly_on_small_graph() {
        let g = hub_authority_graph();
        let res = Hits::default().run(&g, &[0, 1, 2, 10, 11, 20]);
        assert!(res.iterations < 50, "took {} iterations", res.iterations);
    }

    #[test]
    fn scores_are_normalized() {
        let g = hub_authority_graph();
        let res = Hits::default().run(&g, &[0, 1, 2, 10, 11, 20]);
        let an: f64 = res.authority.iter().map(|x| x * x).sum();
        let hn: f64 = res.hub.iter().map(|x| x * x).sum();
        assert!((an - 1.0).abs() < 1e-6);
        assert!((hn - 1.0).abs() < 1e-6);
    }
}
