//! Incrementally maintained host-level webgraph.
//!
//! BINGO!'s distiller applies HITS only at retraining time; the
//! "expert web search" vision wants link authority steering the crawl
//! itself. Page-level link analysis during a crawl is hopeless — the
//! frontier needs a score for hosts it has *not fetched yet* — but the
//! host graph is small (thousands of nodes for millions of pages),
//! changes slowly, and a link to any page of a host is evidence for the
//! whole host. This module maintains that graph online:
//!
//! * **Compacted adjacency**: host names are interned to dense `u32`
//!   node ids in first-seen order; out-edges live in per-node hash maps
//!   carrying an edge *multiplicity* (how many page-level links collapse
//!   onto the host pair). Intra-host links are counted but never become
//!   edges — self-endorsement confers no authority (the same reasoning
//!   as Bharat-Henzinger's same-host discount in [`crate::hits`]).
//! * **Incremental PageRank**: [`HostGraph::recompute_pagerank`] runs
//!   the standard power iteration *warm-started* from the previous
//!   stationary vector (new hosts enter at the uniform share, then the
//!   vector is renormalized). PageRank's fixpoint is unique, so the warm
//!   start converges to exactly the same scores as a from-scratch run —
//!   typically in a handful of iterations when only a few edges arrived
//!   since the last recompute. A property test asserts the equivalence
//!   against [`crate::pagerank::pagerank`] over arbitrary edge streams.
//! * **Harmonic centrality** as an alternative authority signal:
//!   exact reverse-BFS accumulation of `Σ 1/d(u,v)`, feasible because
//!   the node set is hosts, not pages.
//!
//! Determinism: every collection is iterated in dense-index order, the
//! snapshot sorts its edge list, and scores are pure `f64` arithmetic
//! over deterministically ordered inputs — two same-seed crawls produce
//! byte-identical graphs, scores and (downstream) frontier orderings.

use crate::pagerank::PageRankConfig;
use crate::{LinkSource, PageId};
use bingo_textproc::fxhash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Dense node id of a host inside a [`HostGraph`].
pub type HostNode = u32;

/// Which centrality the graph reports as host authority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AuthoritySignal {
    /// Warm-started PageRank over distinct host edges (the default).
    #[default]
    PageRank,
    /// Exact harmonic centrality (reverse-BFS `Σ 1/d`).
    Harmonic,
}

/// A host-level webgraph with interned node ids, edge multiplicities and
/// incrementally recomputed authority scores.
#[derive(Debug, Clone, Default)]
pub struct HostGraph {
    /// Interned host names; index = node id (first-seen order).
    names: Vec<String>,
    index: FxHashMap<String, HostNode>,
    /// Out-adjacency with multiplicities: `out[from][to] = count`.
    out: Vec<FxHashMap<HostNode, u32>>,
    /// Reverse adjacency over distinct edges (for harmonic centrality).
    inc: Vec<Vec<HostNode>>,
    /// Last computed authority vector (PageRank or harmonic, per the
    /// caller's recompute choice); indexed by node.
    scores: Vec<f64>,
    /// Maximum of `scores` (cached for O(1) normalization).
    max_score: f64,
    /// Page-level links observed (including intra-host ones).
    links_observed: u64,
    /// Links whose endpoints share a host (counted, not edged).
    intra_host_links: u64,
    /// Distinct inter-host edges.
    edges: usize,
    /// Authority recomputations performed.
    recomputes: u64,
    /// Power iterations of the most recent PageRank recompute.
    last_iterations: usize,
}

/// Serializable state of a [`HostGraph`], sorted for byte-stable
/// checkpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostGraphSnapshot {
    /// Host names in node order.
    pub hosts: Vec<String>,
    /// Distinct edges `(from, to, multiplicity)`, sorted.
    pub edges: Vec<(HostNode, HostNode, u32)>,
    /// Authority scores in node order (empty = never recomputed).
    pub scores: Vec<f64>,
    /// Page-level links observed.
    pub links_observed: u64,
    /// Intra-host links observed.
    pub intra_host_links: u64,
    /// Recomputations performed.
    pub recomputes: u64,
}

impl HostGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `host`, returning its dense node id.
    pub fn intern(&mut self, host: &str) -> HostNode {
        if let Some(&id) = self.index.get(host) {
            return id;
        }
        let id = self.names.len() as HostNode;
        self.names.push(host.to_string());
        self.index.insert(host.to_string(), id);
        self.out.push(FxHashMap::default());
        self.inc.push(Vec::new());
        id
    }

    /// Node id of `host`, if it has been seen.
    pub fn node_of(&self, host: &str) -> Option<HostNode> {
        self.index.get(host).copied()
    }

    /// Host name of a node.
    pub fn name_of(&self, node: HostNode) -> &str {
        &self.names[node as usize]
    }

    /// Record one page-level link between hosts (by name). Returns the
    /// `(from, to)` nodes. Intra-host links are tallied but add no edge.
    pub fn add_link(&mut self, from: &str, to: &str) -> (HostNode, HostNode) {
        let f = self.intern(from);
        let t = self.intern(to);
        self.add_link_nodes(f, t);
        (f, t)
    }

    /// [`HostGraph::add_link`] over already-interned nodes.
    pub fn add_link_nodes(&mut self, from: HostNode, to: HostNode) {
        self.links_observed += 1;
        if from == to {
            self.intra_host_links += 1;
            return;
        }
        let mult = self.out[from as usize].entry(to).or_insert(0);
        if *mult == 0 {
            self.edges += 1;
            self.inc[to as usize].push(from);
        }
        *mult += 1;
    }

    /// Number of interned hosts.
    pub fn host_count(&self) -> usize {
        self.names.len()
    }

    /// Number of distinct inter-host edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Page-level links observed (including intra-host).
    pub fn links_observed(&self) -> u64 {
        self.links_observed
    }

    /// Links whose endpoints share a host.
    pub fn intra_host_links(&self) -> u64 {
        self.intra_host_links
    }

    /// Authority recomputations performed so far.
    pub fn recomputes(&self) -> u64 {
        self.recomputes
    }

    /// Power iterations of the most recent PageRank recompute.
    pub fn last_iterations(&self) -> usize {
        self.last_iterations
    }

    /// Multiplicity of the `from → to` edge (0 when absent).
    pub fn multiplicity(&self, from: HostNode, to: HostNode) -> u32 {
        self.out
            .get(from as usize)
            .and_then(|m| m.get(&to).copied())
            .unwrap_or(0)
    }

    /// Recompute PageRank over the current host set, warm-started from
    /// the previous score vector: existing hosts keep their mass, new
    /// hosts enter at the uniform share, and the vector is renormalized
    /// before iterating. Returns the number of power iterations (0 on an
    /// empty graph). Because the PageRank fixpoint is unique, the result
    /// matches a from-scratch computation to within `config.epsilon`.
    pub fn recompute_pagerank(&mut self, config: PageRankConfig) -> usize {
        let n = self.names.len();
        if n == 0 {
            self.scores.clear();
            self.max_score = 0.0;
            self.recomputes += 1;
            self.last_iterations = 0;
            return 0;
        }
        let uniform = 1.0 / n as f64;
        let mut scores = std::mem::take(&mut self.scores);
        scores.resize(n, uniform);
        let total: f64 = scores.iter().sum();
        if total > 0.0 {
            for s in scores.iter_mut() {
                *s /= total;
            }
        } else {
            scores.fill(uniform);
        }

        // Distinct out-targets per node, in sorted order so share
        // accumulation is deterministic.
        let out: Vec<Vec<usize>> = self
            .out
            .iter()
            .map(|targets| {
                let mut t: Vec<usize> = targets.keys().map(|&n| n as usize).collect();
                t.sort_unstable();
                t
            })
            .collect();

        let mut iterations = 0;
        for it in 0..config.max_iterations {
            iterations = it + 1;
            let mut next = vec![(1.0 - config.damping) * uniform; n];
            let mut dangling_mass = 0.0;
            for (i, targets) in out.iter().enumerate() {
                if targets.is_empty() {
                    dangling_mass += scores[i];
                } else {
                    let share = config.damping * scores[i] / targets.len() as f64;
                    for &t in targets {
                        next[t] += share;
                    }
                }
            }
            let dangling_share = config.damping * dangling_mass * uniform;
            for v in next.iter_mut() {
                *v += dangling_share;
            }
            let delta: f64 = scores.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            scores = next;
            if delta < config.epsilon {
                break;
            }
        }
        self.max_score = scores.iter().copied().fold(0.0, f64::max);
        self.scores = scores;
        self.recomputes += 1;
        self.last_iterations = iterations;
        iterations
    }

    /// Recompute exact harmonic centrality: for every node `v`,
    /// `Σ_{u → v reachable} 1 / d(u, v)` over distinct-edge BFS
    /// distances. O(V·(V+E)) — feasible because nodes are hosts.
    pub fn recompute_harmonic(&mut self) {
        let n = self.names.len();
        let mut scores = vec![0.0f64; n];
        let mut dist: Vec<u32> = vec![u32::MAX; n];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for v in 0..n {
            // Reverse BFS from v over `inc`: distances d(u, v).
            dist.fill(u32::MAX);
            dist[v] = 0;
            queue.clear();
            queue.push_back(v);
            let mut sum = 0.0;
            while let Some(u) = queue.pop_front() {
                let d = dist[u];
                if d > 0 {
                    sum += 1.0 / d as f64;
                }
                for &p in &self.inc[u] {
                    let p = p as usize;
                    if dist[p] == u32::MAX {
                        dist[p] = d + 1;
                        queue.push_back(p);
                    }
                }
            }
            scores[v] = sum;
        }
        self.max_score = scores.iter().copied().fold(0.0, f64::max);
        self.scores = scores;
        self.recomputes += 1;
        self.last_iterations = 0;
    }

    /// Recompute the configured signal.
    pub fn recompute(&mut self, signal: AuthoritySignal, config: PageRankConfig) -> usize {
        match signal {
            AuthoritySignal::PageRank => self.recompute_pagerank(config),
            AuthoritySignal::Harmonic => {
                self.recompute_harmonic();
                0
            }
        }
    }

    /// Raw score of a node (0 before the first recompute or for nodes
    /// interned since it).
    pub fn score(&self, node: HostNode) -> f64 {
        self.scores.get(node as usize).copied().unwrap_or(0.0)
    }

    /// Authority of a node normalized to `[0, 1]` by the current maximum
    /// score (0 when nothing has been recomputed yet).
    pub fn authority(&self, node: HostNode) -> f64 {
        if self.max_score <= 0.0 {
            return 0.0;
        }
        self.score(node) / self.max_score
    }

    /// Normalized authority of a host by name (0 for unknown hosts).
    pub fn authority_of(&self, host: &str) -> f64 {
        self.node_of(host).map_or(0.0, |n| self.authority(n))
    }

    /// Top-`n` hosts by score, best first (ties broken by node id).
    pub fn top(&self, n: usize) -> Vec<(&str, f64)> {
        let mut pairs: Vec<(usize, f64)> = self.scores.iter().copied().enumerate().collect();
        pairs.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        pairs
            .into_iter()
            .take(n)
            .map(|(i, s)| (self.names[i].as_str(), s))
            .collect()
    }

    /// Serializable, byte-stable state.
    pub fn snapshot(&self) -> HostGraphSnapshot {
        let mut edges: Vec<(HostNode, HostNode, u32)> = Vec::with_capacity(self.edges);
        for (from, targets) in self.out.iter().enumerate() {
            for (&to, &mult) in targets {
                edges.push((from as HostNode, to, mult));
            }
        }
        edges.sort_unstable();
        HostGraphSnapshot {
            hosts: self.names.clone(),
            edges,
            scores: self.scores.clone(),
            links_observed: self.links_observed,
            intra_host_links: self.intra_host_links,
            recomputes: self.recomputes,
        }
    }

    /// Rebuild a graph from a snapshot.
    pub fn restore(snap: HostGraphSnapshot) -> Self {
        let n = snap.hosts.len();
        let index = snap
            .hosts
            .iter()
            .enumerate()
            .map(|(i, h)| (h.clone(), i as HostNode))
            .collect();
        let mut out: Vec<FxHashMap<HostNode, u32>> = vec![FxHashMap::default(); n];
        let mut inc: Vec<Vec<HostNode>> = vec![Vec::new(); n];
        let mut edges = 0;
        for &(from, to, mult) in &snap.edges {
            out[from as usize].insert(to, mult);
            inc[to as usize].push(from);
            edges += 1;
        }
        let max_score = snap.scores.iter().copied().fold(0.0, f64::max);
        HostGraph {
            names: snap.hosts,
            index,
            out,
            inc,
            scores: snap.scores,
            max_score,
            links_observed: snap.links_observed,
            intra_host_links: snap.intra_host_links,
            edges,
            recomputes: snap.recomputes,
            last_iterations: 0,
        }
    }
}

/// The host graph *is* a link graph over `PageId = node id`, so the
/// from-scratch analyses ([`crate::pagerank::pagerank`], HITS) run on it
/// directly — the incremental-vs-scratch property tests rely on this.
impl LinkSource for HostGraph {
    fn successors(&self, page: PageId) -> Vec<PageId> {
        match self.out.get(page as usize) {
            Some(targets) => {
                let mut t: Vec<PageId> = targets.keys().map(|&n| n as PageId).collect();
                t.sort_unstable();
                t
            }
            None => Vec::new(),
        }
    }

    fn predecessors(&self, page: PageId) -> Vec<PageId> {
        match self.inc.get(page as usize) {
            Some(sources) => {
                let mut s: Vec<PageId> = sources.iter().map(|&n| n as PageId).collect();
                s.sort_unstable();
                s
            }
            None => Vec::new(),
        }
    }

    fn host_of(&self, page: PageId) -> crate::HostId {
        page as crate::HostId
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::pagerank;

    fn diamond() -> HostGraph {
        // a → b, a → c, b → d, c → d, plus repeated a → b.
        let mut g = HostGraph::new();
        g.add_link("a", "b");
        g.add_link("a", "b");
        g.add_link("a", "c");
        g.add_link("b", "d");
        g.add_link("c", "d");
        g
    }

    #[test]
    fn interning_is_first_seen_order() {
        let g = diamond();
        assert_eq!(g.host_count(), 4);
        assert_eq!(g.node_of("a"), Some(0));
        assert_eq!(g.node_of("d"), Some(3));
        assert_eq!(g.name_of(2), "c");
        assert_eq!(g.node_of("zzz"), None);
    }

    #[test]
    fn multiplicities_and_intra_host_links() {
        let mut g = diamond();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.links_observed(), 5);
        assert_eq!(g.multiplicity(0, 1), 2, "repeated a→b collapses");
        assert_eq!(g.multiplicity(0, 2), 1);
        g.add_link("a", "a");
        assert_eq!(g.intra_host_links(), 1);
        assert_eq!(g.edge_count(), 4, "self link adds no edge");
    }

    #[test]
    fn pagerank_ranks_the_sink_first() {
        let mut g = diamond();
        let iters = g.recompute_pagerank(PageRankConfig::default());
        assert!(iters > 0);
        assert_eq!(g.recomputes(), 1);
        let top = g.top(1);
        assert_eq!(top[0].0, "d", "the diamond sink must rank first");
        assert!((g.authority(g.node_of("d").unwrap()) - 1.0).abs() < 1e-12);
        assert!(g.authority_of("a") < 1.0);
        assert_eq!(g.authority_of("unknown"), 0.0);
        let sum: f64 = (0..4).map(|n| g.score(n)).sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn warm_start_matches_scratch_pagerank() {
        let mut g = HostGraph::new();
        let hosts = ["h0", "h1", "h2", "h3", "h4", "h5"];
        let links = [
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 2),
            (4, 2),
            (5, 4),
            (0, 5),
            (1, 5),
        ];
        for (i, &(f, t)) in links.iter().enumerate() {
            g.add_link(hosts[f], hosts[t]);
            // Recompute mid-stream to exercise warm starts over a
            // growing node set.
            if i % 3 == 0 {
                g.recompute_pagerank(PageRankConfig::default());
            }
        }
        g.recompute_pagerank(PageRankConfig::default());
        let nodes: Vec<PageId> = (0..g.host_count() as PageId).collect();
        let scratch = pagerank(&g, &nodes, PageRankConfig::default());
        for (n, &s) in nodes.iter().zip(&scratch.scores) {
            assert!(
                (g.score(*n as HostNode) - s).abs() < 1e-6,
                "node {n}: warm {} vs scratch {s}",
                g.score(*n as HostNode)
            );
        }
    }

    #[test]
    fn harmonic_centrality_of_a_chain() {
        let mut g = HostGraph::new();
        g.add_link("a", "b");
        g.add_link("b", "c");
        g.recompute_harmonic();
        // c is reached from b (d=1) and a (d=2): 1 + 1/2.
        assert!((g.score(g.node_of("c").unwrap()) - 1.5).abs() < 1e-12);
        assert!((g.score(g.node_of("b").unwrap()) - 1.0).abs() < 1e-12);
        assert_eq!(g.score(g.node_of("a").unwrap()), 0.0);
        assert!((g.authority_of("c") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_round_trips_and_is_sorted() {
        let mut g = diamond();
        g.recompute_pagerank(PageRankConfig::default());
        let snap = g.snapshot();
        let mut sorted = snap.edges.clone();
        sorted.sort_unstable();
        assert_eq!(snap.edges, sorted, "edge list must be sorted");
        let r = HostGraph::restore(snap.clone());
        assert_eq!(r.host_count(), g.host_count());
        assert_eq!(r.edge_count(), g.edge_count());
        assert_eq!(r.links_observed(), g.links_observed());
        assert_eq!(r.multiplicity(0, 1), 2);
        assert_eq!(r.snapshot(), snap, "restore → snapshot is identity");
        // Scores and normalization survive.
        assert_eq!(r.authority_of("d"), g.authority_of("d"));
        // Two snapshots of identical state are byte-identical.
        let a = serde_json::to_string(&snap).unwrap();
        let b = serde_json::to_string(&g.snapshot()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph_recomputes_cleanly() {
        let mut g = HostGraph::new();
        assert_eq!(g.recompute_pagerank(PageRankConfig::default()), 0);
        g.recompute_harmonic();
        assert_eq!(g.authority_of("x"), 0.0);
        assert!(g.top(3).is_empty());
    }
}
