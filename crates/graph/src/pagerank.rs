//! PageRank (Brin & Page, WWW 1998 — the paper's reference 5).
//!
//! BINGO!'s own distiller is HITS, but the paper frames authority-based
//! ranking with both classics; the local search engine exposes PageRank
//! as an alternative global authority metric for result postprocessing
//! (an extension beyond the paper's HITS-only postprocessor, documented
//! as such in DESIGN.md).

use crate::{LinkSource, PageId};
use bingo_textproc::fxhash::FxHashMap;

/// PageRank parameters.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor (classic: 0.85).
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iterations: usize,
    /// L1 convergence threshold.
    pub epsilon: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            max_iterations: 60,
            epsilon: 1e-9,
        }
    }
}

/// PageRank scores over a node set.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// Node set in score-vector order.
    pub nodes: Vec<PageId>,
    /// Score per node; sums to 1 over the set.
    pub scores: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
}

impl PageRankResult {
    /// Score of a page (0 outside the analyzed set).
    pub fn score_of(&self, page: PageId) -> f64 {
        self.nodes
            .iter()
            .position(|&p| p == page)
            .map(|i| self.scores[i])
            .unwrap_or(0.0)
    }

    /// Top-`n` pages by score, best first.
    pub fn top(&self, n: usize) -> Vec<(PageId, f64)> {
        let mut pairs: Vec<(PageId, f64)> = self
            .nodes
            .iter()
            .copied()
            .zip(self.scores.iter().copied())
            .collect();
        pairs.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        pairs.truncate(n);
        pairs
    }
}

/// Compute PageRank over the subgraph induced by `nodes`. Dangling nodes
/// (no out-links within the set) distribute their mass uniformly.
pub fn pagerank<S: LinkSource + ?Sized>(
    source: &S,
    nodes: &[PageId],
    config: PageRankConfig,
) -> PageRankResult {
    let n = nodes.len();
    if n == 0 {
        return PageRankResult {
            nodes: Vec::new(),
            scores: Vec::new(),
            iterations: 0,
        };
    }
    let index: FxHashMap<PageId, usize> = nodes.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    // Induced adjacency (deduplicated).
    let out: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&p| {
            let mut targets: Vec<usize> = source
                .successors(p)
                .into_iter()
                .filter_map(|s| index.get(&s).copied())
                .collect();
            targets.sort_unstable();
            targets.dedup();
            targets
        })
        .collect();

    let uniform = 1.0 / n as f64;
    let mut scores = vec![uniform; n];
    let mut iterations = 0;
    for it in 0..config.max_iterations {
        iterations = it + 1;
        let mut next = vec![(1.0 - config.damping) * uniform; n];
        let mut dangling_mass = 0.0;
        for (i, targets) in out.iter().enumerate() {
            if targets.is_empty() {
                dangling_mass += scores[i];
            } else {
                let share = config.damping * scores[i] / targets.len() as f64;
                for &t in targets {
                    next[t] += share;
                }
            }
        }
        let dangling_share = config.damping * dangling_mass * uniform;
        for v in next.iter_mut() {
            *v += dangling_share;
        }
        let delta: f64 = scores.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        scores = next;
        if delta < config.epsilon {
            break;
        }
    }

    PageRankResult {
        nodes: nodes.to_vec(),
        scores,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkGraph;

    fn star_graph() -> LinkGraph {
        // Pages 1..=4 all link to 0; 0 links to 1.
        let mut g = LinkGraph::new();
        for p in 0..5 {
            g.add_page(p, p as u32);
        }
        for p in 1..5 {
            g.add_link(p, 0);
        }
        g.add_link(0, 1);
        g
    }

    #[test]
    fn scores_sum_to_one_and_hub_wins() {
        let g = star_graph();
        let nodes: Vec<PageId> = (0..5).collect();
        let r = pagerank(&g, &nodes, PageRankConfig::default());
        let sum: f64 = r.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        let top = r.top(1);
        assert_eq!(top[0].0, 0, "the link sink must rank first");
        // Page 1 receives 0's endorsement, beating 2..4.
        assert!(r.score_of(1) > r.score_of(2));
    }

    #[test]
    fn dangling_nodes_handled() {
        let mut g = LinkGraph::new();
        for p in 0..3 {
            g.add_page(p, p as u32);
        }
        g.add_link(0, 1);
        g.add_link(1, 2);
        // 2 is dangling.
        let r = pagerank(&g, &[0, 1, 2], PageRankConfig::default());
        let sum: f64 = r.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(r.scores.iter().all(|&s| s > 0.0));
        assert!(r.score_of(2) > r.score_of(0), "chain end accumulates rank");
    }

    #[test]
    fn empty_set() {
        let g = LinkGraph::new();
        let r = pagerank(&g, &[], PageRankConfig::default());
        assert!(r.nodes.is_empty());
        assert_eq!(r.score_of(7), 0.0);
    }

    #[test]
    fn converges_on_cycle() {
        let mut g = LinkGraph::new();
        for p in 0..4 {
            g.add_page(p, p as u32);
        }
        for p in 0..4u64 {
            g.add_link(p, (p + 1) % 4);
        }
        let r = pagerank(&g, &[0, 1, 2, 3], PageRankConfig::default());
        // Symmetric cycle: uniform scores.
        for &s in &r.scores {
            assert!((s - 0.25).abs() < 1e-6);
        }
        assert!(r.iterations < 60);
    }
}
