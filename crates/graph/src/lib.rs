//! Link analysis substrate (Section 2.5).
//!
//! BINGO! applies the Bharat-Henzinger variant of Kleinberg's HITS
//! algorithm to each topic upon retraining, identifying a set of
//! *authorities* (pages with the most significant content on the topic,
//! candidates for archetype promotion) and *hubs* (the best link
//! collections, prioritized for crawling next).
//!
//! The node set is built in two steps: (1) all documents positively
//! classified into the topic — the *base set*; (2) all successors plus a
//! bounded set of predecessors obtained from a large unfocused web
//! database (here: any [`LinkSource`], e.g. the crawler's link table or
//! the web simulator).

pub mod hits;
pub mod hostgraph;
pub mod pagerank;

pub use hits::{Hits, HitsConfig, HitsResult};
pub use hostgraph::{AuthoritySignal, HostGraph, HostGraphSnapshot, HostNode};
pub use pagerank::{pagerank, PageRankConfig, PageRankResult};

use bingo_textproc::fxhash::{FxHashMap, FxHashSet};

/// Identifier of a page in the web graph. The webworld, the store and the
/// crawler all share this id space.
pub type PageId = u64;

/// Identifier of a host (site). Used by the Bharat-Henzinger edge
/// weighting to discount mutually reinforcing same-host link farms.
pub type HostId = u32;

/// Read access to (a fragment of) the hyperlink-induced web graph.
///
/// Implemented by the crawler's link database and by the web simulator
/// (which plays the role of the paper's "large unfocused Web database that
/// internally maintains a large fraction of the full Web graph").
pub trait LinkSource {
    /// Pages this page links to.
    fn successors(&self, page: PageId) -> Vec<PageId>;
    /// Pages linking to this page.
    fn predecessors(&self, page: PageId) -> Vec<PageId>;
    /// The host a page lives on.
    fn host_of(&self, page: PageId) -> HostId;
}

/// An in-memory directed link graph, the standard [`LinkSource`]
/// implementation used for a topic's crawl results.
#[derive(Debug, Default, Clone)]
pub struct LinkGraph {
    out: FxHashMap<PageId, Vec<PageId>>,
    inc: FxHashMap<PageId, Vec<PageId>>,
    hosts: FxHashMap<PageId, HostId>,
}

impl LinkGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a page with its host. Idempotent.
    pub fn add_page(&mut self, page: PageId, host: HostId) {
        self.hosts.entry(page).or_insert(host);
        self.out.entry(page).or_default();
        self.inc.entry(page).or_default();
    }

    /// Add a directed edge; both endpoints must have been added. Parallel
    /// edges are collapsed.
    pub fn add_link(&mut self, from: PageId, to: PageId) {
        debug_assert!(self.hosts.contains_key(&from) && self.hosts.contains_key(&to));
        let out = self.out.entry(from).or_default();
        if !out.contains(&to) {
            out.push(to);
            self.inc.entry(to).or_default().push(from);
        }
    }

    /// Number of registered pages.
    pub fn page_count(&self) -> usize {
        self.hosts.len()
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.out.values().map(Vec::len).sum()
    }

    /// True when the page is known to the graph.
    pub fn contains(&self, page: PageId) -> bool {
        self.hosts.contains_key(&page)
    }

    /// All registered pages.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.hosts.keys().copied()
    }
}

impl LinkSource for LinkGraph {
    fn successors(&self, page: PageId) -> Vec<PageId> {
        self.out.get(&page).cloned().unwrap_or_default()
    }

    fn predecessors(&self, page: PageId) -> Vec<PageId> {
        self.inc.get(&page).cloned().unwrap_or_default()
    }

    fn host_of(&self, page: PageId) -> HostId {
        self.hosts.get(&page).copied().unwrap_or(0)
    }
}

/// Build the HITS node set from a base set: the base pages, all their
/// successors, and up to `max_predecessors` predecessors per base page
/// (Section 2.5, step 2).
pub fn expand_base_set<S: LinkSource + ?Sized>(
    source: &S,
    base: &[PageId],
    max_predecessors: usize,
) -> Vec<PageId> {
    let mut set: FxHashSet<PageId> = base.iter().copied().collect();
    for &p in base {
        for s in source.successors(p) {
            set.insert(s);
        }
        for q in source.predecessors(p).into_iter().take(max_predecessors) {
            set.insert(q);
        }
    }
    let mut nodes: Vec<PageId> = set.into_iter().collect();
    nodes.sort_unstable();
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> LinkGraph {
        let mut g = LinkGraph::new();
        for p in 0..5 {
            g.add_page(p, (p % 2) as HostId);
        }
        g.add_link(0, 1);
        g.add_link(1, 2);
        g.add_link(2, 3);
        g.add_link(3, 4);
        g
    }

    #[test]
    fn add_and_query() {
        let g = chain();
        assert_eq!(g.page_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.successors(1), vec![2]);
        assert_eq!(g.predecessors(2), vec![1]);
        assert_eq!(g.host_of(3), 1);
        assert!(g.contains(0));
        assert!(!g.contains(99));
    }

    #[test]
    fn parallel_edges_collapse() {
        let mut g = chain();
        g.add_link(0, 1);
        g.add_link(0, 1);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.predecessors(1), vec![0]);
    }

    #[test]
    fn expand_includes_successors_and_bounded_predecessors() {
        let mut g = LinkGraph::new();
        for p in 0..10 {
            g.add_page(p, 0);
        }
        // Node 5 is the base; 6 is its successor; 0..5 all link to 5.
        g.add_link(5, 6);
        for p in 0..5 {
            g.add_link(p, 5);
        }
        let expanded = expand_base_set(&g, &[5], 2);
        assert!(expanded.contains(&5));
        assert!(expanded.contains(&6));
        // Exactly 2 predecessors admitted.
        let preds = expanded.iter().filter(|&&p| p < 5).count();
        assert_eq!(preds, 2);
    }

    #[test]
    fn expand_deduplicates() {
        let g = chain();
        let expanded = expand_base_set(&g, &[1, 2], 10);
        let mut sorted = expanded.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), expanded.len());
        // 1,2 base; successors 2,3; predecessors 0,1.
        assert_eq!(expanded, vec![0, 1, 2, 3]);
    }
}
