//! Property-based tests of the incremental host graph: PageRank
//! maintained across an arbitrary stream of link insertions (with
//! recomputes interleaved at arbitrary points) must converge to the same
//! ranking as a from-scratch PageRank over the final graph.

use bingo_graph::{pagerank, HostGraph, HostNode, PageId, PageRankConfig};
use proptest::prelude::*;

/// A stream of host-pair link insertions over a small host universe.
/// Small ids force collisions: multiplicities, self-links and dense
/// subgraphs all occur.
fn link_stream() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0u8..10, 0u8..10), 1..80)
}

proptest! {
    /// Feeding links one at a time with warm-started recomputes at an
    /// arbitrary cadence ends at the same scores (within epsilon) as
    /// one from-scratch PageRank over the final graph.
    #[test]
    fn incremental_pagerank_matches_scratch(
        links in link_stream(),
        cadence in 1usize..7,
    ) {
        // Iterate to true epsilon convergence: the default cap of 60
        // iterations can stop ~1e-4 short of the fixpoint, and the warm
        // and cold starts would stop at *different* near-fixpoint
        // points. With the cap lifted, the fixpoint is unique and both
        // paths land on it.
        let cfg = PageRankConfig {
            max_iterations: 400,
            epsilon: 1e-12,
            ..PageRankConfig::default()
        };
        let mut g = HostGraph::new();
        for (i, &(f, t)) in links.iter().enumerate() {
            g.add_link(&format!("host{f}.net"), &format!("host{t}.net"));
            if i % cadence == 0 {
                // Warm-started incremental recompute mid-stream.
                g.recompute_pagerank(cfg);
            }
        }
        g.recompute_pagerank(cfg);

        // From-scratch PageRank over the final graph, via the
        // LinkSource impl (node index = page id).
        let nodes: Vec<PageId> = (0..g.host_count() as PageId).collect();
        let scratch = pagerank(&g, &nodes, cfg);
        for (n, &s) in nodes.iter().zip(&scratch.scores) {
            let warm = g.score(*n as HostNode);
            prop_assert!(
                (warm - s).abs() < 1e-6,
                "node {}: warm {} vs scratch {}", n, warm, s
            );
        }
    }

    /// The same stream replayed through snapshot/restore at an arbitrary
    /// cut point yields a byte-identical final snapshot — the property
    /// the crawler's checkpoint/resume machinery relies on.
    #[test]
    fn snapshot_restore_replays_identically(
        links in link_stream(),
        cut_frac in 0.0f64..1.0,
        cadence in 1usize..7,
    ) {
        let cfg = PageRankConfig::default();
        let cut = ((links.len() as f64) * cut_frac) as usize;

        let mut uninterrupted = HostGraph::new();
        let mut first_half = HostGraph::new();
        for (i, &(f, t)) in links.iter().enumerate() {
            uninterrupted.add_link(&format!("h{f}"), &format!("h{t}"));
            if i % cadence == 0 {
                uninterrupted.recompute_pagerank(cfg);
            }
            if i < cut {
                first_half.add_link(&format!("h{f}"), &format!("h{t}"));
                if i % cadence == 0 {
                    first_half.recompute_pagerank(cfg);
                }
            }
        }

        // Checkpoint at the cut, restore, replay the tail.
        let mut resumed = HostGraph::restore(first_half.snapshot());
        for (i, &(f, t)) in links.iter().enumerate().skip(cut) {
            resumed.add_link(&format!("h{f}"), &format!("h{t}"));
            if i % cadence == 0 {
                resumed.recompute_pagerank(cfg);
            }
        }

        let a = serde_json::to_string(&uninterrupted.snapshot()).unwrap();
        let b = serde_json::to_string(&resumed.snapshot()).unwrap();
        prop_assert_eq!(a, b);
    }
}
