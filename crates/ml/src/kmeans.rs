//! K-means clustering for result postprocessing (Section 3.6).
//!
//! "BINGO! can perform a cluster analysis on the results of one class and
//! suggest creating new subclasses with tentative labels automatically
//! drawn from the most characteristic terms of these subclasses. The user
//! can experiment with different numbers of clusters, or BINGO! can choose
//! the number of clusters such that an entropy-based cluster impurity
//! measure is minimized [Duda/Hart/Stork]."
//!
//! Documents are unit-normalized `tf*idf` vectors; assignment maximizes
//! cosine similarity (spherical k-means). The impurity of a clustering is
//! the size-weighted average entropy of the clusters' term distributions —
//! tight, topically coherent clusters concentrate probability mass on few
//! terms and thus have low entropy. A per-cluster penalty discourages
//! degenerate solutions with as many clusters as documents.

use bingo_textproc::fxhash::FxHashMap;
use bingo_textproc::SparseVector;

/// Configuration for one k-means run.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Seed for the deterministic initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 2,
            max_iterations: 50,
            seed: 42,
        }
    }
}

/// Spherical k-means runner.
///
/// ```
/// use bingo_ml::kmeans::{KMeans, KMeansConfig};
/// use bingo_textproc::SparseVector;
///
/// let docs: Vec<SparseVector> = (0..8)
///     .map(|i| {
///         let f = if i % 2 == 0 { 0 } else { 10 };
///         SparseVector::from_pairs(vec![(f, 1.0)]).normalized()
///     })
///     .collect();
/// let result = KMeans::new(KMeansConfig { k: 2, ..Default::default() })
///     .run(&docs)
///     .unwrap();
/// assert_ne!(result.assignments[0], result.assignments[1]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct KMeans {
    config: KMeansConfig,
}

/// The outcome of a clustering run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index per input document.
    pub assignments: Vec<usize>,
    /// Unit-normalized cluster centroids.
    pub centroids: Vec<SparseVector>,
    /// Entropy-based impurity of this clustering (lower is better).
    pub impurity: f64,
}

impl KMeansResult {
    /// Documents per cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// The `top_n` most characteristic feature indices of a cluster — the
    /// tentative subclass label of Section 3.6.
    pub fn label_features(&self, cluster: usize, top_n: usize) -> Vec<u32> {
        let mut entries: Vec<(u32, f32)> = self.centroids[cluster].entries().to_vec();
        entries.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        entries.into_iter().take(top_n).map(|(f, _)| f).collect()
    }
}

impl KMeans {
    /// Runner with the given configuration.
    pub fn new(config: KMeansConfig) -> Self {
        KMeans { config }
    }

    /// Cluster `docs` (ideally unit-normalized). Returns `None` when there
    /// are fewer documents than clusters or `k == 0`.
    pub fn run(&self, docs: &[SparseVector]) -> Option<KMeansResult> {
        let k = self.config.k;
        if k == 0 || docs.len() < k {
            return None;
        }

        // Deterministic farthest-point-flavoured init: first centroid by
        // seed, then repeatedly take the document least similar to the
        // centroids chosen so far (k-means++ without randomness).
        let mut centroids: Vec<SparseVector> = Vec::with_capacity(k);
        let first = (self.config.seed as usize) % docs.len();
        centroids.push(docs[first].normalized());
        while centroids.len() < k {
            let next = docs
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    let best: f32 = centroids
                        .iter()
                        .map(|c| c.cosine(d))
                        .fold(f32::NEG_INFINITY, f32::max);
                    (i, best)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)?;
            centroids.push(docs[next].normalized());
        }

        let mut assignments = vec![0usize; docs.len()];
        for _ in 0..self.config.max_iterations {
            let mut changed = false;
            for (i, d) in docs.iter().enumerate() {
                let best = centroids
                    .iter()
                    .enumerate()
                    .map(|(c, cen)| (c, cen.cosine(d)))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(c, _)| c)
                    .unwrap_or(0);
                if assignments[i] != best {
                    assignments[i] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            // Recompute centroids as normalized mean directions.
            let mut sums: Vec<FxHashMap<u32, f32>> = vec![FxHashMap::default(); k];
            for (i, d) in docs.iter().enumerate() {
                let m = &mut sums[assignments[i]];
                for &(f, w) in d.entries() {
                    *m.entry(f).or_insert(0.0) += w;
                }
            }
            for (c, m) in sums.into_iter().enumerate() {
                if m.is_empty() {
                    continue; // keep the old centroid for an empty cluster
                }
                centroids[c] = SparseVector::from_pairs(m.into_iter().collect()).normalized();
            }
        }

        let impurity = impurity(docs, &assignments, k);
        Some(KMeansResult {
            assignments,
            centroids,
            impurity,
        })
    }
}

/// Size-weighted average entropy of the clusters' term distributions.
fn impurity(docs: &[SparseVector], assignments: &[usize], k: usize) -> f64 {
    let mut total = 0.0f64;
    let n = docs.len() as f64;
    for c in 0..k {
        let members: Vec<&SparseVector> = docs
            .iter()
            .zip(assignments)
            .filter(|(_, &a)| a == c)
            .map(|(d, _)| d)
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut mass: FxHashMap<u32, f64> = FxHashMap::default();
        let mut sum = 0.0f64;
        for d in &members {
            for &(f, w) in d.entries() {
                let w = w.abs() as f64;
                *mass.entry(f).or_insert(0.0) += w;
                sum += w;
            }
        }
        if sum == 0.0 {
            continue;
        }
        let h: f64 = mass
            .values()
            .map(|&m| {
                let p = m / sum;
                -p * p.ln()
            })
            .sum();
        total += (members.len() as f64 / n) * h;
    }
    total
}

/// Choose the number of clusters in `k_range` minimizing
/// `impurity + penalty_per_cluster * k` (Section 3.6's automatic choice).
/// Returns the best clustering, or `None` when no k in range is feasible.
pub fn choose_k_by_impurity(
    docs: &[SparseVector],
    k_range: std::ops::RangeInclusive<usize>,
    penalty_per_cluster: f64,
    seed: u64,
) -> Option<(usize, KMeansResult)> {
    let mut best: Option<(usize, KMeansResult)> = None;
    for k in k_range {
        let Some(res) = KMeans::new(KMeansConfig {
            k,
            seed,
            ..Default::default()
        })
        .run(docs) else {
            continue;
        };
        let cost = res.impurity + penalty_per_cluster * k as f64;
        let better = match &best {
            None => true,
            Some((bk, bres)) => cost < bres.impurity + penalty_per_cluster * *bk as f64,
        };
        if better {
            best = Some((k, res));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec()).normalized()
    }

    /// Two clean topical groups: features 0-2 vs features 10-12.
    fn two_topics() -> Vec<SparseVector> {
        let mut docs = Vec::new();
        for i in 0..8 {
            let jitter = 0.1 * (i % 4) as f32;
            docs.push(v(&[(0, 1.0), (1, 0.8 + jitter), (2, 0.5)]));
            docs.push(v(&[(10, 1.0), (11, 0.8 + jitter), (12, 0.5)]));
        }
        docs
    }

    #[test]
    fn separates_two_topics() {
        let docs = two_topics();
        let res = KMeans::new(KMeansConfig {
            k: 2,
            ..Default::default()
        })
        .run(&docs)
        .unwrap();
        // Even-indexed docs are topic A, odd are topic B; assignments must
        // be consistent within each topic and differ across topics.
        let a = res.assignments[0];
        let b = res.assignments[1];
        assert_ne!(a, b);
        for (i, &c) in res.assignments.iter().enumerate() {
            assert_eq!(c, if i % 2 == 0 { a } else { b });
        }
    }

    #[test]
    fn labels_are_topical() {
        let docs = two_topics();
        let res = KMeans::new(KMeansConfig {
            k: 2,
            ..Default::default()
        })
        .run(&docs)
        .unwrap();
        let a = res.assignments[0];
        let label = res.label_features(a, 2);
        assert!(label.contains(&0) || label.contains(&1));
        assert!(!label.contains(&10));
    }

    #[test]
    fn infeasible_configurations_rejected() {
        let docs = two_topics();
        assert!(KMeans::new(KMeansConfig {
            k: 0,
            ..Default::default()
        })
        .run(&docs)
        .is_none());
        assert!(KMeans::new(KMeansConfig {
            k: docs.len() + 1,
            ..Default::default()
        })
        .run(&docs)
        .is_none());
    }

    #[test]
    fn impurity_decreases_with_correct_k() {
        let docs = two_topics();
        let k1 = KMeans::new(KMeansConfig {
            k: 1,
            ..Default::default()
        })
        .run(&docs)
        .unwrap();
        let k2 = KMeans::new(KMeansConfig {
            k: 2,
            ..Default::default()
        })
        .run(&docs)
        .unwrap();
        assert!(
            k2.impurity < k1.impurity,
            "splitting mixed topics must reduce impurity ({} vs {})",
            k2.impurity,
            k1.impurity
        );
    }

    #[test]
    fn choose_k_finds_two() {
        let docs = two_topics();
        let (k, _res) = choose_k_by_impurity(&docs, 1..=4, 0.05, 42).unwrap();
        assert_eq!(k, 2);
    }

    #[test]
    fn sizes_sum_to_doc_count() {
        let docs = two_topics();
        let res = KMeans::new(KMeansConfig {
            k: 3,
            ..Default::default()
        })
        .run(&docs)
        .unwrap();
        assert_eq!(res.sizes().iter().sum::<usize>(), docs.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let docs = two_topics();
        let cfg = KMeansConfig {
            k: 2,
            seed: 7,
            ..Default::default()
        };
        let a = KMeans::new(cfg).run(&docs).unwrap();
        let b = KMeans::new(cfg).run(&docs).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }
}
