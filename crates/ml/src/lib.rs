//! Machine-learning substrate for the BINGO! focused crawler.
//!
//! Implements the mathematical core of the paper:
//!
//! * a linear Support Vector Machine trained by dual coordinate descent,
//!   with hyperplane-distance confidence (Section 2.4) — written from
//!   scratch ([`svm`]),
//! * the ξα estimator of classifier generalization performance
//!   (Joachims 2000; Sections 2.4 and 3.5) ([`xi_alpha`]),
//! * Mutual-Information feature selection with tf-based pre-selection
//!   (Section 2.3) ([`feature_selection`]),
//! * a multinomial Naive Bayes classifier as the alternative learning
//!   method the meta classifier combines (Sections 1.2 and 3.5)
//!   ([`naive_bayes`]),
//! * the meta classifier with unanimous, majority, and ξα-weighted
//!   decision functions (Section 3.5) ([`meta`]),
//! * K-means clustering with an entropy-based impurity measure for
//!   choosing the number of clusters (Section 3.6) ([`kmeans`]).

pub mod feature_selection;
pub mod kmeans;
pub mod meta;
pub mod naive_bayes;
pub mod svm;
pub mod xi_alpha;

pub use feature_selection::{FeatureSelection, FeatureSelector};
pub use kmeans::{KMeans, KMeansResult};
pub use meta::{MetaClassifier, MetaPolicy};
pub use naive_bayes::NaiveBayes;
pub use svm::{LinearSvm, SvmConfig, TrainedSvm};
pub use xi_alpha::XiAlphaEstimate;

use bingo_textproc::SparseVector;

/// A binary yes/no decision with the classifier's confidence.
///
/// `score` is the raw decision value (for the SVM, the signed distance of
/// the document from the separating hyperplane); the decision is positive
/// when `score >= 0`. The paper uses the score both as classification
/// confidence and as the URL priority in the crawl frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Signed confidence; positive means "belongs to the topic".
    pub score: f32,
}

impl Decision {
    /// Yes/no view of the decision.
    pub fn accept(&self) -> bool {
        self.score >= 0.0
    }
}

/// Anything that can classify a feature vector. Implemented by the SVM,
/// Naive Bayes, and the meta classifier, so the engine treats them
/// uniformly ("the classifier does not have to know how feature vectors
/// are constructed").
pub trait Classifier: Send + Sync {
    /// Classify a (feature-selected) document vector.
    fn decide(&self, x: &SparseVector) -> Decision;
}

/// A labeled training set in a compact (feature-selected) vector space.
#[derive(Debug, Clone, Default)]
pub struct TrainingSet {
    /// `(vector, is_positive)` examples.
    pub examples: Vec<(SparseVector, bool)>,
}

impl TrainingSet {
    /// Empty training set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one example.
    pub fn push(&mut self, x: SparseVector, positive: bool) {
        self.examples.push((x, positive));
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Count of positive examples.
    pub fn positives(&self) -> usize {
        self.examples.iter().filter(|(_, p)| *p).count()
    }

    /// Count of negative examples.
    pub fn negatives(&self) -> usize {
        self.len() - self.positives()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_sign() {
        assert!(Decision { score: 0.0 }.accept());
        assert!(Decision { score: 2.5 }.accept());
        assert!(!Decision { score: -0.1 }.accept());
    }

    #[test]
    fn training_set_counts() {
        let mut ts = TrainingSet::new();
        ts.push(SparseVector::from_pairs(vec![(0, 1.0)]), true);
        ts.push(SparseVector::from_pairs(vec![(1, 1.0)]), false);
        ts.push(SparseVector::from_pairs(vec![(2, 1.0)]), false);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.positives(), 1);
        assert_eq!(ts.negatives(), 2);
        assert!(!ts.is_empty());
    }
}
