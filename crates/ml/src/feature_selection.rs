//! Topic-specific feature selection by Mutual Information (Section 2.3).
//!
//! "A good feature discriminates competing topics from each other", so
//! selection is invoked for every topic individually against its siblings.
//! The MI weight of term Xᵢ in topic Vⱼ is
//!
//! ```text
//! MI(Xᵢ, Vⱼ) = P[Xᵢ ∧ Vⱼ] · log( P[Xᵢ ∧ Vⱼ] / (P[Xᵢ]·P[Vⱼ]) )
//! ```
//!
//! a special case of the Kullback-Leibler divergence between the joint
//! distribution and the independence hypothesis. For efficiency BINGO!
//! "pre-selects candidates based on tf values and evaluates MI weights
//! only for the 5000 most frequently occurring terms within each topic";
//! the top 2000 by MI become the classifier's input features.

use bingo_textproc::fxhash::FxHashMap;
use bingo_textproc::SparseVector;
use serde::{Deserialize, Serialize};

/// Configuration mirroring the paper's defaults.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FeatureSelectionConfig {
    /// Candidates pre-selected by within-topic frequency (paper: 5000).
    pub pre_select: usize,
    /// Features kept by MI rank (paper: 2000).
    pub select: usize,
}

impl Default for FeatureSelectionConfig {
    fn default() -> Self {
        FeatureSelectionConfig {
            pre_select: 5000,
            select: 2000,
        }
    }
}

/// One document for selection purposes: its distinct features with raw
/// frequencies, and whether it belongs to the topic under consideration
/// (competing-sibling documents are the negatives).
pub type LabeledOccurrences<'a> = (&'a [(u32, u32)], bool);

/// Runs MI feature selection.
#[derive(Debug, Clone, Default)]
pub struct FeatureSelection {
    config: FeatureSelectionConfig,
}

impl FeatureSelection {
    /// Selector with the paper's default parameters.
    pub fn new(config: FeatureSelectionConfig) -> Self {
        FeatureSelection { config }
    }

    /// Select the most discriminative features for a topic.
    ///
    /// `docs` holds every document of the topic *and* of its competing
    /// siblings, labeled with topic membership.
    pub fn select(&self, docs: &[LabeledOccurrences<'_>]) -> FeatureSelector {
        let n_docs = docs.len();
        if n_docs == 0 {
            return FeatureSelector::empty();
        }
        let n_topic = docs.iter().filter(|(_, in_topic)| *in_topic).count();

        // Pass 1: within-topic term frequency for pre-selection, and
        // document frequencies for the MI probabilities.
        let mut topic_tf: FxHashMap<u32, u64> = FxHashMap::default();
        let mut df_total: FxHashMap<u32, u32> = FxHashMap::default();
        let mut df_topic: FxHashMap<u32, u32> = FxHashMap::default();
        for &(occurrences, in_topic) in docs {
            for &(feature, freq) in occurrences {
                *df_total.entry(feature).or_insert(0) += 1;
                if in_topic {
                    *topic_tf.entry(feature).or_insert(0) += freq as u64;
                    *df_topic.entry(feature).or_insert(0) += 1;
                }
            }
        }

        // Pre-select by tf within the topic.
        let mut candidates: Vec<(u32, u64)> = topic_tf.into_iter().collect();
        candidates.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        candidates.truncate(self.config.pre_select);

        // MI over the candidates.
        let p_topic = n_topic as f64 / n_docs as f64;
        let mut ranked: Vec<(u32, f32)> = candidates
            .into_iter()
            .map(|(feature, _)| {
                let p_joint = df_topic.get(&feature).copied().unwrap_or(0) as f64 / n_docs as f64;
                let p_feature = df_total.get(&feature).copied().unwrap_or(0) as f64 / n_docs as f64;
                let mi = if p_joint > 0.0 && p_feature > 0.0 && p_topic > 0.0 {
                    p_joint * (p_joint / (p_feature * p_topic)).ln()
                } else {
                    0.0
                };
                (feature, mi as f32)
            })
            .collect();
        ranked.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(self.config.select);

        FeatureSelector::from_ranked(ranked)
    }
}

/// The outcome of feature selection: the MI-ranked feature list plus a
/// projection from the raw feature space into a compact dense space
/// (`0..k`) the classifiers train in.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FeatureSelector {
    /// Selected `(raw feature, MI weight)` in descending MI order.
    ranked: Vec<(u32, f32)>,
    /// raw feature -> compact index.
    #[serde(skip)]
    map: FxHashMap<u32, u32>,
}

impl FeatureSelector {
    /// A selector that keeps nothing.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from a ranked list (most discriminative first).
    pub fn from_ranked(ranked: Vec<(u32, f32)>) -> Self {
        let map = ranked
            .iter()
            .enumerate()
            .map(|(i, &(f, _))| (f, i as u32))
            .collect();
        FeatureSelector { ranked, map }
    }

    /// Number of selected features.
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// True when nothing was selected.
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }

    /// The ranked `(raw feature, MI weight)` list.
    pub fn ranked(&self) -> &[(u32, f32)] {
        &self.ranked
    }

    /// Compact index of a raw feature, when selected.
    pub fn compact(&self, raw: u32) -> Option<u32> {
        self.map.get(&raw).copied()
    }

    /// Raw feature id at a compact index.
    pub fn raw(&self, compact: u32) -> Option<u32> {
        self.ranked.get(compact as usize).map(|&(f, _)| f)
    }

    /// Project a raw-space vector into the compact selected space,
    /// dropping unselected features.
    pub fn project(&self, v: &SparseVector) -> SparseVector {
        v.remap(|i| self.compact(i))
    }

    /// Rebuild the raw→compact map after deserialization.
    pub fn rebuild_index(&mut self) {
        self.map = self
            .ranked
            .iter()
            .enumerate()
            .map(|(i, &(f, _))| (f, i as u32))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Documents: topic docs use features 1,2 heavily plus the common
    /// feature 0; sibling docs use features 3,4 plus the common feature 0.
    fn corpus() -> Vec<(Vec<(u32, u32)>, bool)> {
        let mut docs = Vec::new();
        for _ in 0..10 {
            docs.push((vec![(0, 5), (1, 3), (2, 2)], true));
            docs.push((vec![(0, 5), (3, 3), (4, 2)], false));
        }
        docs
    }

    fn run(cfg: FeatureSelectionConfig) -> FeatureSelector {
        let docs = corpus();
        let labeled: Vec<LabeledOccurrences<'_>> =
            docs.iter().map(|(o, l)| (o.as_slice(), *l)).collect();
        FeatureSelection::new(cfg).select(&labeled)
    }

    #[test]
    fn discriminative_features_rank_above_common() {
        let sel = run(FeatureSelectionConfig::default());
        let rank_of = |f: u32| {
            sel.ranked()
                .iter()
                .position(|&(rf, _)| rf == f)
                .expect("feature selected")
        };
        assert!(rank_of(1) < rank_of(0), "topic feature must beat common");
        assert!(rank_of(2) < rank_of(0));
        // Sibling-only features never appear (zero tf within the topic).
        assert!(sel.compact(3).is_none());
        assert!(sel.compact(4).is_none());
    }

    #[test]
    fn select_limit_respected() {
        let sel = run(FeatureSelectionConfig {
            pre_select: 10,
            select: 2,
        });
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn pre_select_by_tf_limits_candidates() {
        // pre_select = 1 keeps only the most frequent in-topic feature (0).
        let sel = run(FeatureSelectionConfig {
            pre_select: 1,
            select: 10,
        });
        assert_eq!(sel.len(), 1);
        assert_eq!(sel.raw(0), Some(0));
    }

    #[test]
    fn projection_remaps_and_drops() {
        let sel = run(FeatureSelectionConfig::default());
        let v = SparseVector::from_pairs(vec![(1, 1.0), (3, 9.0)]);
        let p = sel.project(&v);
        assert_eq!(p.nnz(), 1, "sibling-only feature dropped");
        let compact1 = sel.compact(1).unwrap();
        assert_eq!(p.get(compact1), 1.0);
    }

    #[test]
    fn empty_corpus_selects_nothing() {
        let sel = FeatureSelection::default().select(&[]);
        assert!(sel.is_empty());
        assert!(sel
            .project(&SparseVector::from_pairs(vec![(0, 1.0)]))
            .is_empty());
    }

    #[test]
    fn compact_raw_round_trip() {
        let sel = run(FeatureSelectionConfig::default());
        for i in 0..sel.len() as u32 {
            let raw = sel.raw(i).unwrap();
            assert_eq!(sel.compact(raw), Some(i));
        }
        assert_eq!(sel.raw(999), None);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let sel = run(FeatureSelectionConfig::default());
        let json = serde_json::to_string(&sel).unwrap();
        let mut back: FeatureSelector = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.compact(1), sel.compact(1));
    }
}
