//! Meta classification (Section 3.5).
//!
//! BINGO! trains one classifier per feature-space variant and combines
//! them at run time with a meta decision function
//!
//! ```text
//! Meta(V, D, C) = +1  when Σ wᵢ·res(vᵢ) > t₁
//!                 -1  when Σ wᵢ·res(vᵢ) < t₂
//!                  0  otherwise (abstention)
//! ```
//!
//! with the three instances the paper highlights: **unanimous** decision,
//! **majority** decision, and the **ξα-weighted average** where classifier
//! i is weighted by its estimated precision. "Unanimous and weighted
//! average decisions improved precision from values around 80 percent to
//! values above 90 percent."

use crate::{Classifier, Decision};
use bingo_textproc::SparseVector;
use serde::{Deserialize, Serialize};

/// The meta decision-function instance to apply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MetaPolicy {
    /// All classifiers must agree for a definite decision:
    /// `wᵢ = 1, t₁ = h - 0.5 = -t₂`.
    Unanimous,
    /// Majority vote: `wᵢ = 1, t₁ = t₂ = 0`.
    Majority,
    /// ξα-precision weighted average: `wᵢ = precision_ξα(vᵢ), t₁ = t₂ = 0`.
    WeightedAverage,
}

/// The tri-state outcome of the meta decision function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaOutcome {
    /// Definitively positive (+1).
    Positive,
    /// Definitively negative (-1).
    Negative,
    /// The meta classifier abstains (0).
    Abstain,
}

/// A combination of base classifiers with per-classifier weights.
pub struct MetaClassifier {
    members: Vec<(Box<dyn Classifier>, f32)>,
    policy: MetaPolicy,
}

impl MetaClassifier {
    /// Build from `(classifier, ξα precision)` pairs. The precision is
    /// only used by [`MetaPolicy::WeightedAverage`].
    pub fn new(members: Vec<(Box<dyn Classifier>, f32)>, policy: MetaPolicy) -> Self {
        MetaClassifier { members, policy }
    }

    /// Number of member classifiers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no members are configured.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The configured decision policy.
    pub fn policy(&self) -> MetaPolicy {
        self.policy
    }

    /// Evaluate the tri-state meta decision function on `x`.
    ///
    /// Every member receives the *same* vector; members built over
    /// different feature spaces ignore namespaces they were not trained
    /// on, which is exactly how BINGO! runs its parallel classifiers.
    pub fn evaluate(&self, x: &SparseVector) -> MetaOutcome {
        if self.members.is_empty() {
            return MetaOutcome::Abstain;
        }
        let h = self.members.len() as f32;
        let (t1, t2) = match self.policy {
            MetaPolicy::Unanimous => (h - 0.5, -(h - 0.5)),
            MetaPolicy::Majority | MetaPolicy::WeightedAverage => (0.0, 0.0),
        };
        let mut sum = 0.0f32;
        for (clf, precision) in &self.members {
            let res = if clf.decide(x).accept() { 1.0 } else { -1.0 };
            let w = match self.policy {
                MetaPolicy::WeightedAverage => *precision,
                _ => 1.0,
            };
            sum += w * res;
        }
        if sum > t1 {
            MetaOutcome::Positive
        } else if sum < t2 {
            MetaOutcome::Negative
        } else {
            MetaOutcome::Abstain
        }
    }

    /// Mean signed confidence of the members — used when a single
    /// confidence number is needed (e.g. URL priorities) for a meta
    /// decision.
    pub fn mean_confidence(&self, x: &SparseVector) -> f32 {
        if self.members.is_empty() {
            return 0.0;
        }
        let sum: f32 = self.members.iter().map(|(c, _)| c.decide(x).score).sum();
        sum / self.members.len() as f32
    }
}

impl Classifier for MetaClassifier {
    /// Collapse the tri-state outcome into a [`Decision`]: abstention maps
    /// to a zero-confidence rejection... except that `score = 0.0` counts
    /// as accept in [`Decision`], so abstention is encoded as a tiny
    /// negative score.
    fn decide(&self, x: &SparseVector) -> Decision {
        let score = match self.evaluate(x) {
            MetaOutcome::Positive => self.mean_confidence(x).max(0.0),
            MetaOutcome::Negative => self.mean_confidence(x).min(-f32::EPSILON),
            MetaOutcome::Abstain => -f32::EPSILON,
        };
        Decision { score }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed-score classifier for testing.
    struct Fixed(f32);
    impl Classifier for Fixed {
        fn decide(&self, _x: &SparseVector) -> Decision {
            Decision { score: self.0 }
        }
    }

    fn members(scores: &[f32], precisions: &[f32]) -> Vec<(Box<dyn Classifier>, f32)> {
        scores
            .iter()
            .zip(precisions)
            .map(|(&s, &p)| (Box::new(Fixed(s)) as Box<dyn Classifier>, p))
            .collect()
    }

    fn x() -> SparseVector {
        SparseVector::new()
    }

    #[test]
    fn unanimous_requires_agreement() {
        let all_yes =
            MetaClassifier::new(members(&[1.0, 2.0, 0.5], &[1.0; 3]), MetaPolicy::Unanimous);
        assert_eq!(all_yes.evaluate(&x()), MetaOutcome::Positive);

        let split =
            MetaClassifier::new(members(&[1.0, 1.0, -1.0], &[1.0; 3]), MetaPolicy::Unanimous);
        assert_eq!(split.evaluate(&x()), MetaOutcome::Abstain);

        let all_no = MetaClassifier::new(
            members(&[-1.0, -1.0, -2.0], &[1.0; 3]),
            MetaPolicy::Unanimous,
        );
        assert_eq!(all_no.evaluate(&x()), MetaOutcome::Negative);
    }

    #[test]
    fn majority_decides_by_count() {
        let two_of_three =
            MetaClassifier::new(members(&[1.0, 1.0, -1.0], &[1.0; 3]), MetaPolicy::Majority);
        assert_eq!(two_of_three.evaluate(&x()), MetaOutcome::Positive);

        let one_of_three =
            MetaClassifier::new(members(&[1.0, -1.0, -1.0], &[1.0; 3]), MetaPolicy::Majority);
        assert_eq!(one_of_three.evaluate(&x()), MetaOutcome::Negative);

        // Even split abstains (sum == 0).
        let tie = MetaClassifier::new(members(&[1.0, -1.0], &[1.0; 2]), MetaPolicy::Majority);
        assert_eq!(tie.evaluate(&x()), MetaOutcome::Abstain);
    }

    #[test]
    fn weighted_average_respects_precision() {
        // One confident high-precision classifier outvotes two weak ones.
        let m = MetaClassifier::new(
            members(&[1.0, -1.0, -1.0], &[0.95, 0.3, 0.3]),
            MetaPolicy::WeightedAverage,
        );
        assert_eq!(m.evaluate(&x()), MetaOutcome::Positive);

        // With equal precisions the majority wins instead.
        let m = MetaClassifier::new(
            members(&[1.0, -1.0, -1.0], &[0.5, 0.5, 0.5]),
            MetaPolicy::WeightedAverage,
        );
        assert_eq!(m.evaluate(&x()), MetaOutcome::Negative);
    }

    #[test]
    fn empty_meta_abstains() {
        let m = MetaClassifier::new(vec![], MetaPolicy::Majority);
        assert_eq!(m.evaluate(&x()), MetaOutcome::Abstain);
        assert!(!m.decide(&x()).accept());
    }

    #[test]
    fn decision_view_encodes_abstention_as_reject() {
        let split = MetaClassifier::new(members(&[1.0, -1.0], &[1.0; 2]), MetaPolicy::Unanimous);
        assert!(!split.decide(&x()).accept());
        let yes = MetaClassifier::new(members(&[1.0, 1.0], &[1.0; 2]), MetaPolicy::Unanimous);
        assert!(yes.decide(&x()).accept());
    }

    #[test]
    fn mean_confidence_averages() {
        let m = MetaClassifier::new(members(&[2.0, -1.0], &[1.0; 2]), MetaPolicy::Majority);
        assert!((m.mean_confidence(&x()) - 0.5).abs() < 1e-6);
    }
}
