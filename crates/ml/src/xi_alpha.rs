//! The ξα estimator of SVM generalization performance (T. Joachims,
//! "Estimating the generalization performance of an SVM efficiently",
//! ECML 2000) — Sections 2.4 and 3.5 of the paper.
//!
//! After training, an example i is *ξα-risky* when `2·αᵢ·R² + ξᵢ ≥ 1`,
//! where αᵢ is its dual variable, ξᵢ its slack, and R² an upper bound on
//! `xᵢ·xᵢ`. Counting risky examples upper-bounds the leave-one-out error,
//! which yields estimators for error, recall and precision that have
//! "approximately the same variance as leave-one-out estimation and
//! slightly underestimate the true precision" (pessimistic), at
//! essentially zero extra cost.
//!
//! BINGO! uses the precision estimate both for predicting crawl-time
//! classifier quality and as the classifier weight in the ξα-weighted
//! meta decision function.

use serde::{Deserialize, Serialize};

/// ξα-based estimates for one trained SVM.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, Default)]
pub struct XiAlphaEstimate {
    n: u32,
    n_pos: u32,
    /// Risky positives (would-be false negatives).
    risky_pos: u32,
    /// Risky negatives (would-be false positives).
    risky_neg: u32,
}

impl XiAlphaEstimate {
    /// Compute the estimate from training byproducts.
    ///
    /// * `alpha[i]` — dual variable of example i,
    /// * `slack[i]` — hinge slack `max(0, 1 - yᵢ f(xᵢ))`,
    /// * `positive[i]` — the example's label,
    /// * `r_sq` — `max_i xᵢ·xᵢ`.
    pub fn compute(alpha: &[f32], slack: &[f32], positive: &[bool], r_sq: f32) -> Self {
        assert_eq!(alpha.len(), slack.len());
        assert_eq!(alpha.len(), positive.len());
        let mut est = XiAlphaEstimate {
            n: alpha.len() as u32,
            ..Default::default()
        };
        for i in 0..alpha.len() {
            if positive[i] {
                est.n_pos += 1;
            }
            let risky = 2.0 * alpha[i] * r_sq + slack[i] >= 1.0;
            if risky {
                if positive[i] {
                    est.risky_pos += 1;
                } else {
                    est.risky_neg += 1;
                }
            }
        }
        est
    }

    /// Estimated leave-one-out error rate (upper bound).
    pub fn error(&self) -> f32 {
        if self.n == 0 {
            return 1.0;
        }
        (self.risky_pos + self.risky_neg) as f32 / self.n as f32
    }

    /// Estimated recall: fraction of true positives still recognized.
    pub fn recall(&self) -> f32 {
        if self.n_pos == 0 {
            return 0.0;
        }
        (self.n_pos - self.risky_pos) as f32 / self.n_pos as f32
    }

    /// Estimated precision: among documents the classifier would accept,
    /// the fraction that are truly positive. Pessimistic: risky negatives
    /// are all counted as future false positives.
    pub fn precision(&self) -> f32 {
        let predicted_pos = (self.n_pos - self.risky_pos) + self.risky_neg;
        if predicted_pos == 0 {
            return 0.0;
        }
        (self.n_pos - self.risky_pos) as f32 / predicted_pos as f32
    }

    /// Number of training examples the estimate is based on.
    pub fn sample_size(&self) -> u32 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_model_scores_high() {
        // No support vectors at the bound, tiny slacks: nothing risky.
        let alpha = [0.0, 0.0, 0.1, 0.1];
        let slack = [0.0, 0.0, 0.1, 0.1];
        let pos = [true, true, false, false];
        let est = XiAlphaEstimate::compute(&alpha, &slack, &pos, 1.0);
        assert_eq!(est.error(), 0.0);
        assert_eq!(est.recall(), 1.0);
        assert_eq!(est.precision(), 1.0);
    }

    #[test]
    fn risky_negatives_hurt_precision_only() {
        let alpha = [0.0, 0.0, 1.0, 0.0];
        let slack = [0.0, 0.0, 0.9, 0.0];
        let pos = [true, true, false, false];
        let est = XiAlphaEstimate::compute(&alpha, &slack, &pos, 1.0);
        assert_eq!(est.recall(), 1.0);
        assert!(est.precision() < 1.0);
        assert!((est.precision() - 2.0 / 3.0).abs() < 1e-6);
        assert!((est.error() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn risky_positives_hurt_recall() {
        let alpha = [1.0, 0.0, 0.0, 0.0];
        let slack = [1.5, 0.0, 0.0, 0.0];
        let pos = [true, true, false, false];
        let est = XiAlphaEstimate::compute(&alpha, &slack, &pos, 1.0);
        assert!((est.recall() - 0.5).abs() < 1e-6);
        assert_eq!(est.precision(), 1.0);
    }

    #[test]
    fn empty_input_degenerates() {
        let est = XiAlphaEstimate::compute(&[], &[], &[], 1.0);
        assert_eq!(est.error(), 1.0);
        assert_eq!(est.recall(), 0.0);
        assert_eq!(est.precision(), 0.0);
    }

    #[test]
    fn estimator_is_pessimistic() {
        // Slack just below the threshold is not risky; at threshold it is.
        let est = XiAlphaEstimate::compute(&[0.0, 0.0], &[1.0, 0.99], &[false, false], 0.0);
        assert_eq!(est.risky_neg, 1);
    }
}
