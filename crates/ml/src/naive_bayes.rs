//! Multinomial Naive Bayes classifier — one of the supervised learning
//! methods the paper cites for document classification (Section 1.2,
//! reference 15) and a genuinely different decision model for the meta
//! classifier
//! of Section 3.5 to combine with the SVM.

use crate::{Classifier, Decision, TrainingSet};
use bingo_textproc::fxhash::FxHashMap;
use bingo_textproc::SparseVector;
use serde::{Deserialize, Serialize};

/// A trained multinomial Naive Bayes model with Laplace smoothing.
///
/// The decision value is the normalized log-odds
/// `(log P(+|d) - log P(-|d)) / len(d)`; dividing by document length keeps
/// scores of long and short documents comparable so they can serve as a
/// confidence measure.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct NaiveBayes {
    log_prior_pos: f32,
    log_prior_neg: f32,
    /// Per-feature log-likelihood difference `log P(f|+) - log P(f|-)`.
    log_odds: FxHashMap<u32, f32>,
    /// Default log-odds for unseen features.
    default_log_odds: f32,
}

impl NaiveBayes {
    /// Train with the default Laplace smoothing (`alpha = 1`), suitable
    /// for raw term counts.
    pub fn train(data: &TrainingSet) -> Option<NaiveBayes> {
        Self::train_with_alpha(data, 1.0)
    }

    /// Train on a labeled set; weights in the vectors are treated as
    /// (possibly fractional) occurrence counts. `alpha` is the Lidstone
    /// smoothing mass per feature — use a small value (e.g. 0.01) when
    /// the inputs are unit-normalized tf·idf vectors, where per-feature
    /// mass is far below 1 and `alpha = 1` would drown the signal.
    /// Returns `None` without both classes present.
    pub fn train_with_alpha(data: &TrainingSet, alpha: f64) -> Option<NaiveBayes> {
        let n_pos = data.positives();
        let n_neg = data.negatives();
        if n_pos == 0 || n_neg == 0 {
            return None;
        }

        let mut count_pos: FxHashMap<u32, f64> = FxHashMap::default();
        let mut count_neg: FxHashMap<u32, f64> = FxHashMap::default();
        let mut total_pos = 0.0f64;
        let mut total_neg = 0.0f64;
        let mut vocab: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();

        for (x, positive) in &data.examples {
            for &(f, w) in x.entries() {
                let w = w.max(0.0) as f64;
                vocab.insert(f);
                if *positive {
                    *count_pos.entry(f).or_insert(0.0) += w;
                    total_pos += w;
                } else {
                    *count_neg.entry(f).or_insert(0.0) += w;
                    total_neg += w;
                }
            }
        }
        let alpha = alpha.max(1e-9);
        let v = vocab.len().max(1) as f64 * alpha;

        let mut log_odds = FxHashMap::default();
        for &f in &vocab {
            let p_pos = (count_pos.get(&f).copied().unwrap_or(0.0) + alpha) / (total_pos + v);
            let p_neg = (count_neg.get(&f).copied().unwrap_or(0.0) + alpha) / (total_neg + v);
            log_odds.insert(f, (p_pos / p_neg).ln() as f32);
        }
        let default_log_odds = ((alpha / (total_pos + v)) / (alpha / (total_neg + v))).ln() as f32;

        Some(NaiveBayes {
            log_prior_pos: (n_pos as f32 / data.len() as f32).ln(),
            log_prior_neg: (n_neg as f32 / data.len() as f32).ln(),
            log_odds,
            default_log_odds,
        })
    }

    /// Normalized log-odds score of a document.
    pub fn score(&self, x: &SparseVector) -> f32 {
        let mut s = self.log_prior_pos - self.log_prior_neg;
        let mut mass = 0.0f32;
        for &(f, w) in x.entries() {
            let lo = self
                .log_odds
                .get(&f)
                .copied()
                .unwrap_or(self.default_log_odds);
            s += w * lo;
            mass += w.abs();
        }
        if mass > 0.0 {
            s / mass
        } else {
            s
        }
    }
}

impl Classifier for NaiveBayes {
    fn decide(&self, x: &SparseVector) -> Decision {
        Decision {
            score: self.score(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    fn set() -> TrainingSet {
        let mut ts = TrainingSet::new();
        for _ in 0..10 {
            ts.push(v(&[(0, 3.0), (1, 1.0)]), true);
            ts.push(v(&[(2, 3.0), (1, 1.0)]), false);
        }
        ts
    }

    #[test]
    fn classifies_separable() {
        let nb = NaiveBayes::train(&set()).unwrap();
        assert!(nb.decide(&v(&[(0, 2.0)])).accept());
        assert!(!nb.decide(&v(&[(2, 2.0)])).accept());
    }

    #[test]
    fn shared_feature_is_neutral() {
        let nb = NaiveBayes::train(&set()).unwrap();
        let lo = nb.log_odds[&1];
        assert!(lo.abs() < 0.1, "shared feature log-odds {lo} should be ~0");
    }

    #[test]
    fn rejects_single_class() {
        let mut ts = TrainingSet::new();
        ts.push(v(&[(0, 1.0)]), true);
        assert!(NaiveBayes::train(&ts).is_none());
    }

    #[test]
    fn length_normalization() {
        let nb = NaiveBayes::train(&set()).unwrap();
        let short = nb.score(&v(&[(0, 1.0)]));
        let long = nb.score(&v(&[(0, 100.0)]));
        // Same direction, comparable magnitude (not 100x).
        assert!(short > 0.0 && long > 0.0);
        assert!(long < short * 3.0 + 1.0);
    }

    #[test]
    fn unseen_features_fall_back() {
        let nb = NaiveBayes::train(&set()).unwrap();
        // A document of only unseen features gets the smoothed default.
        let d = nb.decide(&v(&[(99, 1.0)]));
        assert!(d.score.is_finite());
    }

    #[test]
    fn prior_shows_in_empty_document() {
        let mut ts = set();
        // Skew priors: many more negatives.
        for _ in 0..30 {
            ts.push(v(&[(2, 1.0)]), false);
        }
        let nb = NaiveBayes::train(&ts).unwrap();
        assert!(!nb.decide(&SparseVector::new()).accept());
    }
}
