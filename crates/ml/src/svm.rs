//! Linear Support Vector Machine (Section 2.4), implemented from scratch.
//!
//! "We use the linear form of SVM where training amounts to finding a
//! hyperplane w·x + b = 0 that separates positive from negative training
//! examples with maximum margin."
//!
//! Training solves the L1-loss (hinge) soft-margin dual by coordinate
//! descent (the LIBLINEAR algorithm of Hsieh et al., ICML 2008):
//!
//! ```text
//! min_α  1/2 αᵀQα - eᵀα   s.t. 0 ≤ αᵢ ≤ C,   Q_ij = yᵢyⱼ xᵢ·xⱼ
//! ```
//!
//! The primal weight vector `w = Σ αᵢ yᵢ xᵢ` is maintained incrementally,
//! so each coordinate update is O(nnz(xᵢ)). The bias is handled by
//! augmenting every example with a constant feature (index
//! [`BIAS_FEATURE`]).
//!
//! In the decision phase the classifier "merely needs to test whether the
//! document lies on the left or the right side of the hyperplane", an
//! m-dimensional scalar product; the signed distance from the hyperplane
//! is the classifier's confidence.

use crate::xi_alpha::XiAlphaEstimate;
use crate::{Classifier, Decision, TrainingSet};
use bingo_textproc::SparseVector;
use serde::{Deserialize, Serialize};

/// Feature index reserved for the bias term. Training vectors must not use
/// it; the trainer adds it internally. `u32::MAX` is far outside the
/// namespaced feature space of `bingo-textproc`.
pub const BIAS_FEATURE: u32 = u32::MAX;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Soft-margin cost C; larger values fit the training data harder.
    pub cost: f32,
    /// Multiplier on C for *positive* examples. Topic training sets are
    /// heavily imbalanced (a handful of seed documents against hundreds
    /// of negatives); weighting positive slack harder keeps the
    /// hyperplane from collapsing onto "always reject".
    pub positive_cost_factor: f32,
    /// Maximum passes over the training set.
    pub max_iterations: usize,
    /// Stop when the maximal projected-gradient violation falls below this.
    pub tolerance: f32,
    /// Value of the constant bias feature appended to every example.
    pub bias_value: f32,
    /// Shuffle seed for the coordinate order.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            cost: 1.0,
            positive_cost_factor: 1.0,
            max_iterations: 200,
            tolerance: 1e-3,
            bias_value: 1.0,
            seed: 0x5eed,
        }
    }
}

/// The trainer.
///
/// ```
/// use bingo_ml::{LinearSvm, TrainingSet, Classifier};
/// use bingo_textproc::SparseVector;
///
/// let mut set = TrainingSet::new();
/// for i in 0..8u32 {
///     set.push(SparseVector::from_pairs(vec![(i % 4, 1.0)]), true);
///     set.push(SparseVector::from_pairs(vec![(10 + i % 4, 1.0)]), false);
/// }
/// let model = LinearSvm::default().train(&set).unwrap();
/// assert!(model.decide(&SparseVector::from_pairs(vec![(1, 1.0)])).accept());
/// assert!(!model.decide(&SparseVector::from_pairs(vec![(11, 1.0)])).accept());
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinearSvm {
    config: SvmConfig,
}

impl LinearSvm {
    /// Trainer with the given configuration.
    pub fn new(config: SvmConfig) -> Self {
        LinearSvm { config }
    }

    /// Train on a labeled set. Returns `None` when the set lacks either
    /// positive or negative examples (no separating hyperplane is defined).
    pub fn train(&self, data: &TrainingSet) -> Option<TrainedSvm> {
        let n = data.len();
        if n == 0 || data.positives() == 0 || data.negatives() == 0 {
            return None;
        }
        let cfg = &self.config;

        // Augment with the bias feature and precompute diagonal Q_ii.
        let xs: Vec<SparseVector> = data
            .examples
            .iter()
            .map(|(x, _)| augment(x, cfg.bias_value))
            .collect();
        let ys: Vec<f32> = data
            .examples
            .iter()
            .map(|&(_, p)| if p { 1.0 } else { -1.0 })
            .collect();
        let q_diag: Vec<f32> = xs.iter().map(|x| x.dot(x).max(1e-12)).collect();
        // Per-example box constraint: positives may get a larger budget.
        let costs: Vec<f32> = data
            .examples
            .iter()
            .map(|&(_, p)| {
                if p {
                    cfg.cost * cfg.positive_cost_factor.max(f32::EPSILON)
                } else {
                    cfg.cost
                }
            })
            .collect();

        // Dense weight vector over the compact feature universe. Training
        // runs after feature selection, so dimensionality is small (a few
        // thousand); the bias occupies the last slot.
        let dim = xs
            .iter()
            .flat_map(|x| x.entries().iter().map(|&(i, _)| i))
            .filter(|&i| i != BIAS_FEATURE)
            .max()
            .map(|m| m as usize + 2)
            .unwrap_or(2);
        let bias_slot = dim - 1;
        let slot = |i: u32| -> usize {
            if i == BIAS_FEATURE {
                bias_slot
            } else {
                i as usize
            }
        };

        let mut w = vec![0.0f32; dim];
        let mut alpha = vec![0.0f32; n];
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng_state = cfg.seed.max(1);

        for _iter in 0..cfg.max_iterations {
            // Fisher-Yates with a small xorshift; deterministic given seed.
            for i in (1..n).rev() {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                let j = (rng_state % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let mut max_violation = 0.0f32;
            for &i in &order {
                let xi = &xs[i];
                let yi = ys[i];
                let wx: f32 = xi.entries().iter().map(|&(f, v)| w[slot(f)] * v).sum();
                let gradient = yi * wx - 1.0;
                // Projected gradient for the box constraint.
                let pg = if alpha[i] == 0.0 {
                    gradient.min(0.0)
                } else if alpha[i] >= costs[i] {
                    gradient.max(0.0)
                } else {
                    gradient
                };
                max_violation = max_violation.max(pg.abs());
                if pg.abs() < 1e-12 {
                    continue;
                }
                let old = alpha[i];
                let new = (old - gradient / q_diag[i]).clamp(0.0, costs[i]);
                if (new - old).abs() < 1e-12 {
                    continue;
                }
                alpha[i] = new;
                let delta = (new - old) * yi;
                for &(f, v) in xi.entries() {
                    w[slot(f)] += delta * v;
                }
            }
            if max_violation < cfg.tolerance {
                break;
            }
        }

        let bias = w[bias_slot] * cfg.bias_value;
        w.truncate(bias_slot);
        let weights = SparseVector::from_pairs(
            w.iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0.0)
                .map(|(i, &v)| (i as u32, v))
                .collect(),
        );
        let weight_norm = (weights.norm().powi(2) + (bias / cfg.bias_value).powi(2))
            .sqrt()
            .max(1e-12);

        // ξα generalization estimate ingredients: slacks and R².
        let r_sq = q_diag.iter().cloned().fold(0.0f32, f32::max);
        let mut slacks = Vec::with_capacity(n);
        for i in 0..n {
            let f = xs[i]
                .entries()
                .iter()
                .map(|&(fi, v)| {
                    if fi == BIAS_FEATURE {
                        bias / cfg.bias_value * v
                    } else {
                        weights.get(fi) * v
                    }
                })
                .sum::<f32>();
            slacks.push((1.0 - ys[i] * f).max(0.0));
        }
        let labels: Vec<bool> = data.examples.iter().map(|&(_, p)| p).collect();
        let estimate = XiAlphaEstimate::compute(&alpha, &slacks, &labels, r_sq);

        Some(TrainedSvm {
            weights,
            bias,
            weight_norm,
            estimate,
        })
    }
}

fn augment(x: &SparseVector, bias_value: f32) -> SparseVector {
    let mut pairs: Vec<(u32, f32)> = x.entries().to_vec();
    pairs.push((BIAS_FEATURE, bias_value));
    SparseVector::from_pairs(pairs)
}

/// A trained linear SVM decision model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedSvm {
    /// Primal weight vector (without the bias component).
    pub weights: SparseVector,
    /// Bias term b of `w·x + b`.
    pub bias: f32,
    /// ‖(w, b)‖, used to turn raw scores into hyperplane distances.
    pub weight_norm: f32,
    /// ξα generalization-performance estimate computed at training time.
    pub estimate: XiAlphaEstimate,
}

impl TrainedSvm {
    /// Raw decision value `w·x + b`.
    pub fn raw_score(&self, x: &SparseVector) -> f32 {
        self.weights.dot(x) + self.bias
    }

    /// Signed distance of `x` from the separating hyperplane — the
    /// classifier confidence of the paper.
    pub fn confidence(&self, x: &SparseVector) -> f32 {
        self.raw_score(x) / self.weight_norm
    }

    /// [`confidence`](Self::confidence) over a whole batch: one model
    /// lookup per batch instead of per document. Results are identical
    /// to calling `confidence` on each vector in turn.
    pub fn confidence_batch(&self, xs: &[SparseVector]) -> Vec<f32> {
        xs.iter()
            .map(|x| self.raw_score(x) / self.weight_norm)
            .collect()
    }
}

impl Classifier for TrainedSvm {
    fn decide(&self, x: &SparseVector) -> Decision {
        Decision {
            score: self.confidence(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    fn separable_set() -> TrainingSet {
        // Positives live on feature 0, negatives on feature 1.
        let mut ts = TrainingSet::new();
        for i in 0..20 {
            let bump = (i % 3) as f32 * 0.1;
            ts.push(v(&[(0, 1.0 + bump), (2, 0.2)]), true);
            ts.push(v(&[(1, 1.0 + bump), (2, 0.2)]), false);
        }
        ts
    }

    #[test]
    fn learns_separable_data() {
        let svm = LinearSvm::default();
        let model = svm.train(&separable_set()).unwrap();
        assert!(model.decide(&v(&[(0, 1.0)])).accept());
        assert!(!model.decide(&v(&[(1, 1.0)])).accept());
        // All training points classified correctly.
        for (x, p) in &separable_set().examples {
            assert_eq!(model.decide(x).accept(), *p);
        }
    }

    #[test]
    fn confidence_grows_with_distance() {
        let svm = LinearSvm::default();
        let model = svm.train(&separable_set()).unwrap();
        let near = model.confidence(&v(&[(0, 0.5)]));
        let far = model.confidence(&v(&[(0, 5.0)]));
        assert!(far > near, "far={far} near={near}");
    }

    #[test]
    fn rejects_single_class_data() {
        let mut ts = TrainingSet::new();
        ts.push(v(&[(0, 1.0)]), true);
        ts.push(v(&[(1, 1.0)]), true);
        assert!(LinearSvm::default().train(&ts).is_none());
        assert!(LinearSvm::default().train(&TrainingSet::new()).is_none());
    }

    #[test]
    fn handles_overlap_with_soft_margin() {
        let mut ts = separable_set();
        // Inject label noise; training must still converge and do better
        // than chance.
        ts.push(v(&[(0, 1.0)]), false);
        ts.push(v(&[(1, 1.0)]), true);
        let model = LinearSvm::default().train(&ts).unwrap();
        let correct = ts
            .examples
            .iter()
            .filter(|(x, p)| model.decide(x).accept() == *p)
            .count();
        assert!(correct as f32 / ts.len() as f32 > 0.9);
    }

    #[test]
    fn bias_allows_asymmetric_threshold() {
        // One-dimensional data separated at x = 2: needs a bias.
        let mut ts = TrainingSet::new();
        for i in 0..10 {
            ts.push(v(&[(0, 3.0 + i as f32 * 0.1)]), true);
            ts.push(v(&[(0, 1.0 + i as f32 * 0.05)]), false);
        }
        let model = LinearSvm::default().train(&ts).unwrap();
        assert!(model.decide(&v(&[(0, 4.0)])).accept());
        assert!(!model.decide(&v(&[(0, 0.5)])).accept());
        assert!(model.bias != 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = LinearSvm::default().train(&separable_set()).unwrap();
        let b = LinearSvm::default().train(&separable_set()).unwrap();
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.bias, b.bias);
    }

    #[test]
    fn xi_alpha_estimate_reasonable_on_separable() {
        let model = LinearSvm::default().train(&separable_set()).unwrap();
        // Pessimistic but far above chance on cleanly separable data.
        assert!(model.estimate.error() <= 0.5);
        assert!(model.estimate.precision() >= 0.5);
    }

    #[test]
    fn empty_vector_scores_bias_only() {
        let model = LinearSvm::default().train(&separable_set()).unwrap();
        let empty = SparseVector::new();
        assert!((model.raw_score(&empty) - model.bias).abs() < 1e-6);
    }
}
