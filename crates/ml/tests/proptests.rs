//! Property-based tests of the learning components: estimator bounds,
//! selection-ranking laws, clustering well-formedness, SVM stability.

use bingo_ml::feature_selection::{FeatureSelection, FeatureSelectionConfig};
use bingo_ml::kmeans::{KMeans, KMeansConfig};
use bingo_ml::svm::LinearSvm;
use bingo_ml::xi_alpha::XiAlphaEstimate;
use bingo_ml::{Classifier, NaiveBayes, TrainingSet};
use bingo_textproc::SparseVector;
use proptest::prelude::*;

fn doc_strategy() -> impl Strategy<Value = (Vec<(u32, u32)>, bool)> {
    (
        proptest::collection::vec((0u32..200, 1u32..10), 1..25),
        any::<bool>(),
    )
}

proptest! {
    // ---- ξα estimator bounds ------------------------------------------

    #[test]
    fn xi_alpha_outputs_are_probabilities(
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let alpha: Vec<f32> = (0..n).map(|_| (next() % 100) as f32 / 50.0).collect();
        let slack: Vec<f32> = (0..n).map(|_| (next() % 100) as f32 / 40.0).collect();
        let positive: Vec<bool> = (0..n).map(|_| next() % 2 == 0).collect();
        let est = XiAlphaEstimate::compute(&alpha, &slack, &positive, 1.5);
        prop_assert!((0.0..=1.0).contains(&est.error()));
        prop_assert!((0.0..=1.0).contains(&est.recall()));
        prop_assert!((0.0..=1.0).contains(&est.precision()));
        prop_assert_eq!(est.sample_size() as usize, n);
    }

    // ---- Feature selection laws -----------------------------------------

    #[test]
    fn selection_is_ranked_and_bounded(
        docs in proptest::collection::vec(doc_strategy(), 2..30),
        select in 1usize..50,
    ) {
        let labeled: Vec<(&[(u32, u32)], bool)> =
            docs.iter().map(|(o, l)| (o.as_slice(), *l)).collect();
        let has_pos = docs.iter().any(|(_, l)| *l);
        let sel = FeatureSelection::new(FeatureSelectionConfig {
            pre_select: 100,
            select,
        })
        .select(&labeled);
        prop_assert!(sel.len() <= select);
        // MI scores descend.
        for w in sel.ranked().windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        // Every selected feature occurs in some positive document.
        if has_pos {
            for &(f, _) in sel.ranked() {
                let in_pos = docs
                    .iter()
                    .filter(|(_, l)| *l)
                    .any(|(o, _)| o.iter().any(|&(g, _)| g == f));
                prop_assert!(in_pos, "feature {f} not from the topic");
            }
        } else {
            prop_assert!(sel.is_empty());
        }
        // compact/raw round trip.
        for i in 0..sel.len() as u32 {
            prop_assert_eq!(sel.compact(sel.raw(i).unwrap()), Some(i));
        }
    }

    // ---- K-means well-formedness ----------------------------------------

    #[test]
    fn kmeans_assignments_are_well_formed(
        docs in proptest::collection::vec(
            proptest::collection::vec((0u32..40, 0.1f32..2.0), 1..10),
            4..30,
        ),
        k in 1usize..4,
    ) {
        let vectors: Vec<SparseVector> = docs
            .into_iter()
            .map(|p| SparseVector::from_pairs(p).normalized())
            .collect();
        prop_assume!(vectors.len() >= k);
        let res = KMeans::new(KMeansConfig {
            k,
            max_iterations: 10,
            seed: 3,
        })
        .run(&vectors)
        .unwrap();
        prop_assert_eq!(res.assignments.len(), vectors.len());
        prop_assert!(res.assignments.iter().all(|&a| a < k));
        prop_assert_eq!(res.centroids.len(), k);
        prop_assert!(res.impurity >= 0.0);
        prop_assert_eq!(res.sizes().iter().sum::<usize>(), vectors.len());
    }

    // ---- SVM robustness ---------------------------------------------------

    #[test]
    fn svm_decisions_are_finite_for_any_probe(
        probe in proptest::collection::vec((0u32..100, -5.0f32..5.0), 0..20),
    ) {
        let mut set = TrainingSet::new();
        for i in 0..8u32 {
            set.push(SparseVector::from_pairs(vec![(i, 1.0)]), true);
            set.push(SparseVector::from_pairs(vec![(50 + i, 1.0)]), false);
        }
        let model = LinearSvm::default().train(&set).unwrap();
        let x = SparseVector::from_pairs(probe);
        let d = model.decide(&x);
        prop_assert!(d.score.is_finite());
    }

    #[test]
    fn svm_confidence_scales_with_input(
        k in 1.5f32..10.0,
    ) {
        let mut set = TrainingSet::new();
        for i in 0..10u32 {
            set.push(SparseVector::from_pairs(vec![(i % 5, 1.0)]), true);
            set.push(SparseVector::from_pairs(vec![(10 + i % 5, 1.0)]), false);
        }
        let model = LinearSvm::default().train(&set).unwrap();
        let x = SparseVector::from_pairs(vec![(0, 1.0)]);
        let mut xk = x.clone();
        xk.scale(k);
        // Scaling a positive-side input must not flip the decision.
        prop_assert!(model.decide(&x).accept());
        prop_assert!(model.decide(&xk).accept());
        prop_assert!(model.confidence(&xk) >= model.confidence(&x) - 1e-4);
    }

    // ---- Naive Bayes ---------------------------------------------------

    #[test]
    fn naive_bayes_scores_finite_and_label_consistent(
        alpha in 0.001f64..2.0,
    ) {
        let mut set = TrainingSet::new();
        for _ in 0..6 {
            set.push(SparseVector::from_pairs(vec![(0, 2.0), (1, 1.0)]), true);
            set.push(SparseVector::from_pairs(vec![(5, 2.0), (6, 1.0)]), false);
        }
        let nb = NaiveBayes::train_with_alpha(&set, alpha).unwrap();
        let pos = nb.score(&SparseVector::from_pairs(vec![(0, 1.0)]));
        let neg = nb.score(&SparseVector::from_pairs(vec![(5, 1.0)]));
        prop_assert!(pos.is_finite() && neg.is_finite());
        prop_assert!(pos > neg, "positive-side term must outscore negative");
    }
}
